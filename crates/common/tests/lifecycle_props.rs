//! Property tests for the transaction-lifecycle tracing types.
//!
//! The core invariant: however a transaction's pipeline interleaves — any
//! number of marks, in any stage order, with repeats — the timer's stage
//! attributions partition a monotonic clock, so cumulative attributed time
//! never decreases and never exceeds the sealed trace's wall-clock total.

use aloha_common::metrics::{LifecycleTracer, Stage, TxnTimer, TxnTrace, STAGE_COUNT};
use aloha_common::stats::{StageStats, StatsSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stage_timing_is_monotone(
        ops in vec((0usize..STAGE_COUNT, 0u64..200), 0..24),
        committed in any::<bool>(),
    ) {
        let mut timer = TxnTimer::start();
        let mut attributed_so_far = 0u64;
        for (stage_idx, spin_iters) in &ops {
            // Burn a little real time so marks see non-trivial deltas.
            for i in 0..*spin_iters {
                std::hint::black_box(i);
            }
            let delta = timer.mark(Stage::ALL[*stage_idx]);
            let next = attributed_so_far.checked_add(delta).expect("no overflow");
            // Monotonicity: cumulative attributed time never decreases.
            prop_assert!(next >= attributed_so_far);
            attributed_so_far = next;
        }
        let trace = timer.finish(committed);
        prop_assert_eq!(trace.committed, committed);
        prop_assert_eq!(trace.attributed_micros(), attributed_so_far);
        // Marked time partitions the wall clock: it can never exceed the
        // total elapsed time the sealed trace reports.
        prop_assert!(
            trace.attributed_micros() <= trace.total_micros,
            "attributed {}us > total {}us",
            trace.attributed_micros(),
            trace.total_micros
        );
        // Every stage the op sequence never marked stays at zero.
        for stage in Stage::ALL {
            if !ops.iter().any(|(i, _)| *i == stage.index()) {
                prop_assert_eq!(trace.stage_micros[stage.index()], 0);
            }
        }
    }

    #[test]
    fn tracer_rollups_match_recorded_samples(
        samples in vec((0usize..STAGE_COUNT, 1u64..1_000_000), 1..64),
    ) {
        let tracer = LifecycleTracer::new(16);
        let mut per_stage = [0u64; STAGE_COUNT];
        for (stage_idx, micros) in &samples {
            tracer.record_stage(Stage::ALL[*stage_idx], *micros);
            per_stage[*stage_idx] += 1;
        }
        let snaps = tracer.stage_snapshots();
        for stage in Stage::ALL {
            let snap = &snaps[stage.index()];
            prop_assert_eq!(snap.count, per_stage[stage.index()]);
            let stats = StageStats::from(snap);
            // Percentiles are ordered and bracket the recorded range.
            prop_assert!(stats.p50_micros <= stats.p95_micros);
            prop_assert!(stats.p95_micros <= stats.p99_micros);
            if snap.count > 0 {
                prop_assert!(stats.p50_micros >= 1);
                prop_assert!(stats.max_micros >= 1);
            }
        }
    }

    #[test]
    fn snapshot_json_round_trips(
        counters in vec((0u8..8, 0u64..1_000_000_000), 0..6),
        stage_samples in vec((0usize..STAGE_COUNT, 1u64..10_000_000), 0..32),
        depth_markers in vec(0u8..4, 0..3),
    ) {
        let tracer = LifecycleTracer::new(8);
        for (stage_idx, micros) in &stage_samples {
            tracer.record_stage(Stage::ALL[*stage_idx], *micros);
        }
        let mut node = StatsSnapshot::new("root");
        for (id, value) in &counters {
            node.set_counter(format!("counter_{id}"), *value);
        }
        for (stage, snap) in Stage::ALL.iter().zip(tracer.stage_snapshots().iter()) {
            node.set_stage(stage.name(), StageStats::from(snap));
        }
        // Nest a few children to exercise recursive encode/decode.
        for (i, marker) in depth_markers.iter().enumerate() {
            let mut child = StatsSnapshot::new(format!("child_{i}"));
            child.set_counter("marker", u64::from(*marker));
            node.push_child(child);
        }
        let text = node.to_json().to_string();
        let back = StatsSnapshot::from_json_text(&text).expect("parse back");
        prop_assert_eq!(&back, &node);
    }
}

#[test]
fn ring_keeps_newest_traces_under_churn() {
    let tracer = LifecycleTracer::new(8);
    for i in 0..100u64 {
        tracer.record_trace(TxnTrace {
            stage_micros: [i; STAGE_COUNT],
            total_micros: i * STAGE_COUNT as u64,
            committed: i % 3 != 0,
        });
    }
    let recent = tracer.recent();
    assert_eq!(recent.len(), 8);
    assert!(recent
        .windows(2)
        .all(|w| w[0].total_micros < w[1].total_micros));
    assert_eq!(recent.last().unwrap().stage_micros[0], 99);
}
