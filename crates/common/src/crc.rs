//! CRC-32 (IEEE 802.3, reflected), shared by every `[len][crc32][payload]`
//! framing user: the durable WAL's record frames and the TCP transport's
//! wire frames use the same discipline and the same polynomial.
//!
//! Hand-rolled: the workspace carries no checksum crate, and a 256-entry
//! table is all the speed these paths need.

/// CRC-32 over `data`.
///
/// # Examples
///
/// ```
/// // Standard IEEE test vector.
/// assert_eq!(aloha_common::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"functor shipping".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
