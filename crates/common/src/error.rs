//! Workspace-wide error type.

use std::fmt;

use crate::ids::{PartitionId, TxnId};
use crate::key::Key;
use crate::timestamp::Timestamp;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the ALOHA-DB reproduction.
///
/// Transaction *aborts* caused by application logic (e.g. insufficient funds,
/// invalid TPC-C item) are not errors — they are modeled as committed
/// `ABORTED` versions per §IV-B. `Error` covers genuine failures: malformed
/// payloads, shut-down components, misconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A binary payload could not be decoded.
    Codec(String),
    /// A message was sent to an endpoint that does not exist or has shut down.
    Disconnected(String),
    /// A request referenced a partition outside the cluster.
    NoSuchPartition(PartitionId),
    /// A transaction program id was not registered.
    UnknownProgram(u32),
    /// A functor handler id was not registered.
    UnknownHandler(u32),
    /// A `Put` was attempted with a version outside the epoch validity period.
    VersionOutsideEpoch {
        /// The offending version.
        version: Timestamp,
        /// Start of the valid window.
        valid_from: Timestamp,
        /// End of the valid window.
        valid_until: Timestamp,
    },
    /// A read referenced a key with no visible version.
    KeyNotFound(Key),
    /// The transaction was rejected before execution (e.g. malformed request).
    Rejected {
        /// The rejected transaction.
        txn: TxnId,
        /// Human-readable reason.
        reason: String,
    },
    /// The frontend's admission gate shed the transaction before any functor
    /// was installed: the token window and its bounded wait queue are full.
    ///
    /// Retryable — the client should back off for roughly `retry_after` and
    /// resubmit. No server-side state exists for a shed transaction.
    Overloaded {
        /// Suggested client back-off before resubmitting.
        retry_after: std::time::Duration,
    },
    /// A durable-storage operation failed at the filesystem layer.
    Io(String),
    /// A component was asked to do work after shutdown.
    ShuttingDown,
    /// Invalid configuration detected at construction time.
    Config(String),
    /// An operation timed out (used by bounded client waits in tests).
    Timeout(String),
}

impl Error {
    /// Whether the caller can reasonably retry the same request.
    ///
    /// [`Error::Overloaded`] is the shed-with-retry signal: the gate rejected
    /// the transaction *before* transform, so no functor was installed and
    /// resubmitting is always safe. [`Error::Timeout`] is retryable for the
    /// same reason bounded client waits are. Everything else reports a bug,
    /// misconfiguration or shutdown, where retrying cannot help.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Overloaded { .. } | Error::Timeout(_))
    }

    /// The suggested back-off for retryable overload errors, if any.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            Error::Overloaded { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::Disconnected(who) => write!(f, "endpoint disconnected: {who}"),
            Error::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            Error::UnknownProgram(id) => write!(f, "unknown transaction program id {id}"),
            Error::UnknownHandler(id) => write!(f, "unknown functor handler id {id}"),
            Error::VersionOutsideEpoch {
                version,
                valid_from,
                valid_until,
            } => write!(
                f,
                "version {version} outside epoch validity [{valid_from}, {valid_until}]"
            ),
            Error::KeyNotFound(k) => write!(f, "key not found: {k:?}"),
            Error::Rejected { txn, reason } => write!(f, "transaction {txn} rejected: {reason}"),
            Error::Overloaded { retry_after } => write!(
                f,
                "overloaded, retry after {}us",
                crate::metrics::duration_micros(*retry_after)
            ),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::ShuttingDown => write!(f, "component is shutting down"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errs: Vec<Error> = vec![
            Error::Codec("x".into()),
            Error::Disconnected("be3".into()),
            Error::NoSuchPartition(PartitionId(4)),
            Error::UnknownProgram(1),
            Error::Overloaded {
                retry_after: std::time::Duration::from_millis(5),
            },
            Error::ShuttingDown,
            Error::Timeout("ack".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn overloaded_is_the_only_backoff_carrying_retryable() {
        let shed = Error::Overloaded {
            retry_after: std::time::Duration::from_millis(3),
        };
        assert!(shed.is_retryable());
        assert_eq!(
            shed.retry_after(),
            Some(std::time::Duration::from_millis(3))
        );
        assert!(Error::Timeout("ack".into()).is_retryable());
        assert_eq!(Error::Timeout("ack".into()).retry_after(), None);
        assert!(!Error::ShuttingDown.is_retryable());
        assert!(!Error::Config("bad".into()).is_retryable());
    }

    #[test]
    fn version_outside_epoch_reports_window() {
        let e = Error::VersionOutsideEpoch {
            version: Timestamp::from_raw(5),
            valid_from: Timestamp::from_raw(10),
            valid_until: Timestamp::from_raw(20),
        };
        assert!(e.to_string().contains("outside epoch validity"));
    }
}
