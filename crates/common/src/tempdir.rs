//! Self-cleaning scratch directories for tests and benchmarks.
//!
//! The workspace carries no `tempfile` dependency, so durable-log tests and
//! the durability ablation hand-roll their scratch space here: a uniquely
//! named directory under the system temp root that is removed on drop.
//! Tier-1 runs must not leave stray WAL segments behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_SCRATCH: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp root, removed on drop.
///
/// # Examples
///
/// ```
/// use aloha_common::tempdir::TempDir;
///
/// let dir = TempDir::new("doc");
/// assert!(dir.path().is_dir());
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh scratch directory tagged with `tag`.
    ///
    /// Uniqueness comes from the process id plus a process-wide counter, so
    /// concurrent tests (and concurrent test *processes*) never collide.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — scratch space is a test
    /// precondition, not a recoverable failure.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT_SCRATCH.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("aloha-{tag}-{pid}-{n}", pid = std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch directory");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A child path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort: a failed cleanup must not turn a passing test into a
        // panic-in-drop abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_are_unique_and_removed() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        assert!(pa.is_dir());
        assert!(pb.is_dir());
        drop(a);
        drop(b);
        assert!(!pa.exists());
        assert!(!pb.exists());
    }

    #[test]
    fn cleanup_is_recursive() {
        let d = TempDir::new("deep");
        std::fs::create_dir_all(d.join("a/b")).unwrap();
        std::fs::write(d.join("a/b/wal-0.log"), b"x").unwrap();
        let p = d.path().to_path_buf();
        drop(d);
        assert!(!p.exists());
    }
}
