//! Keys and values of the hash-partitioned key-functor store.

use std::fmt;
use std::hash::{Hash, Hasher};

use bytes::Bytes;

use crate::ids::PartitionId;

/// An opaque binary key in the distributed table.
///
/// ALOHA-DB stores key-functor pairs in a hash-partitioned table (§III-D).
/// Workloads encode composite keys (table id + primary-key fields) into the
/// byte payload; [`Key::from_parts`] provides an unambiguous length-prefixed
/// encoding for that purpose.
///
/// Keys are cheaply cloneable ([`Bytes`] is reference counted).
///
/// # Examples
///
/// ```
/// use aloha_common::Key;
///
/// let a = Key::from_parts(&[b"stock", &1u32.to_be_bytes()]);
/// let b = Key::from_parts(&[b"stock", &1u32.to_be_bytes()]);
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Key(Bytes);

impl Key {
    /// Creates a key from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Key {
        Key(bytes.into())
    }

    /// Builds a composite key from parts using a length-prefixed encoding, so
    /// `["ab","c"]` and `["a","bc"]` yield different keys.
    pub fn from_parts(parts: &[&[u8]]) -> Key {
        let mut buf = Vec::with_capacity(parts.iter().map(|p| p.len() + 2).sum());
        for part in parts {
            Self::push_part(&mut buf, part);
        }
        Key(Bytes::from(buf))
    }

    /// Magic prefix marking a key with an explicit routing tag.
    const ROUTE_MAGIC: [u8; 2] = [0xff, 0xfe];

    /// Builds a composite key with an explicit *routing tag*: the key is
    /// placed on partition `route % partitions` instead of by hash.
    ///
    /// Workloads use routing tags to express placement policies such as
    /// TPC-C's partition-by-warehouse (all keys of warehouse *w* share route
    /// *w*) or the scaled TPC-C partition-by-item layout (§V-A1).
    pub fn with_route(route: u32, parts: &[&[u8]]) -> Key {
        let mut buf = Vec::with_capacity(6 + parts.iter().map(|p| p.len() + 2).sum::<usize>());
        buf.extend_from_slice(&Self::ROUTE_MAGIC);
        buf.extend_from_slice(&route.to_be_bytes());
        for part in parts {
            Self::push_part(&mut buf, part);
        }
        Key(Bytes::from(buf))
    }

    fn push_part(buf: &mut Vec<u8>, part: &[u8]) {
        let len = u16::try_from(part.len()).expect("key part longer than 64 KiB");
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(part);
    }

    /// The explicit routing tag, if this key carries one.
    pub fn route(&self) -> Option<u32> {
        if self.0.len() >= 6 && self.0[..2] == Self::ROUTE_MAGIC {
            Some(u32::from_be_bytes(
                self.0[2..6].try_into().expect("checked length"),
            ))
        } else {
            None
        }
    }

    /// The composite parts of the key after any routing tag. Returns `None`
    /// if the key was not built with `from_parts`/`with_route` framing.
    pub fn parts(&self) -> Option<Vec<&[u8]>> {
        let mut rest: &[u8] = if self.route().is_some() {
            &self.0[6..]
        } else {
            &self.0
        };
        let mut parts = Vec::new();
        while !rest.is_empty() {
            if rest.len() < 2 {
                return None;
            }
            let len = u16::from_be_bytes(rest[..2].try_into().expect("checked")) as usize;
            rest = &rest[2..];
            if rest.len() < len {
                return None;
            }
            parts.push(&rest[..len]);
            rest = &rest[len..];
        }
        Some(parts)
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The partition that owns this key: `route % partitions` for routed
    /// keys, otherwise FNV-1a hash partitioning. The hash is stable across
    /// runs (important so that loader and transactions agree on placement)
    /// and fast for short keys.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn partition(&self, partitions: u16) -> PartitionId {
        assert!(partitions > 0, "cluster must have at least one partition");
        match self.route() {
            Some(route) => PartitionId((route % partitions as u32) as u16),
            None => PartitionId((self.fnv1a() % partitions as u64) as u16),
        }
    }

    /// A stable 64-bit hash of the key bytes (FNV-1a, the same function
    /// [`Key::partition`] uses). Run-to-run stability matters for anything
    /// that routes work by key — shard queues, cache shards — so that
    /// placement decisions reproduce under a fixed seed.
    pub fn stable_hash(&self) -> u64 {
        self.fnv1a()
    }

    fn fnv1a(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.0.iter() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key(")?;
        for &b in self.0.iter().take(24) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.0.len() > 24 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl From<&[u8]> for Key {
    fn from(bytes: &[u8]) -> Key {
        Key(Bytes::copy_from_slice(bytes))
    }
}

impl From<Vec<u8>> for Key {
    fn from(bytes: Vec<u8>) -> Key {
        Key(Bytes::from(bytes))
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Bytes> for Key {
    fn from(bytes: Bytes) -> Key {
        Key(bytes)
    }
}

/// An opaque binary value: the "final form" of a functor (§III-D).
///
/// # Examples
///
/// ```
/// use aloha_common::Value;
/// let v = Value::from_i64(150);
/// assert_eq!(v.as_i64(), Some(150));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Value {
        Value(bytes.into())
    }

    /// Encodes a signed 64-bit integer value (used by the numeric f-types
    /// ADD/SUBTR/MAX/MIN and by the microbenchmark counters).
    pub fn from_i64(v: i64) -> Value {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Decodes the value as a signed 64-bit integer, if it is exactly 8 bytes.
    pub fn as_i64(&self) -> Option<i64> {
        let arr: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(i64::from_be_bytes(arr))
    }

    /// Returns the raw value bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.as_i64() {
            write!(f, "Value(i64:{i})")
        } else {
            write!(f, "Value({} bytes)", self.0.len())
        }
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Value {
        Value(Bytes::from(bytes))
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Value {
        Value(Bytes::copy_from_slice(bytes))
    }
}

impl From<Bytes> for Value {
    fn from(bytes: Bytes) -> Value {
        Value(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_is_injective_on_boundaries() {
        let a = Key::from_parts(&[b"ab", b"c"]);
        let b = Key::from_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        for i in 0..100u32 {
            let k = Key::from_parts(&[b"item", &i.to_be_bytes()]);
            let p = k.partition(7);
            assert_eq!(p, k.partition(7), "same key must map to same partition");
            assert!(p.index() < 7);
        }
    }

    #[test]
    fn partition_spreads_keys() {
        let mut seen = [false; 8];
        for i in 0..256u32 {
            let k = Key::from_parts(&[b"k", &i.to_be_bytes()]);
            seen[k.partition(8).index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "256 keys should hit all 8 partitions"
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = Key::from("x").partition(0);
    }

    #[test]
    fn value_i64_round_trips() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(Value::from_i64(v).as_i64(), Some(v));
        }
    }

    #[test]
    fn value_as_i64_rejects_wrong_width() {
        assert_eq!(Value::new(vec![1, 2, 3]).as_i64(), None);
    }

    #[test]
    fn routed_keys_follow_route_tag() {
        for total in [1u16, 3, 8] {
            for route in [0u32, 1, 7, 1000] {
                let k = Key::with_route(route, &[b"t", b"x"]);
                assert_eq!(k.partition(total).0 as u32, route % total as u32);
                assert_eq!(k.route(), Some(route));
            }
        }
    }

    #[test]
    fn unrouted_keys_have_no_route() {
        assert_eq!(Key::from_parts(&[b"a"]).route(), None);
        assert_eq!(Key::from("plain").route(), None);
    }

    #[test]
    fn routed_keys_with_same_parts_different_routes_differ() {
        let a = Key::with_route(1, &[b"t", b"x"]);
        let b = Key::with_route(2, &[b"t", b"x"]);
        assert_ne!(a, b);
    }

    #[test]
    fn parts_round_trip_with_and_without_route() {
        let k = Key::with_route(9, &[b"tab", b"\x01\x02"]);
        assert_eq!(
            k.parts().unwrap(),
            vec![b"tab".as_slice(), b"\x01\x02".as_slice()]
        );
        let p = Key::from_parts(&[b"a", b"", b"bc"]);
        assert_eq!(
            p.parts().unwrap(),
            vec![b"a".as_slice(), b"".as_slice(), b"bc".as_slice()]
        );
    }

    #[test]
    fn malformed_parts_return_none() {
        // A raw key whose framing is broken (length prefix points past end).
        let k = Key::new(vec![0x00, 0xff, 0x01]);
        assert!(k.parts().is_none());
    }

    #[test]
    fn key_debug_is_printable() {
        let k = Key::from_parts(&[b"w", &[0xff]]);
        let dbg = format!("{k:?}");
        assert!(dbg.starts_with("Key(") && dbg.contains("\\xff"), "{dbg}");
    }
}
