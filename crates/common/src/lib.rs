//! Shared substrate for the ALOHA-DB reproduction.
//!
//! This crate contains the vocabulary types used by every other crate in the
//! workspace: compact identifiers ([`ServerId`], [`PartitionId`], [`TxnId`]),
//! the decentralized [`Timestamp`] scheme of epoch-based concurrency control,
//! byte-oriented [`Key`]/[`Value`] types with a small fixed [`codec`], a
//! pluggable [`clock`] abstraction, latency/throughput [`metrics`] with the
//! unified [`stats`] snapshot schema and its [`json`] wire form, and the
//! workspace-wide [`Error`] type.
//!
//! # Examples
//!
//! ```
//! use aloha_common::{Key, Timestamp, ServerId};
//!
//! let key = Key::from_parts(&[b"warehouse", b"42"]);
//! let ts = Timestamp::from_parts(1_000_000, ServerId(3), 0);
//! assert_eq!(ts.server(), ServerId(3));
//! assert!(key.as_bytes().len() > 2);
//! ```

pub mod clock;
pub mod codec;
pub mod crc;
pub mod error;
pub mod history;
pub mod ids;
pub mod json;
pub mod key;
pub mod metrics;
pub mod stats;
pub mod tempdir;
pub mod timestamp;

pub use bytes::Bytes;
pub use clock::{Clock, ManualClock, SkewedClock, SystemClock, UnixClock};
pub use error::{Error, Result};
pub use history::HistoryLog;
pub use ids::{EpochId, PartitionId, ServerId, TxnId};
pub use json::Json;
pub use key::{Key, Value};
pub use metrics::{
    Counter, CounterFamily, Gauge, GaugeFamily, Histogram, HistogramFamily, HistogramSnapshot,
    LifecycleTracer, MetricsRegistry, Stage, TxnTimer, TxnTrace,
};
pub use stats::{StageStats, StatsSnapshot};
pub use timestamp::Timestamp;

/// How a database serves read-only transactions.
///
/// Both engines accept this knob so the read-path ablation toggles the whole
/// pipeline symmetrically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Serve reads immediately at the cluster compute frontier — an
    /// externally-consistent snapshot that is always available without
    /// waiting out the epoch (the abort-free snapshot-read fast path).
    #[default]
    Snapshot,
    /// §III-B delay-to-next-epoch reads: assign a timestamp in the current
    /// epoch and block until the epoch completes before reading. Kept as the
    /// ablation baseline.
    DelayToEpoch,
}
