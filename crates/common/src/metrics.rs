//! Lightweight metrics: counters, latency histograms and per-stage breakdowns.
//!
//! The evaluation section of the paper reports throughput (Figs 6-9), mean
//! latency (Figs 6, 11) and a per-stage latency breakdown (Fig 10). These
//! types are the measurement substrate: cheap atomic counters and a
//! log-bucketed histogram suitable for concurrent recording from many server
//! threads without locks.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::Counter;
/// let c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Number of buckets in [`Histogram`]: one per power of two of microseconds,
/// covering 1 us .. ~1.1 hours.
const BUCKETS: usize = 32;

/// A concurrent log-bucketed latency histogram (microsecond samples).
///
/// Buckets are powers of two, so quantile estimates carry at most 2× relative
/// error — sufficient for the latency *shapes* the paper reports. Recording is
/// a single relaxed atomic increment.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::Histogram;
/// let h = Histogram::new();
/// for us in [100, 200, 400, 800] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.mean_micros() >= 100.0 && h.mean_micros() <= 1000.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_for(micros: u64) -> usize {
        ((64 - micros.max(1).leading_zeros()) as usize - 1).min(BUCKETS - 1)
    }

    /// Records one latency sample in microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of all samples, in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimates the latency at quantile `q` in `[0, 1]`, in microseconds.
    ///
    /// The estimate is the upper bound of the bucket containing the quantile,
    /// so it carries at most 2× relative error.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_micros()
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}us p50={}us p99={}us max={}us",
            self.count(),
            self.mean_micros(),
            self.quantile_micros(0.5),
            self.quantile_micros(0.99),
            self.max_micros()
        )
    }
}

/// Per-stage latency breakdown of the transaction lifecycle (Fig 10).
///
/// ALOHA-DB stages: functor installing / waiting for processing / processing.
/// Calvin stages: sequencing / locking-and-read / processing. Both systems
/// record into three [`Histogram`]s via this shared type; the figure harness
/// reads back the fraction of time spent in each stage.
#[derive(Debug, Default)]
pub struct StageBreakdown {
    stages: [Histogram; 3],
    names: [&'static str; 3],
}

impl StageBreakdown {
    /// Creates a breakdown with the three given stage names.
    pub fn new(names: [&'static str; 3]) -> StageBreakdown {
        StageBreakdown {
            stages: Default::default(),
            names,
        }
    }

    /// Records a sample for stage `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn record(&self, i: usize, micros: u64) {
        self.stages[i].record(micros);
    }

    /// Stage names in order.
    pub fn names(&self) -> [&'static str; 3] {
        self.names
    }

    /// Mean time per stage in microseconds.
    pub fn means_micros(&self) -> [f64; 3] {
        std::array::from_fn(|i| self.stages[i].mean_micros())
    }

    /// Fraction of total mean latency spent in each stage (sums to 1 unless
    /// nothing was recorded).
    pub fn fractions(&self) -> [f64; 3] {
        let means = self.means_micros();
        let total: f64 = means.iter().sum();
        if total == 0.0 {
            [0.0; 3]
        } else {
            std::array::from_fn(|i| means[i] / total)
        }
    }

    /// Clears all stages.
    pub fn reset(&self) {
        for s in &self.stages {
            s.reset();
        }
    }
}

/// Converts an elapsed [`std::time::Duration`] to whole microseconds,
/// saturating rather than overflowing.
pub fn duration_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.reset(), 11);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let h = Histogram::new();
        h.record(10);
        h.record(30);
        assert_eq!(h.mean_micros(), 20.0);
        assert_eq!(h.max_micros(), 30);
    }

    #[test]
    fn histogram_quantile_brackets_samples() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        let p50 = h.quantile_micros(0.5);
        assert!((1000..=2048).contains(&p50), "p50={p50}");
    }

    #[test]
    fn histogram_handles_zero_and_huge_samples() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_micros(), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.quantile_micros(0.99), 0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = StageBreakdown::new(["install", "wait", "process"]);
        b.record(0, 100);
        b.record(1, 200);
        b.record(2, 100);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f[1] > f[0]);
    }

    #[test]
    fn breakdown_reset_clears() {
        let b = StageBreakdown::new(["a", "b", "c"]);
        b.record(2, 5);
        b.reset();
        assert_eq!(b.means_micros(), [0.0; 3]);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
    }
}
