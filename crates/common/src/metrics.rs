//! Lightweight metrics: counters, histograms, labeled families and the
//! transaction-lifecycle tracer.
//!
//! The evaluation section of the paper reports throughput (Figs 6-9), mean
//! latency (Figs 6, 11) and a per-stage latency breakdown (Fig 10). These
//! types are the measurement substrate: cheap atomic counters, a log-bucketed
//! histogram suitable for concurrent recording from many server threads
//! without locks, labeled counter/histogram families grouped under a
//! [`MetricsRegistry`], and a [`LifecycleTracer`] that accounts every
//! transaction's time to the six pipeline stages of §III-B/§III-D.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// A monotonically increasing atomic counter.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::Counter;
/// let c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A last-value-wins atomic gauge for instantaneous state.
///
/// Counters accumulate; gauges *level*: current epoch duration, admission
/// window size, tokens in use. `add`/`sub` support occupancy-style gauges
/// (in-flight counts) where increments and decrements race from many
/// threads; `sub` saturates at zero rather than wrapping.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::Gauge;
/// let g = Gauge::new();
/// g.set(25_000);
/// g.add(5);
/// g.sub(10_000);
/// assert_eq!(g.get(), 15_005);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n` to the gauge.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Number of buckets in [`Histogram`]: one per power of two of microseconds,
/// covering 1 us .. ~1.1 hours.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A concurrent log-bucketed latency histogram (microsecond samples).
///
/// Buckets are powers of two, so quantile estimates carry at most 2× relative
/// error — sufficient for the latency *shapes* the paper reports. Recording is
/// a single relaxed atomic increment.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::Histogram;
/// let h = Histogram::new();
/// for us in [100, 200, 400, 800] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.mean_micros() >= 100.0 && h.mean_micros() <= 1000.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_for(micros: u64) -> usize {
        ((64 - micros.max(1).leading_zeros()) as usize - 1).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one latency sample in microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of all samples, in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimates the latency at quantile `q` in `[0, 1]`, in microseconds.
    ///
    /// The estimate is the upper bound of the bucket containing the quantile,
    /// so it carries at most 2× relative error.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        self.snapshot().quantile_micros(q)
    }

    /// Captures a point-in-time, mergeable copy of the histogram state.
    ///
    /// Snapshots are how per-server histograms are combined into cluster-wide
    /// percentiles: merging raw buckets preserves quantile accuracy, whereas
    /// averaging per-server percentiles would not.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max_micros(),
        }
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}us p50={}us p99={}us max={}us",
            self.count(),
            self.mean_micros(),
            self.quantile_micros(0.5),
            self.quantile_micros(0.99),
            self.max_micros()
        )
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across servers.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::{Histogram, HistogramSnapshot};
/// let (a, b) = (Histogram::new(), Histogram::new());
/// a.record(100);
/// b.record(100_000);
/// let mut merged = a.snapshot();
/// merged.merge(&b.snapshot());
/// assert_eq!(merged.count, 2);
/// assert!(merged.quantile_micros(0.99) >= 100_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` us).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum: u64,
    /// Largest sample in microseconds.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Folds `other`'s samples into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean of all samples, in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the latency at quantile `q` in `[0, 1]`, in microseconds
    /// (bucket upper bound, at most 2× relative error).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }
}

/// A named family of [`Counter`]s keyed by a static label.
///
/// Label cells are created on first use and cached behind an `RwLock`; the
/// returned [`Arc<Counter>`] handle makes the steady-state increment path a
/// single relaxed atomic add with no lock.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::CounterFamily;
/// let fam = CounterFamily::new("txn_outcomes");
/// let committed = fam.with_label("committed");
/// committed.incr();
/// assert_eq!(fam.with_label("committed").get(), 1);
/// assert_eq!(fam.values(), vec![("committed", 1)]);
/// ```
#[derive(Debug)]
pub struct CounterFamily {
    name: &'static str,
    cells: RwLock<Vec<(&'static str, Arc<Counter>)>>,
}

impl CounterFamily {
    /// Creates an empty family.
    pub fn new(name: &'static str) -> CounterFamily {
        CounterFamily {
            name,
            cells: RwLock::new(Vec::new()),
        }
    }

    /// The family name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the counter for `label`, creating it on first use.
    ///
    /// Hold the returned handle on hot paths: increments through it are
    /// lock-free.
    pub fn with_label(&self, label: &'static str) -> Arc<Counter> {
        if let Some((_, c)) = self.cells.read().iter().find(|(l, _)| *l == label) {
            return Arc::clone(c);
        }
        let mut cells = self.cells.write();
        // Double-check: another thread may have created the cell between the
        // read unlock and the write lock.
        if let Some((_, c)) = cells.iter().find(|(l, _)| *l == label) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        cells.push((label, Arc::clone(&c)));
        c
    }

    /// Current `(label, value)` pairs, sorted by label.
    pub fn values(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<_> = self
            .cells
            .read()
            .iter()
            .map(|(l, c)| (*l, c.get()))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Resets every label's counter to zero.
    pub fn reset(&self) {
        for (_, c) in self.cells.read().iter() {
            c.reset();
        }
    }
}

/// A named family of [`Gauge`]s keyed by a static label.
///
/// Same caching scheme as [`CounterFamily`]: hold the returned handle and
/// updates stay lock-free.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::GaugeFamily;
/// let fam = GaugeFamily::new("control");
/// fam.with_label("epoch_duration_micros").set(25_000);
/// assert_eq!(fam.values(), vec![("epoch_duration_micros", 25_000)]);
/// ```
#[derive(Debug)]
pub struct GaugeFamily {
    name: &'static str,
    cells: RwLock<Vec<(&'static str, Arc<Gauge>)>>,
}

impl GaugeFamily {
    /// Creates an empty family.
    pub fn new(name: &'static str) -> GaugeFamily {
        GaugeFamily {
            name,
            cells: RwLock::new(Vec::new()),
        }
    }

    /// The family name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the gauge for `label`, creating it on first use.
    pub fn with_label(&self, label: &'static str) -> Arc<Gauge> {
        if let Some((_, g)) = self.cells.read().iter().find(|(l, _)| *l == label) {
            return Arc::clone(g);
        }
        let mut cells = self.cells.write();
        if let Some((_, g)) = cells.iter().find(|(l, _)| *l == label) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        cells.push((label, Arc::clone(&g)));
        g
    }

    /// Current `(label, value)` pairs, sorted by label.
    pub fn values(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<_> = self
            .cells
            .read()
            .iter()
            .map(|(l, g)| (*l, g.get()))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Resets every label's gauge to zero.
    pub fn reset(&self) {
        for (_, g) in self.cells.read().iter() {
            g.reset();
        }
    }
}

/// A named family of [`Histogram`]s keyed by a static label.
///
/// Same caching scheme as [`CounterFamily`]: hold the returned handle and
/// recording stays lock-free.
#[derive(Debug)]
pub struct HistogramFamily {
    name: &'static str,
    cells: RwLock<Vec<(&'static str, Arc<Histogram>)>>,
}

impl HistogramFamily {
    /// Creates an empty family.
    pub fn new(name: &'static str) -> HistogramFamily {
        HistogramFamily {
            name,
            cells: RwLock::new(Vec::new()),
        }
    }

    /// The family name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the histogram for `label`, creating it on first use.
    pub fn with_label(&self, label: &'static str) -> Arc<Histogram> {
        if let Some((_, h)) = self.cells.read().iter().find(|(l, _)| *l == label) {
            return Arc::clone(h);
        }
        let mut cells = self.cells.write();
        if let Some((_, h)) = cells.iter().find(|(l, _)| *l == label) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        cells.push((label, Arc::clone(&h)));
        h
    }

    /// Current `(label, snapshot)` pairs, sorted by label.
    pub fn snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut out: Vec<_> = self
            .cells
            .read()
            .iter()
            .map(|(l, h)| (*l, h.snapshot()))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Resets every label's histogram.
    pub fn reset(&self) {
        for (_, h) in self.cells.read().iter() {
            h.reset();
        }
    }
}

/// A registry of labeled counter and histogram families.
///
/// Components create (or look up) families by name, take label handles once,
/// and then record lock-free. The registry is the unit of export: snapshots
/// walk all families to build the counters section of a `StatsSnapshot`.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.counter("rpc", "sent").incr();
/// reg.histogram("rpc_latency", "grant").record(120);
/// assert_eq!(reg.counter_values(), vec![("rpc".into(), "sent".into(), 1)]);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<Vec<Arc<CounterFamily>>>,
    gauges: RwLock<Vec<Arc<GaugeFamily>>>,
    histograms: RwLock<Vec<Arc<HistogramFamily>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter family `name`, creating it on first use.
    pub fn counter_family(&self, name: &'static str) -> Arc<CounterFamily> {
        if let Some(f) = self.counters.read().iter().find(|f| f.name() == name) {
            return Arc::clone(f);
        }
        let mut fams = self.counters.write();
        if let Some(f) = fams.iter().find(|f| f.name() == name) {
            return Arc::clone(f);
        }
        let f = Arc::new(CounterFamily::new(name));
        fams.push(Arc::clone(&f));
        f
    }

    /// Returns the gauge family `name`, creating it on first use.
    pub fn gauge_family(&self, name: &'static str) -> Arc<GaugeFamily> {
        if let Some(f) = self.gauges.read().iter().find(|f| f.name() == name) {
            return Arc::clone(f);
        }
        let mut fams = self.gauges.write();
        if let Some(f) = fams.iter().find(|f| f.name() == name) {
            return Arc::clone(f);
        }
        let f = Arc::new(GaugeFamily::new(name));
        fams.push(Arc::clone(&f));
        f
    }

    /// Returns the histogram family `name`, creating it on first use.
    pub fn histogram_family(&self, name: &'static str) -> Arc<HistogramFamily> {
        if let Some(f) = self.histograms.read().iter().find(|f| f.name() == name) {
            return Arc::clone(f);
        }
        let mut fams = self.histograms.write();
        if let Some(f) = fams.iter().find(|f| f.name() == name) {
            return Arc::clone(f);
        }
        let f = Arc::new(HistogramFamily::new(name));
        fams.push(Arc::clone(&f));
        f
    }

    /// Shorthand for `counter_family(name).with_label(label)`.
    pub fn counter(&self, name: &'static str, label: &'static str) -> Arc<Counter> {
        self.counter_family(name).with_label(label)
    }

    /// Shorthand for `gauge_family(name).with_label(label)`.
    pub fn gauge(&self, name: &'static str, label: &'static str) -> Arc<Gauge> {
        self.gauge_family(name).with_label(label)
    }

    /// Shorthand for `histogram_family(name).with_label(label)`.
    pub fn histogram(&self, name: &'static str, label: &'static str) -> Arc<Histogram> {
        self.histogram_family(name).with_label(label)
    }

    /// All counter values as `(family, label, value)`, sorted.
    pub fn counter_values(&self) -> Vec<(String, String, u64)> {
        let mut out = Vec::new();
        for fam in self.counters.read().iter() {
            for (label, v) in fam.values() {
                out.push((fam.name().to_string(), label.to_string(), v));
            }
        }
        out.sort();
        out
    }

    /// All gauge values as `(family, label, value)`, sorted.
    pub fn gauge_values(&self) -> Vec<(String, String, u64)> {
        let mut out = Vec::new();
        for fam in self.gauges.read().iter() {
            for (label, v) in fam.values() {
                out.push((fam.name().to_string(), label.to_string(), v));
            }
        }
        out.sort();
        out
    }

    /// All histogram snapshots as `(family, label, snapshot)`, sorted.
    pub fn histogram_snapshots(&self) -> Vec<(String, String, HistogramSnapshot)> {
        let mut out = Vec::new();
        for fam in self.histograms.read().iter() {
            for (label, s) in fam.snapshots() {
                out.push((fam.name().to_string(), label.to_string(), s));
            }
        }
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }

    /// Resets every family in the registry.
    pub fn reset(&self) {
        for fam in self.counters.read().iter() {
            fam.reset();
        }
        for fam in self.gauges.read().iter() {
            fam.reset();
        }
        for fam in self.histograms.read().iter() {
            fam.reset();
        }
    }
}

/// Number of lifecycle stages tracked per transaction.
pub const STAGE_COUNT: usize = 7;

/// The stages of the transaction lifecycle (§III-B, §III-D): six write-path
/// stages plus the read-path `snapshot_read` stage.
///
/// Both engines report the same schema so figures and dashboards can compare
/// them stage-for-stage; `DESIGN.md` documents what each stage maps to in
/// either engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Transforming the stored procedure into functors (§III-B).
    Transform,
    /// Obtaining the decentralized timestamp / sequencing slot (§III-A).
    TimestampGrant,
    /// Installing functors into the partitions' hash tables (§III-B).
    FunctorInstall,
    /// Waiting for the transaction's epoch to close and settle (§III-D).
    EpochClose,
    /// Resolving installed functors to concrete values (§III-B).
    FunctorComputing,
    /// Final commit/abort decision reaching the client.
    Commit,
    /// Serving a read-only transaction from the snapshot-read fast path
    /// (end-to-end, FE-side: cache probes, owner fan-out, reassembly).
    SnapshotRead,
}

impl Stage {
    /// All stages in pipeline order (the read stage last).
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Transform,
        Stage::TimestampGrant,
        Stage::FunctorInstall,
        Stage::EpochClose,
        Stage::FunctorComputing,
        Stage::Commit,
        Stage::SnapshotRead,
    ];

    /// Position of this stage in [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable schema name of this stage (used in JSON exports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Transform => "transform",
            Stage::TimestampGrant => "timestamp_grant",
            Stage::FunctorInstall => "functor_install",
            Stage::EpochClose => "epoch_close",
            Stage::FunctorComputing => "functor_computing",
            Stage::Commit => "commit",
            Stage::SnapshotRead => "snapshot_read",
        }
    }

    /// Parses a schema name back to a stage.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Completed lifecycle record of a single transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnTrace {
    /// Microseconds attributed to each stage, indexed by [`Stage::index`].
    /// Stages the observing side cannot see (e.g. backend-only stages from a
    /// frontend trace) are 0.
    pub stage_micros: [u64; STAGE_COUNT],
    /// Wall-clock microseconds from timer start to finish.
    pub total_micros: u64,
    /// Whether the transaction committed.
    pub committed: bool,
}

impl TxnTrace {
    /// Sum of the per-stage attributions (≤ `total_micros` when the trace was
    /// produced by a [`TxnTimer`], since marks partition the same clock).
    pub fn attributed_micros(&self) -> u64 {
        self.stage_micros.iter().sum()
    }
}

/// Measures one transaction's stage timings against a monotonic clock.
///
/// Each [`mark`](TxnTimer::mark) attributes the time since the previous mark
/// (or start) to a stage; [`finish`](TxnTimer::finish) seals the trace with
/// total wall-clock time. Marking the same stage twice accumulates.
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::{Stage, TxnTimer};
/// let mut t = TxnTimer::start();
/// t.mark(Stage::Transform);
/// t.mark(Stage::FunctorInstall);
/// let trace = t.finish(true);
/// assert!(trace.total_micros >= trace.attributed_micros());
/// assert!(trace.committed);
/// ```
#[derive(Debug)]
pub struct TxnTimer {
    started: Instant,
    last: Instant,
    stage_micros: [u64; STAGE_COUNT],
}

impl TxnTimer {
    /// Starts the timer now.
    pub fn start() -> TxnTimer {
        let now = Instant::now();
        TxnTimer {
            started: now,
            last: now,
            stage_micros: [0; STAGE_COUNT],
        }
    }

    /// Attributes the time since the previous mark to `stage`, returning the
    /// delta in microseconds.
    pub fn mark(&mut self, stage: Stage) -> u64 {
        let now = Instant::now();
        let delta = duration_micros(now.duration_since(self.last));
        self.last = now;
        self.stage_micros[stage.index()] += delta;
        delta
    }

    /// Attributes `micros` measured externally (e.g. on another server) to
    /// `stage` without consuming wall-clock time on this timer.
    pub fn attribute(&mut self, stage: Stage, micros: u64) {
        self.stage_micros[stage.index()] += micros;
    }

    /// Seals the trace with total wall-clock time and the final outcome.
    pub fn finish(self, committed: bool) -> TxnTrace {
        TxnTrace {
            stage_micros: self.stage_micros,
            total_micros: duration_micros(self.started.elapsed()),
            committed,
        }
    }
}

/// Per-stage histograms plus a bounded ring of recent [`TxnTrace`]s.
///
/// The histograms are the aggregate view (percentile rollups across every
/// transaction); the ring keeps the most recent complete traces for
/// inspection. [`record_stage`](LifecycleTracer::record_stage) feeds only the
/// histograms — servers call it from whichever thread observes a stage —
/// while [`record_trace`](LifecycleTracer::record_trace) feeds only the ring,
/// so a trace whose stages were already recorded individually is not double
/// counted.
#[derive(Debug)]
pub struct LifecycleTracer {
    stages: [Histogram; STAGE_COUNT],
    ring: Mutex<VecDeque<TxnTrace>>,
    capacity: usize,
}

impl LifecycleTracer {
    /// Creates a tracer whose ring holds at most `capacity` traces.
    pub fn new(capacity: usize) -> LifecycleTracer {
        LifecycleTracer {
            stages: Default::default(),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Records one sample for `stage` in the aggregate histograms.
    pub fn record_stage(&self, stage: Stage, micros: u64) {
        self.stages[stage.index()].record(micros);
    }

    /// Pushes a completed trace into the ring, evicting the oldest when full.
    pub fn record_trace(&self, trace: TxnTrace) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The aggregate histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Mergeable snapshots of all stage histograms, in [`Stage::ALL`]
    /// order.
    pub fn stage_snapshots(&self) -> [HistogramSnapshot; STAGE_COUNT] {
        std::array::from_fn(|i| self.stages[i].snapshot())
    }

    /// The most recent traces, oldest first (at most the ring capacity).
    pub fn recent(&self) -> Vec<TxnTrace> {
        self.ring.lock().iter().copied().collect()
    }

    /// Clears the histograms and the ring.
    pub fn reset(&self) {
        for h in &self.stages {
            h.reset();
        }
        self.ring.lock().clear();
    }
}

impl Default for LifecycleTracer {
    fn default() -> Self {
        LifecycleTracer::new(1024)
    }
}

/// Converts an elapsed [`std::time::Duration`] to whole microseconds,
/// saturating rather than overflowing.
pub fn duration_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.reset(), 11);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_sets_adds_and_saturates() {
        let g = Gauge::new();
        g.set(100);
        g.add(50);
        g.sub(25);
        assert_eq!(g.get(), 125);
        g.sub(1_000);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(7);
        assert_eq!(g.reset(), 7);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_family_caches_cells_and_registry_exports_them() {
        let reg = MetricsRegistry::new();
        let a = reg.gauge("control", "tokens_in_use");
        let b = reg.gauge("control", "tokens_in_use");
        assert!(Arc::ptr_eq(&a, &b));
        a.set(12);
        reg.gauge("control", "window").set(64);
        assert_eq!(
            reg.gauge_values(),
            vec![
                ("control".into(), "tokens_in_use".into(), 12),
                ("control".into(), "window".into(), 64),
            ]
        );
        reg.reset();
        assert_eq!(reg.gauge_values()[0].2, 0);
    }

    #[test]
    fn concurrent_gauge_updates_balance_out() {
        let g = Arc::new(Gauge::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(1);
                        g.sub(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let h = Histogram::new();
        h.record(10);
        h.record(30);
        assert_eq!(h.mean_micros(), 20.0);
        assert_eq!(h.max_micros(), 30);
    }

    #[test]
    fn histogram_quantile_brackets_samples() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        let p50 = h.quantile_micros(0.5);
        assert!((1000..=2048).contains(&p50), "p50={p50}");
    }

    #[test]
    fn histogram_handles_zero_and_huge_samples() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_micros(), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.quantile_micros(0.99), 0);
    }

    #[test]
    fn snapshot_merge_combines_distributions() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for _ in 0..99 {
            a.record(100);
        }
        b.record(1_000_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 100);
        assert_eq!(merged.max, 1_000_000);
        // p50 stays in the low mode, p99+ reaches the straggler.
        assert!(merged.quantile_micros(0.5) <= 256);
        assert!(merged.quantile_micros(0.995) >= 1_000_000);
        // Snapshot quantiles agree with the live histogram's.
        assert_eq!(a.snapshot().quantile_micros(0.5), a.quantile_micros(0.5));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn counter_family_caches_cells() {
        let fam = CounterFamily::new("ops");
        let a = fam.with_label("read");
        let b = fam.with_label("read");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        b.incr();
        assert_eq!(fam.values(), vec![("read", 3)]);
        fam.reset();
        assert_eq!(fam.values(), vec![("read", 0)]);
    }

    #[test]
    fn labeled_families_are_safe_under_concurrency() {
        // Many threads race to create and increment the same labels; every
        // increment must land on the shared cell (the tentpole's lock-free
        // hot-path claim) and no label may be duplicated.
        const LABELS: [&str; 4] = ["committed", "aborted", "installed", "computed"];
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let handle = reg.counter("outcomes", LABELS[t % LABELS.len()]);
                    for i in 0..1000 {
                        handle.incr();
                        // Also exercise the lookup path concurrently.
                        reg.histogram("lat", LABELS[(t + i) % LABELS.len()])
                            .record(i as u64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let values = reg.counter_values();
        assert_eq!(values.len(), LABELS.len());
        assert_eq!(values.iter().map(|(_, _, v)| v).sum::<u64>(), 8000);
        let hists = reg.histogram_snapshots();
        assert_eq!(hists.len(), LABELS.len());
        assert_eq!(hists.iter().map(|(_, _, s)| s.count).sum::<u64>(), 8000);
    }

    #[test]
    fn registry_reset_clears_all_families() {
        let reg = MetricsRegistry::new();
        reg.counter("a", "x").add(5);
        reg.histogram("b", "y").record(10);
        reg.reset();
        assert_eq!(reg.counter_values(), vec![("a".into(), "x".into(), 0)]);
        assert_eq!(reg.histogram_snapshots()[0].2.count, 0);
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("bogus"), None);
        assert_eq!(Stage::ALL[Stage::EpochClose.index()], Stage::EpochClose);
    }

    #[test]
    fn txn_timer_attributes_all_marked_time() {
        let mut t = TxnTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.mark(Stage::Transform);
        t.attribute(Stage::EpochClose, 500);
        let trace = t.finish(false);
        assert!(trace.stage_micros[Stage::Transform.index()] >= 1000);
        assert_eq!(trace.stage_micros[Stage::EpochClose.index()], 500);
        assert!(!trace.committed);
        // Externally attributed time may exceed wall clock; marked time alone
        // cannot.
        assert!(trace.total_micros + 500 >= trace.attributed_micros());
    }

    #[test]
    fn tracer_ring_is_bounded() {
        let tracer = LifecycleTracer::new(4);
        for i in 0..10 {
            tracer.record_trace(TxnTrace {
                stage_micros: [i; STAGE_COUNT],
                total_micros: i * 6,
                committed: true,
            });
        }
        let recent = tracer.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].stage_micros[0], 6); // oldest surviving trace
        assert_eq!(recent[3].stage_micros[0], 9);
    }

    #[test]
    fn tracer_stages_aggregate_independently_of_ring() {
        let tracer = LifecycleTracer::new(2);
        tracer.record_stage(Stage::Commit, 100);
        tracer.record_stage(Stage::Commit, 300);
        assert_eq!(tracer.stage(Stage::Commit).count(), 2);
        assert!(tracer.recent().is_empty());
        tracer.reset();
        assert_eq!(tracer.stage(Stage::Commit).count(), 0);
    }
}
