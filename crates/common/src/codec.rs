//! A small fixed binary codec for row payloads and functor arguments.
//!
//! TPC-C rows and user-defined f-arguments are stored as opaque byte blobs in
//! the multi-version store. This module provides a deliberately simple,
//! dependency-free writer/reader pair with length-prefixed strings and
//! fixed-width integers (big endian). It favors debuggability over density.
//!
//! # Examples
//!
//! ```
//! use aloha_common::codec::{Writer, Reader};
//! let mut w = Writer::new();
//! w.put_u32(7).put_str("abc").put_i64(-5);
//! let buf = w.into_bytes();
//! let mut r = Reader::new(&buf);
//! assert_eq!(r.get_u32().unwrap(), 7);
//! assert_eq!(r.get_str().unwrap(), "abc");
//! assert_eq!(r.get_i64().unwrap(), -5);
//! assert!(r.is_empty());
//! ```

use crate::error::{Error, Result};
use bytes::Bytes;

/// Incrementally builds a binary payload.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends an unsigned 8-bit integer.
    pub fn put_u8(&mut self, v: u8) -> &mut Writer {
        self.buf.push(v);
        self
    }

    /// Appends an unsigned 16-bit integer (big endian).
    pub fn put_u16(&mut self, v: u16) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an unsigned 32-bit integer (big endian).
    pub fn put_u32(&mut self, v: u32) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an unsigned 64-bit integer (big endian).
    pub fn put_u64(&mut self, v: u64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a signed 64-bit integer (big endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a 64-bit float (big-endian IEEE-754 bits).
    pub fn put_f64(&mut self, v: f64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed UTF-8 string (max 64 KiB).
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds 64 KiB; row fields in this workspace are
    /// all short.
    pub fn put_str(&mut self, s: &str) -> &mut Writer {
        let len = u16::try_from(s.len()).expect("string field longer than 64 KiB");
        self.put_u16(len);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends a length-prefixed byte slice (max 4 GiB).
    pub fn put_bytes(&mut self, b: &[u8]) -> &mut Writer {
        let len = u32::try_from(b.len()).expect("byte field longer than 4 GiB");
        self.put_u32(len);
        self.buf.extend_from_slice(b);
        self
    }

    /// Consumes the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequentially decodes a payload produced by [`Writer`].
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    /// When the payload is a view of a shared [`Bytes`] buffer (a received
    /// wire frame), [`Reader::get_bytes_shared`] can lend out sub-windows of
    /// that buffer instead of copying each field.
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a payload.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, backing: None }
    }

    /// Creates a reader over a shared buffer; byte fields decoded with
    /// [`Reader::get_bytes_shared`] are zero-copy windows of `bytes`.
    pub fn shared(bytes: &'a Bytes) -> Reader<'a> {
        Reader {
            buf: bytes.as_ref(),
            backing: Some(bytes),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Codec(format!(
                "truncated payload: wanted {n} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads an unsigned 8-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads an unsigned 16-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads an unsigned 32-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an unsigned 64-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a signed 64-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a 64-bit float.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted or the bytes are
    /// not valid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let len = self.get_u16()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|e| Error::Codec(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed byte field as owned [`Bytes`]. When the
    /// reader was built with [`Reader::shared`], this is a zero-copy window
    /// of the backing buffer (one refcount bump, no allocation); otherwise
    /// it copies the field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the payload is exhausted.
    pub fn get_bytes_shared(&mut self) -> Result<Bytes> {
        let raw = self.get_bytes()?;
        Ok(match self.backing {
            Some(backing) => backing.slice_ref(raw),
            None => Bytes::copy_from_slice(raw),
        })
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the payload has been fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_fields_round_trip() {
        let mut w = Writer::new();
        w.put_u8(9)
            .put_u16(65535)
            .put_u32(1 << 30)
            .put_u64(u64::MAX)
            .put_i64(i64::MIN)
            .put_f64(2.5)
            .put_str("hello, aloha")
            .put_bytes(&[0, 1, 2]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 1 << 30);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "hello, aloha");
        assert_eq!(r.get_bytes().unwrap(), &[0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_read_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn truncated_string_reports_codec_error() {
        let mut w = Writer::new();
        w.put_u16(10); // claims 10 bytes follow; none do
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let err = r.get_str().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn invalid_utf8_reports_codec_error() {
        let mut w = Writer::new();
        w.put_u16(1).put_u8(0xff);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn empty_string_and_bytes_are_fine() {
        let mut w = Writer::new();
        w.put_str("").put_bytes(&[]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_str().unwrap(), "");
        assert_eq!(r.get_bytes().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn shared_reader_lends_windows_of_the_backing_buffer() {
        let mut w = Writer::new();
        w.put_u32(7).put_bytes(b"zero-copy payload").put_u8(3);
        let backing = Bytes::from(w.into_bytes());
        let mut r = Reader::shared(&backing);
        assert_eq!(r.get_u32().unwrap(), 7);
        let field = r.get_bytes_shared().unwrap();
        assert_eq!(field.as_ref(), b"zero-copy payload");
        assert!(field.shares_storage_with(&backing));
        assert_eq!(r.get_u8().unwrap(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn unshared_reader_falls_back_to_copying() {
        let mut w = Writer::new();
        w.put_bytes(b"copied");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let field = r.get_bytes_shared().unwrap();
        assert_eq!(field.as_ref(), b"copied");
    }

    #[test]
    fn reader_tracks_remaining() {
        let mut w = Writer::new();
        w.put_u64(1).put_u64(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.remaining(), 16);
        r.get_u64().unwrap();
        assert_eq!(r.remaining(), 8);
    }
}
