//! A concurrent append-only event log for recording committed-transaction
//! histories.
//!
//! Engines append one event per transaction (ALOHA-DB: at the coordinator
//! when the write-only phase resolves; Calvin: at the scheduler when the
//! merged order is fixed), and a checker later snapshots the log and replays
//! it sequentially to validate serializability. The log is engine-agnostic:
//! each engine defines its own event type.
//!
//! # Examples
//!
//! ```
//! use aloha_common::history::HistoryLog;
//!
//! let log: HistoryLog<u32> = HistoryLog::new();
//! log.record(7);
//! log.record(8);
//! assert_eq!(log.snapshot(), vec![7, 8]);
//! ```

use parking_lot::Mutex;

/// A thread-safe append-only log of history events.
///
/// Appends are cheap (one mutex acquisition); the log is intended for test
/// and validation builds, not for the benchmark hot path, so no effort is
/// made to shard the lock.
#[derive(Debug)]
pub struct HistoryLog<E> {
    events: Mutex<Vec<E>>,
}

impl<E> Default for HistoryLog<E> {
    fn default() -> Self {
        HistoryLog {
            events: Mutex::new(Vec::new()),
        }
    }
}

impl<E> HistoryLog<E> {
    /// Creates an empty log.
    pub fn new() -> HistoryLog<E> {
        HistoryLog::default()
    }

    /// Appends one event.
    pub fn record(&self, event: E) {
        self.events.lock().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl<E: Clone> HistoryLog<E> {
    /// A copy of every event recorded so far, in append order.
    pub fn snapshot(&self) -> Vec<E> {
        self.events.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_in_append_order() {
        let log = HistoryLog::new();
        assert!(log.is_empty());
        for i in 0..10 {
            log.record(i);
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.snapshot(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_appends_all_land() {
        let log = Arc::new(HistoryLog::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..100 {
                        log.record(t * 100 + i);
                    }
                });
            }
        });
        let mut events = log.snapshot();
        events.sort_unstable();
        assert_eq!(events, (0..400).collect::<Vec<_>>());
    }
}
