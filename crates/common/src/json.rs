//! A minimal JSON value type with an emitter and a recursive-descent parser.
//!
//! The workspace is built offline (no serde), yet the observability layer
//! must export machine-readable snapshots and the bench harness must emit —
//! and re-parse — `BENCH_<figure>.json` files. This module implements the
//! small JSON subset those schemas need: objects, arrays, strings, f64
//! numbers, booleans and null.
//!
//! # Examples
//!
//! ```
//! use aloha_common::json::Json;
//!
//! let v = Json::obj([("name", Json::from("cluster")), ("servers", Json::from(4u64))]);
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("servers").and_then(Json::as_u64), Some(4));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Numbers are stored as `f64` (counts round-trip exactly up to 2^53, far
/// beyond anything a benchmark run produces). Object keys are kept sorted so
/// emission is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A field of an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key → value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset of the first
    /// syntax error, or trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = Json::obj([
            ("name", Json::from("cluster")),
            ("ok", Json::from(true)),
            ("nothing", Json::Null),
            ("tput", Json::from(12.5)),
            (
                "children",
                Json::Arr(vec![Json::obj([("n", Json::from(1u64))])]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 , \"x\" ] } ").unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_counts_survive() {
        let v = Json::from(9_007_199_254_740_992u64); // 2^53
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(9_007_199_254_740_992));
    }

    #[test]
    fn unicode_strings_round_trip() {
        let v = Json::from("héllo → wörld");
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str(), Some("héllo → wörld"));
    }
}
