//! Decentralized transaction timestamps (ECC version numbers).
//!
//! ECC orders transactions by timestamps that front-ends generate locally,
//! without coordination (§II of the paper). A timestamp must be globally
//! unique and must fall within the validity period of the epoch in which the
//! transaction starts. We encode a timestamp as a 64-bit integer:
//!
//! ```text
//!  63                         14 13        6 5      0
//! +-----------------------------+-----------+--------+
//! |  microseconds since base    | server id |  seq   |
//! +-----------------------------+-----------+--------+
//! ```
//!
//! Two transactions started by different servers always differ in the server
//! field; two transactions started in the same microsecond by the same server
//! differ in the sequence field. Comparisons are plain integer comparisons, so
//! ordering by timestamp is a total order consistent with (approximate) real
//! time.

use std::fmt;

use crate::ids::ServerId;

/// Bits reserved for the per-microsecond sequence number.
const SEQ_BITS: u32 = 6;
/// Bits reserved for the server id.
const SERVER_BITS: u32 = ServerId::BITS;
/// Shift applied to the microsecond component.
const MICROS_SHIFT: u32 = SEQ_BITS + SERVER_BITS;

/// A 64-bit multi-version timestamp: the transaction's version number.
///
/// Timestamps double as version numbers in the multi-version store (§III-D):
/// every write of a transaction is installed at the transaction's timestamp.
/// [`Timestamp::ZERO`] sorts before every real timestamp and is used for
/// initial database load versions.
///
/// # Examples
///
/// ```
/// use aloha_common::{ServerId, Timestamp};
///
/// let a = Timestamp::from_parts(5, ServerId(0), 0);
/// let b = Timestamp::from_parts(5, ServerId(1), 0);
/// assert!(a < b); // same microsecond, tie broken by server id
/// assert_eq!(b.micros(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The smallest timestamp; sorts before all real transaction timestamps.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);
    /// Maximum sequence value per (microsecond, server) pair.
    pub const MAX_SEQ: u64 = (1 << SEQ_BITS) - 1;

    /// Builds a timestamp from its raw 64-bit representation.
    pub fn from_raw(raw: u64) -> Timestamp {
        Timestamp(raw)
    }

    /// Returns the raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Composes a timestamp from a microsecond count, a server id and a
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds [`Timestamp::MAX_SEQ`] or the microsecond count
    /// overflows the 50-bit field; both indicate programmer error at the call
    /// site rather than recoverable conditions.
    pub fn from_parts(micros: u64, server: ServerId, seq: u64) -> Timestamp {
        assert!(seq <= Self::MAX_SEQ, "sequence {seq} exceeds field width");
        assert!(
            micros < (1 << (64 - MICROS_SHIFT)),
            "microsecond count {micros} exceeds field width"
        );
        Timestamp((micros << MICROS_SHIFT) | ((server.0 as u64) << SEQ_BITS) | seq)
    }

    /// The microsecond component (time since the cluster's clock base).
    pub fn micros(self) -> u64 {
        self.0 >> MICROS_SHIFT
    }

    /// The server that generated this timestamp.
    pub fn server(self) -> ServerId {
        ServerId(((self.0 >> SEQ_BITS) & ((1 << SERVER_BITS) - 1)) as u16)
    }

    /// The per-microsecond sequence component.
    pub fn seq(self) -> u64 {
        self.0 & Self::MAX_SEQ
    }

    /// The immediately preceding timestamp, saturating at zero.
    ///
    /// Functor computing reads "the latest version strictly below the functor's
    /// version", expressed in Algorithm 1 as `Get(rk, r.v - 1)`.
    pub fn pred(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }

    /// The immediately following timestamp, saturating at the maximum.
    pub fn succ(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// Returns the earliest timestamp within the given microsecond.
    pub fn floor_of_micros(micros: u64) -> Timestamp {
        Timestamp::from_parts(micros, ServerId(0), 0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us/{}#{}", self.micros(), self.server(), self.seq())
    }
}

impl From<Timestamp> for u64 {
    fn from(ts: Timestamp) -> u64 {
        ts.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip() {
        let ts = Timestamp::from_parts(123_456, ServerId(9), 17);
        assert_eq!(ts.micros(), 123_456);
        assert_eq!(ts.server(), ServerId(9));
        assert_eq!(ts.seq(), 17);
    }

    #[test]
    fn ordering_is_micros_then_server_then_seq() {
        let base = Timestamp::from_parts(10, ServerId(1), 1);
        assert!(Timestamp::from_parts(11, ServerId(0), 0) > base);
        assert!(Timestamp::from_parts(10, ServerId(2), 0) > base);
        assert!(Timestamp::from_parts(10, ServerId(1), 2) > base);
        assert!(Timestamp::from_parts(10, ServerId(1), 0) < base);
    }

    #[test]
    fn pred_and_succ_are_adjacent() {
        let ts = Timestamp::from_parts(5, ServerId(3), 3);
        assert_eq!(ts.pred().succ(), ts);
        assert!(ts.pred() < ts && ts < ts.succ());
    }

    #[test]
    fn pred_saturates_at_zero() {
        assert_eq!(Timestamp::ZERO.pred(), Timestamp::ZERO);
    }

    #[test]
    fn zero_sorts_first() {
        assert!(Timestamp::ZERO < Timestamp::from_parts(0, ServerId(0), 1));
    }

    #[test]
    #[should_panic(expected = "sequence")]
    fn oversized_seq_panics() {
        let _ = Timestamp::from_parts(0, ServerId(0), Timestamp::MAX_SEQ + 1);
    }

    #[test]
    fn distinct_servers_never_collide() {
        let a = Timestamp::from_parts(77, ServerId(1), 5);
        let b = Timestamp::from_parts(77, ServerId(2), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn display_mentions_all_parts() {
        let ts = Timestamp::from_parts(4, ServerId(2), 1);
        let s = ts.to_string();
        assert!(
            s.contains("4us") && s.contains("s2") && s.contains("#1"),
            "{s}"
        );
    }
}
