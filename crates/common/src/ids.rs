//! Compact identifiers for servers, partitions, transactions and epochs.
//!
//! All identifiers are thin newtypes ([C-NEWTYPE]) so that a partition id can
//! never be confused with a server id at a call site, even though both are
//! small integers in the simulated cluster.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Identifier of a server process (an FE/BE pair in ALOHA-DB terms).
///
/// In the paper's deployment every host runs one server process; in this
/// reproduction each `ServerId` names one simulated server inside the test
/// process. Server ids are also embedded into [`crate::Timestamp`]s to make
/// decentralized timestamps globally unique, so they must fit into
/// [`ServerId::BITS`] bits.
///
/// # Examples
///
/// ```
/// use aloha_common::ServerId;
/// let s = ServerId(7);
/// assert_eq!(s.index(), 7);
/// assert_eq!(format!("{s}"), "s7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub u16);

impl ServerId {
    /// Number of bits a server id occupies inside a [`crate::Timestamp`].
    pub const BITS: u32 = 8;
    /// Largest server id representable inside a timestamp.
    pub const MAX: ServerId = ServerId((1 << Self::BITS) - 1);

    /// Returns the id as a `usize` index, convenient for vector lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u16> for ServerId {
    fn from(v: u16) -> Self {
        ServerId(v)
    }
}

/// Identifier of a data partition.
///
/// ALOHA-DB hash-partitions the key space; each partition is stored by exactly
/// one backend (BE). In this reproduction partition *i* lives on server *i*,
/// matching the paper's one-BE-per-host layout.
///
/// # Examples
///
/// ```
/// use aloha_common::PartitionId;
/// assert_eq!(PartitionId(2).index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// Returns the id as a `usize` index, convenient for vector lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for PartitionId {
    fn from(v: u16) -> Self {
        PartitionId(v)
    }
}

/// Client-visible transaction identifier, unique per front-end.
///
/// `TxnId` is assigned when a transaction request enters the system and is
/// used to correlate acknowledgements; it is *not* the serialization order —
/// that role belongs to the transaction's [`crate::Timestamp`].
///
/// # Examples
///
/// ```
/// use aloha_common::TxnId;
/// let id = TxnId(99);
/// assert_eq!(format!("{id}"), "t99");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Monotone epoch sequence number handed out by the epoch manager.
///
/// # Examples
///
/// ```
/// use aloha_common::EpochId;
/// assert!(EpochId(1).next() == EpochId(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl EpochId {
    /// Returns the epoch that follows this one.
    pub fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_round_trips_through_index() {
        for raw in [0u16, 1, 200, 255] {
            assert_eq!(ServerId(raw).index(), raw as usize);
        }
    }

    #[test]
    fn server_id_max_fits_bits() {
        assert_eq!(ServerId::MAX.0 as u32, (1u32 << ServerId::BITS) - 1);
    }

    #[test]
    fn epoch_next_is_monotone() {
        let e = EpochId(41);
        assert!(e.next() > e);
        assert_eq!(e.next(), EpochId(42));
    }

    #[test]
    fn display_forms_are_nonempty_and_distinct() {
        assert_eq!(ServerId(1).to_string(), "s1");
        assert_eq!(PartitionId(1).to_string(), "p1");
        assert_eq!(TxnId(1).to_string(), "t1");
        assert_eq!(EpochId(1).to_string(), "e1");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(PartitionId(1) < PartitionId(2));
        assert!(TxnId(9) < TxnId(10));
    }
}
