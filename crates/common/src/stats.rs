//! The unified stats schema: one composable snapshot tree for both engines.
//!
//! Every observable component — cluster, server, partition, network bus,
//! epoch manager — reports a [`StatsSnapshot`] node holding named counters
//! and per-stage latency summaries ([`StageStats`]), with children forming
//! the cluster → server → partition/net hierarchy. The same schema is
//! rendered as human-readable text ([`fmt::Display`]) and JSON
//! ([`StatsSnapshot::to_json`]/[`from_json`](StatsSnapshot::from_json)), so
//! the bench harness, CI artifacts and interactive debugging all read the
//! same numbers.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;
use crate::metrics::HistogramSnapshot;

/// Latency summary of one lifecycle stage (or any other histogram).
///
/// # Examples
///
/// ```
/// use aloha_common::metrics::Histogram;
/// use aloha_common::stats::StageStats;
/// let h = Histogram::new();
/// h.record(100);
/// let s = StageStats::from(&h.snapshot());
/// assert_eq!(s.count, 1);
/// assert!(s.p99_micros >= 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageStats {
    /// Number of samples.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_micros: f64,
    /// Median latency in microseconds (bucket upper bound).
    pub p50_micros: u64,
    /// 95th-percentile latency in microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_micros: u64,
    /// Largest observed latency in microseconds.
    pub max_micros: u64,
}

impl From<&HistogramSnapshot> for StageStats {
    fn from(h: &HistogramSnapshot) -> StageStats {
        StageStats {
            count: h.count,
            mean_micros: h.mean_micros(),
            p50_micros: h.quantile_micros(0.50),
            p95_micros: h.quantile_micros(0.95),
            p99_micros: h.quantile_micros(0.99),
            max_micros: h.max,
        }
    }
}

impl StageStats {
    fn to_json(self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean_micros", Json::from(self.mean_micros)),
            ("p50_micros", Json::from(self.p50_micros)),
            ("p95_micros", Json::from(self.p95_micros)),
            ("p99_micros", Json::from(self.p99_micros)),
            ("max_micros", Json::from(self.max_micros)),
        ])
    }

    fn from_json(v: &Json) -> Result<StageStats, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("stage stats missing numeric field '{k}'"))
        };
        Ok(StageStats {
            count: field("count")? as u64,
            mean_micros: field("mean_micros")?,
            p50_micros: field("p50_micros")? as u64,
            p95_micros: field("p95_micros")? as u64,
            p99_micros: field("p99_micros")? as u64,
            max_micros: field("max_micros")? as u64,
        })
    }
}

/// One node of the composable stats tree.
///
/// # Examples
///
/// ```
/// use aloha_common::stats::StatsSnapshot;
/// let mut node = StatsSnapshot::new("cluster");
/// node.set_counter("committed", 42);
/// let text = node.to_json().to_string();
/// let back = StatsSnapshot::from_json_text(&text).unwrap();
/// assert_eq!(back.counter("committed"), Some(42));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Component name ("cluster", "server_3", "net", ...).
    pub name: String,
    /// Named monotonic counts (committed, aborted, messages, ...).
    pub counters: BTreeMap<String, u64>,
    /// Named instantaneous levels (current epoch duration, tokens in use,
    /// ...). Unlike counters these are last-value-wins, not accumulated.
    pub gauges: BTreeMap<String, u64>,
    /// Named latency summaries, keyed by stage schema name.
    pub stages: BTreeMap<String, StageStats>,
    /// Child components.
    pub children: Vec<StatsSnapshot>,
}

impl StatsSnapshot {
    /// Creates an empty node.
    pub fn new(name: impl Into<String>) -> StatsSnapshot {
        StatsSnapshot {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Sets a counter value.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Sets a gauge value.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: u64) {
        self.gauges.insert(name.into(), value);
    }

    /// Sets a stage summary.
    pub fn set_stage(&mut self, name: impl Into<String>, stats: StageStats) {
        self.stages.insert(name.into(), stats);
    }

    /// Appends a child node.
    pub fn push_child(&mut self, child: StatsSnapshot) {
        self.children.push(child);
    }

    /// Reads a counter on this node.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge on this node.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Reads a stage summary on this node.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.get(name)
    }

    /// Finds the first direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&StatsSnapshot> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Serializes the whole tree to a JSON value.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let stages = Json::Obj(
            self.stages
                .iter()
                .map(|(k, s)| (k.clone(), s.to_json()))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let children = Json::Arr(self.children.iter().map(StatsSnapshot::to_json).collect());
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("counters", counters),
            ("gauges", gauges),
            ("stages", stages),
            ("children", children),
        ])
    }

    /// Reconstructs a tree from a JSON value produced by
    /// [`to_json`](StatsSnapshot::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<StatsSnapshot, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("snapshot missing 'name'")?
            .to_string();
        let mut node = StatsSnapshot::new(name);
        if let Some(counters) = v.get("counters").and_then(Json::as_obj) {
            for (k, c) in counters {
                let value = c
                    .as_u64()
                    .ok_or_else(|| format!("counter '{k}' is not a count"))?;
                node.counters.insert(k.clone(), value);
            }
        }
        if let Some(gauges) = v.get("gauges").and_then(Json::as_obj) {
            // Absent in documents written before gauges existed; treated as
            // empty so old reports keep parsing.
            for (k, g) in gauges {
                let value = g
                    .as_u64()
                    .ok_or_else(|| format!("gauge '{k}' is not a level"))?;
                node.gauges.insert(k.clone(), value);
            }
        }
        if let Some(stages) = v.get("stages").and_then(Json::as_obj) {
            for (k, s) in stages {
                node.stages.insert(k.clone(), StageStats::from_json(s)?);
            }
        }
        if let Some(children) = v.get("children").and_then(Json::as_arr) {
            for c in children {
                node.children.push(StatsSnapshot::from_json(c)?);
            }
        }
        Ok(node)
    }

    /// Parses a JSON document into a snapshot tree.
    pub fn from_json_text(text: &str) -> Result<StatsSnapshot, String> {
        StatsSnapshot::from_json(&Json::parse(text)?)
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        writeln!(f, "{pad}{}", self.name)?;
        for (k, v) in &self.counters {
            writeln!(f, "{pad}  {k}: {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{pad}  {k} (gauge): {v}")?;
        }
        for (k, s) in &self.stages {
            writeln!(
                f,
                "{pad}  {k}: n={} mean={:.1}us p50={}us p95={}us p99={}us max={}us",
                s.count, s.mean_micros, s.p50_micros, s.p95_micros, s.p99_micros, s.max_micros
            )?;
        }
        for child in &self.children {
            child.render(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// This process's resident set size in bytes, read from `/proc/self/status`
/// (`VmRSS`). Returns 0 on platforms without procfs — gauges built on this
/// simply read as absent-by-zero there. Memory-ablation benches use it to
/// assert steady RSS under chain compaction.
pub fn process_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Stage};

    fn sample_tree() -> StatsSnapshot {
        let h = Histogram::new();
        for us in [120, 450, 9_000] {
            h.record(us);
        }
        let mut root = StatsSnapshot::new("cluster");
        root.set_counter("committed", 7);
        root.set_counter("aborted", 1);
        root.set_gauge("epoch_duration_micros", 25_000);
        for stage in Stage::ALL {
            root.set_stage(stage.name(), StageStats::from(&h.snapshot()));
        }
        let mut server = StatsSnapshot::new("server_0");
        server.set_counter("installs", 12);
        let mut net = StatsSnapshot::new("net");
        net.set_counter("messages", 99);
        server.push_child(net);
        root.push_child(server);
        root
    }

    #[test]
    fn json_round_trip_preserves_tree() {
        let tree = sample_tree();
        let text = tree.to_json().to_string();
        let back = StatsSnapshot::from_json_text(&text).unwrap();
        assert_eq!(back, tree);
        assert_eq!(
            back.child("server_0")
                .and_then(|s| s.child("net"))
                .and_then(|n| n.counter("messages")),
            Some(99)
        );
        assert_eq!(back.gauge("epoch_duration_micros"), Some(25_000));
    }

    #[test]
    fn documents_without_gauges_still_parse() {
        // Reports written before the gauges section existed omit it entirely.
        let old = "{\"name\":\"cluster\",\"counters\":{\"committed\":3}}";
        let back = StatsSnapshot::from_json_text(old).unwrap();
        assert_eq!(back.counter("committed"), Some(3));
        assert!(back.gauges.is_empty());
        let bad_gauge = "{\"name\":\"x\",\"gauges\":{\"g\":\"nope\"}}";
        assert!(StatsSnapshot::from_json_text(bad_gauge).is_err());
    }

    #[test]
    fn all_six_stages_export_percentiles() {
        let tree = sample_tree();
        let text = tree.to_json().to_string();
        let back = StatsSnapshot::from_json_text(&text).unwrap();
        for stage in Stage::ALL {
            let s = back.stage(stage.name()).expect("stage present");
            assert_eq!(s.count, 3);
            assert!(s.p50_micros > 0 && s.p95_micros >= s.p50_micros);
            assert!(s.p99_micros >= s.p95_micros);
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(StatsSnapshot::from_json_text("{}").is_err());
        assert!(StatsSnapshot::from_json_text("{\"name\":3}").is_err());
        let bad_counter = "{\"name\":\"x\",\"counters\":{\"c\":\"nope\"}}";
        assert!(StatsSnapshot::from_json_text(bad_counter).is_err());
        let bad_stage = "{\"name\":\"x\",\"stages\":{\"s\":{\"count\":1}}}";
        assert!(StatsSnapshot::from_json_text(bad_stage).is_err());
    }

    #[test]
    fn display_renders_nested_components() {
        let text = sample_tree().to_string();
        assert!(text.contains("cluster"));
        assert!(text.contains("  committed: 7"));
        assert!(text.contains("    installs: 12"));
        assert!(text.contains("epoch_close"));
    }
}
