//! Pluggable cluster clocks.
//!
//! ECC benefits from tightly synchronized clocks but does not require them for
//! correctness (§II). To test that claim, the workspace abstracts time behind
//! the [`Clock`] trait: production code uses [`SystemClock`], unit tests use
//! [`ManualClock`] for determinism, and correctness tests inject per-server
//! skew with [`SkewedClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone microsecond clock shared by a simulated server.
///
/// Implementations must be cheap to call and safe to share across threads.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed since the cluster's common clock base.
    fn now_micros(&self) -> u64;
}

/// Wall-clock backed implementation: microseconds since construction of a
/// shared [`ClockBase`].
///
/// # Examples
///
/// ```
/// use aloha_common::clock::{Clock, ClockBase, SystemClock};
/// let base = ClockBase::new();
/// let clock = SystemClock::new(base);
/// let a = clock.now_micros();
/// let b = clock.now_micros();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct SystemClock {
    base: ClockBase,
}

/// The common origin instant all [`SystemClock`]s in one cluster measure from.
///
/// Sharing a base keeps timestamps small (they count micros since cluster
/// start, not since the Unix epoch) which leaves headroom in the 50-bit
/// microsecond field of [`crate::Timestamp`].
#[derive(Debug, Clone)]
pub struct ClockBase {
    origin: Instant,
}

impl ClockBase {
    /// Creates a new clock base anchored at the current instant.
    pub fn new() -> ClockBase {
        ClockBase {
            origin: Instant::now(),
        }
    }
}

impl Default for ClockBase {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemClock {
    /// Creates a system clock measuring from `base`.
    pub fn new(base: ClockBase) -> SystemClock {
        SystemClock { base }
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.base.origin.elapsed().as_micros() as u64
    }
}

/// A manually advanced clock for deterministic unit tests.
///
/// # Examples
///
/// ```
/// use aloha_common::clock::{Clock, ManualClock};
/// let clock = ManualClock::new(100);
/// assert_eq!(clock.now_micros(), 100);
/// clock.advance(50);
/// assert_eq!(clock.now_micros(), 150);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a manual clock starting at `micros`.
    pub fn new(micros: u64) -> ManualClock {
        ManualClock {
            micros: Arc::new(AtomicU64::new(micros)),
        }
    }

    /// Advances the clock by `delta` microseconds.
    pub fn advance(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute microsecond count.
    ///
    /// # Panics
    ///
    /// Panics if this would move the clock backwards; [`Clock`] implementations
    /// must be monotone.
    pub fn set(&self, micros: u64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        assert!(
            prev <= micros,
            "manual clock moved backwards: {prev} -> {micros}"
        );
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// Wraps another clock and adds a fixed signed skew, emulating imperfect NTP
/// synchronization on one server.
///
/// # Examples
///
/// ```
/// use aloha_common::clock::{Clock, ManualClock, SkewedClock};
/// let inner = ManualClock::new(1_000);
/// let fast = SkewedClock::new(inner.clone(), 250);
/// let slow = SkewedClock::new(inner, -250);
/// assert_eq!(fast.now_micros(), 1_250);
/// assert_eq!(slow.now_micros(), 750);
/// ```
#[derive(Debug, Clone)]
pub struct SkewedClock<C> {
    inner: C,
    skew_micros: i64,
}

impl<C: Clock> SkewedClock<C> {
    /// Creates a clock reading `inner` plus `skew_micros` (may be negative).
    pub fn new(inner: C, skew_micros: i64) -> SkewedClock<C> {
        SkewedClock { inner, skew_micros }
    }
}

impl<C: Clock> Clock for SkewedClock<C> {
    fn now_micros(&self) -> u64 {
        self.inner
            .now_micros()
            .saturating_add_signed(self.skew_micros)
    }
}

/// A cross-process clock: microseconds since a Unix-epoch origin chosen by a
/// launcher and passed to every process of one deployment.
///
/// [`SystemClock`]'s [`ClockBase`] wraps an [`Instant`], which is only
/// meaningful inside one process. When each FE/BE runs as its own OS process,
/// the launcher instead picks an absolute origin (its own start time, as
/// microseconds since the Unix epoch) and hands the same number to every
/// child; each child's `UnixClock` then measures against the shared origin
/// through the OS wall clock, so timestamps remain comparable across the
/// deployment to NTP precision — exactly the synchronization model of the
/// paper's EC2 evaluation.
///
/// Readings are clamped to be monotone per process (a wall-clock step
/// backwards repeats the last reading rather than going back in time).
///
/// # Examples
///
/// ```
/// use aloha_common::clock::{Clock, UnixClock};
/// let origin = UnixClock::unix_now_micros() - 1_000;
/// let clock = UnixClock::new(origin);
/// assert!(clock.now_micros() >= 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct UnixClock {
    origin_unix_micros: u64,
    last: Arc<AtomicU64>,
}

impl UnixClock {
    /// Creates a clock measuring from `origin_unix_micros` (microseconds
    /// since the Unix epoch, typically chosen once by a launcher).
    pub fn new(origin_unix_micros: u64) -> UnixClock {
        UnixClock {
            origin_unix_micros,
            last: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current wall-clock time in microseconds since the Unix epoch —
    /// what a launcher uses to pick a deployment's origin.
    pub fn unix_now_micros() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64)
    }
}

impl Clock for UnixClock {
    fn now_micros(&self) -> u64 {
        let now = Self::unix_now_micros().saturating_sub(self.origin_unix_micros);
        // Monotone clamp: never report less than a previous reading.
        self.last.fetch_max(now, Ordering::SeqCst);
        self.last.load(Ordering::SeqCst)
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new(ClockBase::new());
        let mut prev = clock.now_micros();
        for _ in 0..1000 {
            let now = clock.now_micros();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn shared_base_gives_comparable_clocks() {
        let base = ClockBase::new();
        let a = SystemClock::new(base.clone());
        let b = SystemClock::new(base);
        let ra = a.now_micros();
        let rb = b.now_micros();
        // Both measure from the same origin, so they should be within a
        // generous bound of each other.
        assert!(rb.abs_diff(ra) < 1_000_000);
    }

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new(5);
        c.advance(10);
        assert_eq!(c.now_micros(), 15);
        c.set(20);
        assert_eq!(c.now_micros(), 20);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new(100);
        c.set(50);
    }

    #[test]
    fn skew_saturates_instead_of_underflowing() {
        let c = SkewedClock::new(ManualClock::new(10), -100);
        assert_eq!(c.now_micros(), 0);
    }

    #[test]
    fn arc_clock_delegates() {
        let c: Arc<dyn Clock> = Arc::new(ManualClock::new(9));
        assert_eq!(c.now_micros(), 9);
    }
}
