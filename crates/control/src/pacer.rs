//! The adaptive epoch pacer: an AIMD/hysteresis controller for epoch (and
//! sequencer-batch) durations.
//!
//! The paper frames epoch duration as ECC's central latency/throughput
//! tradeoff (§II, §V): a longer epoch amortizes the switch cost over more
//! transactions, a shorter one bounds the delay until the next epoch's reads
//! and commit visibility. The [`AdaptivePacer`] closes the loop over signals
//! the engines already export — epoch-switch duration, executor queue depth,
//! functor-computing backlog, batch occupancy — folding them into a single
//! dimensionless *pressure* and steering the duration inside `[min, max]`:
//!
//! * pressure above the high watermark → the pipeline is congested (or the
//!   switch overhead dominates the epoch), so *multiplicatively lengthen*
//!   the epoch to amortize switches and let the backlog drain in larger
//!   batches;
//! * pressure below the low watermark → the system has headroom, so
//!   *additively shorten* toward the latency-optimal minimum;
//! * pressure inside the `[low, high]` band → hold (the hysteresis band
//!   prevents limit-cycle oscillation between the two actions).
//!
//! Multiplicative-on-lengthen / additive-on-shorten is deliberate: backing
//! off must outrun a growing queue, while chasing lower latency may only
//! creep so a brief lull cannot collapse the epoch and re-trigger overload.

use std::sync::Arc;
use std::time::Duration;

use aloha_common::metrics::{duration_micros, Gauge};
use aloha_epoch::Pacer;

/// Instantaneous backpressure readings fed to the controller.
///
/// All fields are levels (not rates); zero means idle. Sources that do not
/// apply to an engine (e.g. batch occupancy with batching off) stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacerSample {
    /// Entries queued toward the executor lanes (backend data plane).
    pub exec_queue: u64,
    /// Transactions parked in the functor-computing stage (FE side).
    pub backlog: u64,
    /// Envelopes currently coalescing in the destination batcher.
    pub batch_occupancy: u64,
}

/// Where the pacer reads its signals: any `Fn` closure sampling live engine
/// state (queue lengths, pending vectors) works.
pub trait SignalSource: Send + 'static {
    /// Takes one instantaneous reading.
    fn sample(&self) -> PacerSample;
}

impl<F: Fn() -> PacerSample + Send + 'static> SignalSource for F {
    fn sample(&self) -> PacerSample {
        self()
    }
}

/// Whether the epoch duration is feedback-governed or pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacingMode {
    /// Every epoch uses the configured initial duration — bit-for-bit the
    /// pre-control-plane behavior, and the ablation baseline.
    Fixed,
    /// AIMD/hysteresis adaptation inside `[min, max]`.
    Adaptive,
}

/// Controller parameters.
#[derive(Debug, Clone)]
pub struct PacerConfig {
    /// Fixed vs adaptive operation.
    pub mode: PacingMode,
    /// Starting (and `Fixed`-mode) epoch duration.
    pub initial: Duration,
    /// Shortest epoch the controller may choose.
    pub min: Duration,
    /// Longest epoch the controller may choose.
    pub max: Duration,
    /// Additive shorten step applied per epoch while pressure is low.
    pub shorten_step: Duration,
    /// Multiplicative lengthen factor applied while pressure is high (> 1).
    pub lengthen_factor: f64,
    /// Pressure below which the controller shortens.
    pub low_watermark: f64,
    /// Pressure above which the controller lengthens.
    pub high_watermark: f64,
    /// Executor queue depth that maps to pressure 1.0.
    pub exec_queue_target: u64,
    /// Functor-computing backlog that maps to pressure 1.0.
    pub backlog_target: u64,
    /// Batcher occupancy that maps to pressure 1.0.
    pub batch_occupancy_target: u64,
    /// Switch-overhead fraction (switch time / epoch time) that maps to
    /// pressure 1.0; epochs lengthen when switches stop amortizing.
    pub switch_overhead_target: f64,
}

impl PacerConfig {
    /// The `Fixed` configuration at `initial` — today's behavior.
    pub fn fixed(initial: Duration) -> PacerConfig {
        PacerConfig {
            mode: PacingMode::Fixed,
            ..PacerConfig::adaptive(initial)
        }
    }

    /// An adaptive configuration centered on `initial`, with the bounds and
    /// gains used throughout the workspace: `[initial/5, initial*4]`,
    /// shorten by `initial/10` per quiet epoch, lengthen ×1.5 per congested
    /// one, hysteresis band `[0.5, 1.0]`.
    pub fn adaptive(initial: Duration) -> PacerConfig {
        PacerConfig {
            mode: PacingMode::Adaptive,
            initial,
            min: initial / 5,
            max: initial * 4,
            shorten_step: initial / 10,
            lengthen_factor: 1.5,
            low_watermark: 0.5,
            high_watermark: 1.0,
            exec_queue_target: 256,
            backlog_target: 256,
            batch_occupancy_target: 1024,
            switch_overhead_target: 0.2,
        }
    }

    /// Overrides the clamp bounds.
    pub fn with_bounds(mut self, min: Duration, max: Duration) -> PacerConfig {
        self.min = min;
        self.max = max;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`aloha_common::Error::Config`] when the bounds are inverted,
    /// `initial` lies outside them, the gains are degenerate, or the
    /// watermarks do not form a band.
    pub fn validate(&self) -> aloha_common::Result<()> {
        let err = |msg: &str| Err(aloha_common::Error::Config(msg.to_string()));
        if self.min.is_zero() || self.min > self.max {
            return err("pacer bounds must satisfy 0 < min <= max");
        }
        if self.initial < self.min || self.initial > self.max {
            return err("pacer initial duration must lie within [min, max]");
        }
        if self.mode == PacingMode::Adaptive {
            if self.lengthen_factor <= 1.0 {
                return err("pacer lengthen factor must exceed 1");
            }
            if self.shorten_step.is_zero() {
                return err("pacer shorten step must be positive");
            }
            if !(0.0 < self.low_watermark && self.low_watermark <= self.high_watermark) {
                return err("pacer watermarks must satisfy 0 < low <= high");
            }
        }
        Ok(())
    }
}

/// Gauges exporting the pacer's live state into the `control` stats node.
#[derive(Debug, Default)]
pub struct PacerGauges {
    /// The duration most recently handed to the epoch manager, in µs.
    pub epoch_duration_micros: Gauge,
    /// The most recent pressure reading, in thousandths (pressure × 1000).
    pub pressure_millis: Gauge,
}

/// The AIMD/hysteresis controller. Implements [`aloha_epoch::Pacer`], so the
/// epoch manager consults it before every grant; Calvin's sequencer drives
/// it once per batch round through the same trait.
pub struct AdaptivePacer {
    cfg: PacerConfig,
    current: Duration,
    source: Box<dyn SignalSource>,
    gauges: Arc<PacerGauges>,
    last_switch: Duration,
}

impl std::fmt::Debug for AdaptivePacer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePacer")
            .field("mode", &self.cfg.mode)
            .field("current", &self.current)
            .finish()
    }
}

impl AdaptivePacer {
    /// Builds a controller reading signals from `source` and exporting its
    /// state through `gauges`.
    ///
    /// # Errors
    ///
    /// Propagates [`PacerConfig::validate`] failures.
    pub fn new(
        cfg: PacerConfig,
        source: impl SignalSource,
        gauges: Arc<PacerGauges>,
    ) -> aloha_common::Result<AdaptivePacer> {
        cfg.validate()?;
        let current = cfg.initial;
        gauges.epoch_duration_micros.set(duration_micros(current));
        Ok(AdaptivePacer {
            cfg,
            current,
            source: Box::new(source),
            gauges,
            last_switch: Duration::ZERO,
        })
    }

    /// The normalized pressure for `sample` given the most recent switch
    /// measurement: the *maximum* of the per-signal ratios, so the most
    /// congested resource governs (bottleneck semantics — averaging would
    /// let an idle signal mask a saturated one).
    fn pressure(&self, sample: PacerSample) -> f64 {
        let ratio = |v: u64, target: u64| v as f64 / target.max(1) as f64;
        let switch_fraction = self.last_switch.as_secs_f64() / self.current.as_secs_f64();
        (ratio(sample.exec_queue, self.cfg.exec_queue_target))
            .max(ratio(sample.backlog, self.cfg.backlog_target))
            .max(ratio(
                sample.batch_occupancy,
                self.cfg.batch_occupancy_target,
            ))
            .max(switch_fraction / self.cfg.switch_overhead_target)
    }

    /// The duration the controller currently holds.
    pub fn current(&self) -> Duration {
        self.current
    }
}

impl Pacer for AdaptivePacer {
    fn next_duration(&mut self) -> Duration {
        if self.cfg.mode == PacingMode::Fixed {
            return self.current;
        }
        let pressure = self.pressure(self.source.sample());
        if pressure > self.cfg.high_watermark {
            self.current = Duration::from_secs_f64(
                (self.current.as_secs_f64() * self.cfg.lengthen_factor)
                    .min(self.cfg.max.as_secs_f64()),
            );
        } else if pressure < self.cfg.low_watermark {
            self.current = self
                .current
                .saturating_sub(self.cfg.shorten_step)
                .max(self.cfg.min);
        }
        self.gauges
            .epoch_duration_micros
            .set(duration_micros(self.current));
        self.gauges.pressure_millis.set((pressure * 1000.0) as u64);
        self.current
    }

    fn observe_switch(&mut self, switch: Duration) {
        // Exponential smoothing so a single slow switch (GC pause, fault
        // retransmission) cannot whipsaw the controller.
        self.last_switch = (self.last_switch + switch) / 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pacer_with_queue(queue: Arc<AtomicU64>) -> AdaptivePacer {
        let cfg = PacerConfig::adaptive(Duration::from_millis(25));
        let source = move || PacerSample {
            exec_queue: queue.load(Ordering::Relaxed),
            ..PacerSample::default()
        };
        AdaptivePacer::new(cfg, source, Arc::new(PacerGauges::default())).unwrap()
    }

    #[test]
    fn quiet_system_converges_to_min_and_clamps() {
        let queue = Arc::new(AtomicU64::new(0));
        let mut pacer = pacer_with_queue(Arc::clone(&queue));
        let mut prev = pacer.current();
        for _ in 0..100 {
            let next = pacer.next_duration();
            assert!(next <= prev, "quiet epochs must only shorten");
            prev = next;
        }
        assert_eq!(prev, Duration::from_millis(5), "clamped at min = initial/5");
    }

    #[test]
    fn congestion_converges_to_max_and_clamps() {
        let queue = Arc::new(AtomicU64::new(100_000));
        let mut pacer = pacer_with_queue(Arc::clone(&queue));
        let mut prev = pacer.current();
        for _ in 0..100 {
            let next = pacer.next_duration();
            assert!(next >= prev, "congested epochs must only lengthen");
            prev = next;
        }
        assert_eq!(prev, Duration::from_millis(100), "clamped at max = 4x");
    }

    #[test]
    fn lengthen_outpaces_shorten() {
        // AIMD: recovery from overload must be faster than the creep toward
        // lower latency, or a growing queue outruns the controller.
        let queue = Arc::new(AtomicU64::new(0));
        let mut pacer = pacer_with_queue(Arc::clone(&queue));
        let start = pacer.current();
        queue.store(100_000, Ordering::Relaxed);
        pacer.next_duration();
        let lengthened = pacer.current() - start;
        let after_lengthen = pacer.current();
        queue.store(0, Ordering::Relaxed);
        pacer.next_duration();
        let shorten_step = after_lengthen - pacer.current();
        assert!(
            lengthened > shorten_step,
            "one lengthen ({lengthened:?}) must exceed one shorten ({shorten_step:?})"
        );
    }

    #[test]
    fn hysteresis_band_holds_steady() {
        // Pressure inside [low, high] must leave the duration untouched —
        // no limit-cycle oscillation around a watermark.
        let queue = Arc::new(AtomicU64::new(0));
        let mut pacer = pacer_with_queue(Arc::clone(&queue));
        // exec_queue_target = 256, band = [0.5, 1.0] → 192 gives 0.75.
        queue.store(192, Ordering::Relaxed);
        let held = pacer.next_duration();
        for _ in 0..50 {
            assert_eq!(pacer.next_duration(), held, "in-band pressure must hold");
        }
    }

    #[test]
    fn switch_overhead_alone_lengthens_epochs() {
        // No queue pressure, but the measured switch costs more than 20% of
        // the epoch: the controller must amortize by lengthening.
        let queue = Arc::new(AtomicU64::new(0));
        let mut pacer = pacer_with_queue(Arc::clone(&queue));
        let before = pacer.current();
        for _ in 0..4 {
            pacer.observe_switch(Duration::from_millis(20));
        }
        assert!(pacer.next_duration() > before);
    }

    #[test]
    fn fixed_mode_never_moves() {
        let cfg = PacerConfig::fixed(Duration::from_millis(25));
        let source = || PacerSample {
            exec_queue: u64::MAX / 2,
            backlog: u64::MAX / 2,
            batch_occupancy: u64::MAX / 2,
        };
        let mut pacer = AdaptivePacer::new(cfg, source, Arc::new(PacerGauges::default())).unwrap();
        for _ in 0..10 {
            assert_eq!(pacer.next_duration(), Duration::from_millis(25));
        }
    }

    #[test]
    fn gauges_track_controller_state() {
        let gauges = Arc::new(PacerGauges::default());
        let cfg = PacerConfig::adaptive(Duration::from_millis(10));
        let mut pacer = AdaptivePacer::new(cfg, PacerSample::default, Arc::clone(&gauges)).unwrap();
        assert_eq!(gauges.epoch_duration_micros.get(), 10_000);
        pacer.next_duration();
        assert_eq!(gauges.epoch_duration_micros.get(), 9_000);
        assert_eq!(gauges.pressure_millis.get(), 0);
    }

    #[test]
    fn config_validation_rejects_degenerate_controllers() {
        let ok = PacerConfig::adaptive(Duration::from_millis(25));
        assert!(ok.validate().is_ok());
        let mut inverted = ok.clone();
        inverted.min = Duration::from_millis(50);
        inverted.max = Duration::from_millis(10);
        assert!(inverted.validate().is_err());
        let mut outside = ok.clone();
        outside.initial = Duration::from_secs(10);
        assert!(outside.validate().is_err());
        let mut flat = ok.clone();
        flat.lengthen_factor = 1.0;
        assert!(flat.validate().is_err());
        let mut band = ok;
        band.low_watermark = 2.0;
        band.high_watermark = 1.0;
        assert!(band.validate().is_err());
    }
}
