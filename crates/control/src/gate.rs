//! FE admission control: a token window with a bounded wait queue and a
//! reserved read share.
//!
//! The gate sits *in front of* the engines' `Database::execute` — before the
//! transform stage — so a shed transaction never installs a functor and
//! leaves no server-side state to clean up. A transaction holds one token
//! (a [`Permit`]) from admission until its handle resolves; when the window
//! is full, callers wait in a bounded queue for up to the configured
//! timeout, and once the queue is also full (or the wait expires) the gate
//! sheds with the retryable [`Error::Overloaded`]. Read-only transactions
//! keep a reserved share of the window — writes may not occupy the last
//! `read_reserve` tokens — so reads stay live under write overload.

use std::sync::Arc;
use std::time::Duration;

use aloha_common::metrics::{Counter, Gauge};
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Error, Result};
use parking_lot::{Condvar, Mutex};

/// What the admitted transaction will do, for the read-reserve split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Installs functors (full `execute` path).
    Write,
    /// Read-only (`read_latest` path); may use the reserved share.
    Read,
}

/// Admission-gate parameters.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Tokens: maximum transactions in flight past this FE.
    pub window: usize,
    /// Callers allowed to wait for a token before new arrivals are shed.
    pub queue_limit: usize,
    /// How long a queued caller waits before being shed.
    pub queue_timeout: Duration,
    /// Tokens only read-only transactions may occupy.
    pub read_reserve: usize,
    /// Back-off hint carried on [`Error::Overloaded`].
    pub retry_after: Duration,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            window: 256,
            queue_limit: 256,
            queue_timeout: Duration::from_millis(50),
            read_reserve: 16,
            retry_after: Duration::from_millis(5),
        }
    }
}

impl GateConfig {
    /// Overrides the token window.
    pub fn with_window(mut self, window: usize) -> GateConfig {
        self.window = window;
        self
    }

    /// Overrides the wait-queue bound.
    pub fn with_queue(mut self, limit: usize, timeout: Duration) -> GateConfig {
        self.queue_limit = limit;
        self.queue_timeout = timeout;
        self
    }

    /// Overrides the read-only reserve.
    pub fn with_read_reserve(mut self, reserve: usize) -> GateConfig {
        self.read_reserve = reserve;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the window is zero or the read reserve
    /// leaves no tokens for writes.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(Error::Config("admission window must be positive".into()));
        }
        if self.read_reserve >= self.window {
            return Err(Error::Config(
                "read reserve must leave at least one write token".into(),
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct GateState {
    in_use: usize,
    writes_in_use: usize,
    waiting: usize,
}

/// Observable gate activity, exported on the cluster's `control` node.
#[derive(Debug, Default)]
pub struct GateStats {
    /// Transactions admitted straight through or after queueing.
    pub admitted: Counter,
    /// Transactions shed with [`Error::Overloaded`].
    pub shed: Counter,
    /// Admissions that had to wait in the queue first.
    pub queued: Counter,
    /// Tokens currently held.
    pub tokens_in_use: Gauge,
    /// Callers currently waiting for a token.
    pub queue_depth: Gauge,
}

/// The per-FE token-window admission gate.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use aloha_control::{AccessKind, AdmissionGate, GateConfig};
/// use std::time::Duration;
///
/// let gate = Arc::new(
///     AdmissionGate::new(
///         GateConfig::default()
///             .with_window(2)
///             .with_read_reserve(1)
///             .with_queue(0, Duration::ZERO),
///     )
///     .unwrap(),
/// );
/// let a = gate.admit(AccessKind::Write).unwrap();
/// // The last token is reserved for reads: a second write is shed...
/// let shed = gate.admit(AccessKind::Write).unwrap_err();
/// assert!(shed.is_retryable());
/// // ...while a read still gets through.
/// let r = gate.admit(AccessKind::Read).unwrap();
/// drop((a, r));
/// ```
#[derive(Debug)]
pub struct AdmissionGate {
    cfg: GateConfig,
    state: Mutex<GateState>,
    available: Condvar,
    stats: GateStats,
}

impl AdmissionGate {
    /// Builds a gate.
    ///
    /// # Errors
    ///
    /// Propagates [`GateConfig::validate`] failures.
    pub fn new(cfg: GateConfig) -> Result<AdmissionGate> {
        cfg.validate()?;
        Ok(AdmissionGate {
            cfg,
            state: Mutex::new(GateState::default()),
            available: Condvar::new(),
            stats: GateStats::default(),
        })
    }

    fn has_token(&self, state: &GateState, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => state.in_use < self.cfg.window,
            // Writes may not dip into the read reserve.
            AccessKind::Write => {
                state.in_use < self.cfg.window
                    && state.writes_in_use < self.cfg.window - self.cfg.read_reserve
            }
        }
    }

    /// Admits one transaction, blocking in the bounded wait queue when the
    /// window is full.
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the queue is full on arrival or the queue
    /// wait times out without a token freeing up.
    pub fn admit(self: &Arc<Self>, kind: AccessKind) -> Result<Permit> {
        let mut state = self.state.lock();
        if !self.has_token(&state, kind) {
            if state.waiting >= self.cfg.queue_limit {
                drop(state);
                self.stats.shed.incr();
                return Err(Error::Overloaded {
                    retry_after: self.cfg.retry_after,
                });
            }
            state.waiting += 1;
            self.stats.queue_depth.add(1);
            self.stats.queued.incr();
            let deadline = std::time::Instant::now() + self.cfg.queue_timeout;
            while !self.has_token(&state, kind) {
                if self.available.wait_until(&mut state, deadline).timed_out() {
                    break;
                }
            }
            state.waiting -= 1;
            self.stats.queue_depth.sub(1);
            if !self.has_token(&state, kind) {
                drop(state);
                self.stats.shed.incr();
                return Err(Error::Overloaded {
                    retry_after: self.cfg.retry_after,
                });
            }
        }
        state.in_use += 1;
        if kind == AccessKind::Write {
            state.writes_in_use += 1;
        }
        drop(state);
        self.stats.admitted.incr();
        self.stats.tokens_in_use.add(1);
        Ok(Permit {
            gate: Arc::clone(self),
            kind,
        })
    }

    /// The gate's configuration.
    pub fn config(&self) -> &GateConfig {
        &self.cfg
    }

    /// Live activity counters and gauges.
    pub fn stats(&self) -> &GateStats {
        &self.stats
    }

    /// Exports this gate as one node of the unified stats tree.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("admitted", self.stats.admitted.get());
        node.set_counter("shed", self.stats.shed.get());
        node.set_counter("queued", self.stats.queued.get());
        node.set_gauge("admission_window", self.cfg.window as u64);
        node.set_gauge("read_reserve", self.cfg.read_reserve as u64);
        node.set_gauge("tokens_in_use", self.stats.tokens_in_use.get());
        node.set_gauge("queue_depth", self.stats.queue_depth.get());
        node
    }

    /// Resets the activity counters (gauges track live state and are left).
    pub fn reset_stats(&self) {
        self.stats.admitted.reset();
        self.stats.shed.reset();
        self.stats.queued.reset();
    }

    fn release(&self, kind: AccessKind) {
        let mut state = self.state.lock();
        state.in_use -= 1;
        if kind == AccessKind::Write {
            state.writes_in_use -= 1;
        }
        drop(state);
        self.stats.tokens_in_use.sub(1);
        self.available.notify_one();
    }
}

/// One admission token; dropping it returns the token and wakes a waiter.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
    kind: AccessKind,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release(self.kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(cfg: GateConfig) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate::new(cfg).unwrap())
    }

    #[test]
    fn window_bounds_in_flight_and_sheds_when_full() {
        let g = gate(
            GateConfig::default()
                .with_window(2)
                .with_read_reserve(0)
                .with_queue(0, Duration::ZERO),
        );
        let a = g.admit(AccessKind::Write).unwrap();
        let b = g.admit(AccessKind::Write).unwrap();
        let shed = g.admit(AccessKind::Write).unwrap_err();
        assert!(matches!(shed, Error::Overloaded { .. }));
        assert!(shed.is_retryable());
        drop(a);
        let c = g.admit(AccessKind::Write).unwrap();
        drop((b, c));
        assert_eq!(g.stats().admitted.get(), 3);
        assert_eq!(g.stats().shed.get(), 1);
        assert_eq!(g.stats().tokens_in_use.get(), 0);
    }

    #[test]
    fn reads_keep_a_reserved_share_under_write_overload() {
        let g = gate(
            GateConfig::default()
                .with_window(3)
                .with_read_reserve(1)
                .with_queue(0, Duration::ZERO),
        );
        let w1 = g.admit(AccessKind::Write).unwrap();
        let w2 = g.admit(AccessKind::Write).unwrap();
        // Writes are capped at window - reserve = 2...
        assert!(g.admit(AccessKind::Write).is_err());
        // ...but a read takes the reserved token.
        let r = g.admit(AccessKind::Read).unwrap();
        assert!(g.admit(AccessKind::Read).is_err(), "window fully occupied");
        drop((w1, w2, r));
    }

    #[test]
    fn queued_caller_is_admitted_when_a_token_frees() {
        let g = gate(
            GateConfig::default()
                .with_window(1)
                .with_read_reserve(0)
                .with_queue(4, Duration::from_secs(5)),
        );
        let held = g.admit(AccessKind::Write).unwrap();
        let waiter = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.admit(AccessKind::Write).map(|_| ()))
        };
        // Let the waiter park, then free the token.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(g.stats().queue_depth.get(), 1);
        drop(held);
        waiter.join().unwrap().unwrap();
        assert_eq!(g.stats().queued.get(), 1);
        assert_eq!(g.stats().queue_depth.get(), 0);
    }

    #[test]
    fn queue_wait_times_out_into_shed() {
        let g = gate(
            GateConfig::default()
                .with_window(1)
                .with_read_reserve(0)
                .with_queue(4, Duration::from_millis(10)),
        );
        let _held = g.admit(AccessKind::Write).unwrap();
        let started = std::time::Instant::now();
        let shed = g.admit(AccessKind::Write).unwrap_err();
        assert!(started.elapsed() >= Duration::from_millis(10));
        assert_eq!(shed.retry_after(), Some(GateConfig::default().retry_after));
        assert_eq!(g.stats().shed.get(), 1);
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let g = gate(
            GateConfig::default()
                .with_window(1)
                .with_read_reserve(0)
                .with_queue(1, Duration::from_secs(5)),
        );
        let _held = g.admit(AccessKind::Write).unwrap();
        let parked = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.admit(AccessKind::Write).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(20));
        // One waiter occupies the whole queue: the next arrival sheds now.
        let started = std::time::Instant::now();
        assert!(g.admit(AccessKind::Write).is_err());
        assert!(started.elapsed() < Duration::from_secs(1));
        drop(g.admit(AccessKind::Read)); // reads also blocked: window full
        let _ = parked; // leave the waiter to time out after the test asserts
    }

    #[test]
    fn config_validation_rejects_degenerate_gates() {
        assert!(AdmissionGate::new(GateConfig::default().with_window(0)).is_err());
        assert!(
            AdmissionGate::new(GateConfig::default().with_window(4).with_read_reserve(4)).is_err()
        );
    }

    #[test]
    fn concurrent_admissions_never_exceed_window() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = gate(
            GateConfig::default()
                .with_window(8)
                .with_read_reserve(2)
                .with_queue(64, Duration::from_secs(5)),
        );
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|t| {
                let g = Arc::clone(&g);
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let kind = if t % 4 == 0 {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        };
                        let permit = g.admit(kind).unwrap();
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::hint::spin_loop();
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        drop(permit);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 8, "window must bound flight");
        assert_eq!(g.stats().tokens_in_use.get(), 0);
        assert_eq!(g.stats().admitted.get(), 16 * 200);
    }
}
