//! Closed-loop control plane for the ALOHA-DB reproduction.
//!
//! Two cooperating loops give the system its overload story:
//!
//! * **Adaptive epoch pacing** ([`AdaptivePacer`]) — an AIMD/hysteresis
//!   controller implementing [`aloha_epoch::Pacer`]. The epoch manager asks
//!   it for each epoch's duration before issuing the `Authorization`;
//!   Calvin's sequencer asks it for each batch round. Signals come from the
//!   stats the engines already export (switch duration, executor queue
//!   depth, functor-computing backlog, batch occupancy).
//! * **FE admission control** ([`AdmissionGate`]) — a per-FE token window in
//!   front of `Database::execute` that bounds in-flight transactions, sheds
//!   with the retryable `Error::Overloaded { retry_after }` once the window
//!   and its bounded wait queue are full, and reserves a share of the
//!   window for read-only transactions so reads stay live under write
//!   overload.
//!
//! Both loops are off by default; [`ControlConfig`] is the knob the engines
//! expose as `ClusterConfig::with_control` / `CalvinConfig::with_control`.
//! `PacingMode::Fixed` with no gate reproduces the uncontrolled system
//! exactly, which is the ablation baseline.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use aloha_control::{ControlConfig, PacingMode};
//!
//! let control = ControlConfig::adaptive(Duration::from_millis(25));
//! assert_eq!(control.pacing.mode, PacingMode::Adaptive);
//! assert!(control.gate.is_some());
//! control.validate().unwrap();
//! ```

pub mod gate;
pub mod pacer;

pub use gate::{AccessKind, AdmissionGate, GateConfig, GateStats, Permit};
pub use pacer::{AdaptivePacer, PacerConfig, PacerGauges, PacerSample, PacingMode, SignalSource};
// Re-exported so engines that only gate admissions (Calvin) can name the
// pacing trait without a direct aloha-epoch dependency.
pub use aloha_epoch::{FixedPacer, Pacer};

use std::time::Duration;

/// The engine-facing control-plane knob: which pacing mode to run the epoch
/// manager (or Calvin sequencer) in, and whether to gate admissions.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Epoch/batch duration controller parameters.
    pub pacing: PacerConfig,
    /// Admission-gate parameters; `None` leaves the FE ungated.
    pub gate: Option<GateConfig>,
}

impl ControlConfig {
    /// Fixed pacing at `duration`, no gate: the uncontrolled baseline.
    pub fn fixed(duration: Duration) -> ControlConfig {
        ControlConfig {
            pacing: PacerConfig::fixed(duration),
            gate: None,
        }
    }

    /// Adaptive pacing centered on `initial` plus a default admission gate.
    pub fn adaptive(initial: Duration) -> ControlConfig {
        ControlConfig {
            pacing: PacerConfig::adaptive(initial),
            gate: Some(GateConfig::default()),
        }
    }

    /// Replaces the gate configuration (or removes it with `None`).
    pub fn with_gate(mut self, gate: Option<GateConfig>) -> ControlConfig {
        self.gate = gate;
        self
    }

    /// Validates both loops' parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`PacerConfig::validate`] and [`GateConfig::validate`].
    pub fn validate(&self) -> aloha_common::Result<()> {
        self.pacing.validate()?;
        if let Some(gate) = &self.gate {
            gate.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ControlConfig::fixed(Duration::from_millis(25))
            .validate()
            .unwrap();
        ControlConfig::adaptive(Duration::from_millis(25))
            .validate()
            .unwrap();
        let bad = ControlConfig::adaptive(Duration::from_millis(25))
            .with_gate(Some(GateConfig::default().with_window(0)));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fixed_preset_has_no_gate() {
        assert!(ControlConfig::fixed(Duration::from_millis(25))
            .gate
            .is_none());
    }
}
