//! Conformance suite for the [`Transport`] contract, run against both
//! implementations: the simulated in-process [`Bus`] and the real
//! [`TcpTransport`] over loopback.
//!
//! Every property here is one the engines lean on:
//!
//! * **FIFO per peer** — the batcher coalesces and the epoch protocol
//!   assumes one sender's messages to one destination arrive in order;
//! * **no loss under `send_reliable`** — the control plane (grants,
//!   revokes, shutdown) runs on it with no retry layer;
//! * **deregister while sending** — cluster teardown races sends against
//!   endpoint removal; sends must degrade to drops, never panic or wedge;
//! * **recv after shutdown** — dispatcher threads learn about teardown
//!   exclusively from `recv` returning an error.
//!
//! A TCP-only test feeds the listener torn frames and garbage bytes and
//! asserts the transport rejects them (counted, connection dropped) while
//! continuing to serve well-formed peers.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use aloha_common::{Bytes, Error, Result, ServerId};
use aloha_net::{
    Addr, Bus, NetConfig, PendingReplies, RemoteReplier, TcpTransport, Transport, WireCodec,
};

/// Trivial codec for the `String` test message type (no reply slots).
struct TextCodec;

impl WireCodec<String> for TextCodec {
    fn encode(&self, msg: &String, _pending: &PendingReplies, out: &mut Vec<u8>) -> Result<()> {
        out.extend_from_slice(msg.as_bytes());
        Ok(())
    }

    fn decode(&self, bytes: &Bytes, _replier: &RemoteReplier) -> Result<String> {
        String::from_utf8(bytes.to_vec()).map_err(|e| Error::Codec(e.to_string()))
    }
}

/// One deployment under test: transport `i` locally hosts `Addr::Server(i)`
/// and can reach every other index. For the bus that is one shared instance;
/// for TCP it is one transport per index, cross-wired over 127.0.0.1.
struct Deployment {
    transports: Vec<Arc<dyn Transport<String>>>,
}

impl Deployment {
    fn bus(n: u16) -> Deployment {
        let bus: Arc<dyn Transport<String>> = Arc::new(Bus::new(NetConfig::instant()));
        Deployment {
            transports: (0..n).map(|_| Arc::clone(&bus)).collect(),
        }
    }

    fn tcp(n: u16) -> Deployment {
        let raw: Vec<Arc<TcpTransport<String>>> = (0..n)
            .map(|_| {
                Arc::new(TcpTransport::bind("127.0.0.1:0", Arc::new(TextCodec)).expect("bind"))
            })
            .collect();
        let addrs: Vec<SocketAddr> = raw.iter().map(|t| t.local_addr()).collect();
        for (i, t) in raw.iter().enumerate() {
            for (j, at) in addrs.iter().enumerate() {
                if i != j {
                    t.add_peer(Addr::Server(ServerId(j as u16)), *at);
                }
            }
        }
        Deployment {
            transports: raw.into_iter().map(|t| t as _).collect(),
        }
    }

    fn at(&self, i: u16) -> &Arc<dyn Transport<String>> {
        &self.transports[i as usize]
    }

    fn shutdown(self) {
        for t in &self.transports {
            t.shutdown();
        }
    }
}

/// Runs `test` against both implementations so a failure names the culprit.
fn conformance(n: u16, test: impl Fn(&Deployment)) {
    let bus = Deployment::bus(n);
    test(&bus);
    bus.shutdown();
    let tcp = Deployment::tcp(n);
    test(&tcp);
    tcp.shutdown();
}

const RECV: Duration = Duration::from_secs(5);

#[test]
fn fifo_per_peer() {
    conformance(2, |d| {
        let rx = d.at(1).register(Addr::Server(ServerId(1)));
        for i in 0..200u32 {
            d.at(0)
                .send(Addr::Server(ServerId(1)), format!("m{i}"))
                .expect("send");
        }
        // The data plane is lossy by contract but neither implementation
        // drops without injected faults or connection failure; order is
        // the property under test.
        let mut last = None;
        for _ in 0..200 {
            let msg = rx.recv_timeout(RECV).expect("ordered stream");
            let seq: u32 = msg.strip_prefix('m').unwrap().parse().unwrap();
            if let Some(prev) = last {
                assert!(seq > prev, "reordered: {seq} after {prev}");
            }
            last = Some(seq);
        }
        d.at(1).deregister(Addr::Server(ServerId(1)));
    });
}

#[test]
fn send_reliable_loses_nothing() {
    conformance(2, |d| {
        let rx = d.at(1).register(Addr::Server(ServerId(1)));
        for i in 0..500u32 {
            d.at(0)
                .send_reliable(Addr::Server(ServerId(1)), format!("r{i}"))
                .expect("reliable send");
        }
        for i in 0..500u32 {
            let msg = rx.recv_timeout(RECV).expect("no reliable message lost");
            assert_eq!(msg, format!("r{i}"));
        }
        d.at(1).deregister(Addr::Server(ServerId(1)));
    });
}

#[test]
fn deregister_while_sending_degrades_to_drops() {
    conformance(2, |d| {
        let rx = d.at(1).register(Addr::Server(ServerId(1)));
        let sender = Arc::clone(d.at(0));
        let pump = std::thread::spawn(move || {
            // Sends race the deregistration; every call must return (Ok or
            // a clean error), never panic or block forever.
            for i in 0..2_000u32 {
                let _ = sender.send(Addr::Server(ServerId(1)), format!("x{i}"));
                if i == 500 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        // Drain a few to make sure the stream is live, then pull the rug.
        for _ in 0..10 {
            let _ = rx.recv_timeout(RECV).expect("live stream");
        }
        d.at(1).deregister(Addr::Server(ServerId(1)));
        pump.join().expect("sender must not panic");
        // The endpoint is gone: the transport no longer lists it locally
        // and fresh sends still complete without error surfacing a panic.
        let _ = d.at(0).send(Addr::Server(ServerId(1)), "late".into());
    });
}

#[test]
fn recv_after_shutdown_disconnects() {
    // Not via `conformance`: shutdown is the property under test.
    for d in [Deployment::bus(2), Deployment::tcp(2)] {
        let rx = d.at(1).register(Addr::Server(ServerId(1)));
        let waiter = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        for t in &d.transports {
            t.shutdown();
            t.shutdown(); // idempotent
        }
        let got = waiter.join().expect("recv thread");
        assert!(got.is_err(), "recv must fail after shutdown, got {got:?}");
    }
}

// ---------------------------------------------------------------------------
// TCP-only: wire robustness
// ---------------------------------------------------------------------------

/// Torn frames and garbage bytes must be rejected — counted and the
/// connection dropped — without taking the transport down for well-formed
/// peers.
#[test]
fn tcp_rejects_torn_frames_and_garbage() {
    use std::io::Write as _;

    let codec = Arc::new(TextCodec);
    let victim = Arc::new(TcpTransport::bind("127.0.0.1:0", codec.clone()).expect("bind"));
    let rx = victim.register(Addr::Server(ServerId(0)));

    // Garbage: not even a frame header's worth of sense.
    {
        let mut s = std::net::TcpStream::connect(victim.local_addr()).expect("connect");
        s.write_all(&[0xEE; 64]).expect("write garbage");
    }
    // Torn frame: a plausible length prefix, then the stream dies mid-body.
    {
        let mut s = std::net::TcpStream::connect(victim.local_addr()).expect("connect");
        s.write_all(&1024u32.to_be_bytes()).expect("write len");
        s.write_all(b"half a frame").expect("write partial body");
    }
    // An absurd length prefix must be rejected without allocating it.
    {
        let mut s = std::net::TcpStream::connect(victim.local_addr()).expect("connect");
        s.write_all(&u32::MAX.to_be_bytes()).expect("write len");
    }

    // A well-formed peer still gets through afterwards.
    let peer = Arc::new(TcpTransport::bind("127.0.0.1:0", codec).expect("bind peer"));
    peer.add_peer(Addr::Server(ServerId(0)), victim.local_addr());
    let deadline = std::time::Instant::now() + RECV;
    loop {
        peer.send_reliable(Addr::Server(ServerId(0)), "hello".to_string())
            .expect("send after garbage");
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(msg) => {
                assert_eq!(msg, "hello");
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {}
            Err(e) => panic!("no delivery after garbage connections: {e}"),
        }
    }

    // The junk was counted, not silently swallowed. The torn frame only
    // registers once the reader sees EOF mid-body, so poll briefly.
    let deadline = std::time::Instant::now() + RECV;
    loop {
        let errors = victim
            .snapshot()
            .counter("tcp_frame_errors")
            .unwrap_or_default();
        if errors >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "expected >= 2 frame errors, saw {errors}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    peer.shutdown();
    victim.shutdown();
}
