//! Delivery-guarantee tests for the simulated network: exactly-once
//! delivery, per-sender ordering without jitter, and no loss under jitter.

use std::collections::HashMap;
use std::time::Duration;

use aloha_common::ServerId;
use aloha_net::{Addr, Bus, NetConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With latency but no jitter, each sender's messages arrive in order
    /// and exactly once, regardless of the interleaving of senders.
    #[test]
    fn fifo_exactly_once_per_sender(
        counts in proptest::collection::vec(1usize..40, 1..4),
        latency_us in 1u64..500,
    ) {
        let bus: Bus<(usize, usize)> = Bus::new(NetConfig::with_latency(
            Duration::from_micros(latency_us),
        ));
        let rx = bus.register(Addr::Server(ServerId(0)));
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(sender, &n)| {
                let bus = bus.clone();
                std::thread::spawn(move || {
                    for i in 0..n {
                        bus.send(Addr::Server(ServerId(0)), (sender, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = counts.iter().sum();
        let mut last_per_sender: HashMap<usize, usize> = HashMap::new();
        let mut received = 0usize;
        while received < total {
            let (sender, i) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            if let Some(prev) = last_per_sender.get(&sender) {
                prop_assert!(i > *prev, "sender {} reordered: {} after {}", sender, i, prev);
            }
            last_per_sender.insert(sender, i);
            received += 1;
        }
        prop_assert!(rx.try_recv().is_none(), "duplicate deliveries");
    }

    /// With jitter, ordering may change but delivery stays exactly-once.
    #[test]
    fn jitter_preserves_exactly_once(
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let bus: Bus<usize> = Bus::new(NetConfig::with_jitter(
            Duration::from_micros(10),
            Duration::from_micros(200),
            seed,
        ));
        let rx = bus.register(Addr::Server(ServerId(0)));
        for i in 0..n {
            bus.send(Addr::Server(ServerId(0)), i).unwrap();
        }
        let mut seen = vec![false; n];
        for _ in 0..n {
            let i = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            prop_assert!(!seen[i], "message {} delivered twice", i);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "missing messages");
    }
}
