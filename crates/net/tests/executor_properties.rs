//! Property tests for the bounded two-lane executor: under arbitrary pool
//! sizes, submission interleavings and lane mixes, every accepted task runs
//! exactly once (shutdown drains, nothing is lost) and tasks sharing a
//! shard hash run in submission order. Plus a deterministic stress test
//! proving the blocking lane's spillover keeps a saturated pool deadlock-
//! free when every pooled worker parks on a cross-partition-style chain.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_net::{ExecConfig, Executor};
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary worker counts and a random stream of (shard, lane) tags:
    /// after shutdown every submitted task has executed exactly once, and
    /// the execution log of each shard hash is its submission order.
    #[test]
    fn per_shard_fifo_and_no_task_loss(
        sharded_workers in 1usize..6,
        blocking_workers in 1usize..6,
        tasks in proptest::collection::vec((0u64..5, any::<bool>()), 1..300),
    ) {
        let exec = Executor::new(
            "prop",
            ExecConfig::default()
                .with_sharded_workers(sharded_workers)
                .with_blocking_workers(blocking_workers),
        );
        let logs: Arc<Mutex<HashMap<u64, Vec<usize>>>> = Arc::default();
        let blocking_ran = Arc::new(AtomicUsize::new(0));
        let mut expected: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut expected_blocking = 0usize;
        for (seq, &(shard, blocking)) in tasks.iter().enumerate() {
            if blocking {
                // Blocking-lane tasks may run on pool or spillover threads in
                // any relative order; only exactly-once is promised.
                expected_blocking += 1;
                let ran = Arc::clone(&blocking_ran);
                exec.submit_blocking(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            } else {
                expected.entry(shard).or_default().push(seq);
                let logs = Arc::clone(&logs);
                exec.submit_sharded(shard, move || {
                    logs.lock().entry(shard).or_default().push(seq);
                });
            }
        }
        exec.shutdown(); // drains both lanes' queues before joining
        // Spillover threads are detached; wait for their stragglers.
        let deadline = Instant::now() + Duration::from_secs(10);
        while blocking_ran.load(Ordering::SeqCst) < expected_blocking {
            prop_assert!(Instant::now() < deadline, "blocking task lost");
            std::thread::sleep(Duration::from_millis(1));
        }
        prop_assert_eq!(blocking_ran.load(Ordering::SeqCst), expected_blocking);
        let logs = logs.lock();
        for (shard, want) in &expected {
            let got = logs.get(shard).cloned().unwrap_or_default();
            prop_assert_eq!(&got, want, "shard {} reordered or lost tasks", shard);
        }
        let stats = exec.stats();
        prop_assert_eq!(
            stats.sharded_tasks() + stats.blocking_tasks(),
            tasks.len() as u64
        );
    }
}

/// Every blocking-lane worker parks on a chain that only later submissions
/// can release — the shape of a functor recursion fanning across
/// partitions. Without the claim-ticket spillover the resolving tasks would
/// queue behind the parked workers forever; with it the chain drains.
#[test]
fn spillover_prevents_deadlock_when_all_workers_park() {
    const WORKERS: usize = 3;
    const PARKED: usize = 8; // more parked tasks than pooled workers
    let exec = Executor::new(
        "stress",
        ExecConfig::default().with_blocking_workers(WORKERS),
    );
    let (done_tx, done_rx) = unbounded::<usize>();
    let mut releases = Vec::new();
    for i in 0..PARKED {
        let (tx, rx) = unbounded::<()>();
        releases.push(tx);
        let done = done_tx.clone();
        exec.submit_blocking(move || {
            rx.recv().expect("release signal"); // park, like a remote wait
            let _ = done.send(i);
        });
    }
    // Every pooled worker (and some spillover threads) is now parked. Each
    // resolver below unparks exactly one parked task; resolvers can only
    // run because saturation spills them onto fresh threads.
    for release in releases {
        let done = done_tx.clone();
        let offset = PARKED;
        exec.submit_blocking(move || {
            release.send(()).expect("parked task is waiting");
            let _ = done.send(offset);
        });
    }
    let mut finished = 0;
    while finished < 2 * PARKED {
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("chain drained without deadlock");
        finished += 1;
    }
    assert!(
        exec.stats().spillover_spawns() >= (PARKED - WORKERS) as u64,
        "saturation must have spilled over (got {})",
        exec.stats().spillover_spawns()
    );
    exec.shutdown();
}

/// Pool sizes forced to one: strict global FIFO on the sharded lane still
/// holds, and the single blocking worker plus spillover still drains a
/// parked chain.
#[test]
fn pool_size_one_still_drains_and_orders() {
    let exec = Executor::new(
        "tiny",
        ExecConfig::default()
            .with_sharded_workers(1)
            .with_blocking_workers(1),
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    for i in 0..50usize {
        let log = Arc::clone(&log);
        exec.submit_sharded(i as u64, move || log.lock().push(i));
    }
    let (tx, rx) = unbounded::<()>();
    let parked_done = Arc::new(AtomicUsize::new(0));
    let pd = Arc::clone(&parked_done);
    exec.submit_blocking(move || {
        let _ = rx.recv();
        pd.fetch_add(1, Ordering::SeqCst);
    });
    let pd = Arc::clone(&parked_done);
    exec.submit_blocking(move || {
        tx.send(()).expect("parked task waiting");
        pd.fetch_add(1, Ordering::SeqCst);
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while parked_done.load(Ordering::SeqCst) < 2 {
        assert!(Instant::now() < deadline, "single-worker pool deadlocked");
        std::thread::sleep(Duration::from_millis(1));
    }
    exec.shutdown();
    // One worker per shard queue: with one sharded worker, the lane is a
    // single FIFO, so the log is exactly submission order.
    assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
}
