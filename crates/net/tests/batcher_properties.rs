//! Property tests for the destination batcher: whatever the thresholds and
//! however flushes interleave (inline size/byte flushes, deadline flushes,
//! explicit `flush()` calls), every destination receives exactly the
//! messages sent toward it, in send order, with nothing lost or duplicated.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use aloha_common::ServerId;
use aloha_net::{Addr, BatchConfig, Batcher, Bus, NetConfig};
use proptest::prelude::*;

/// Test protocol: a leaf carries `(dest, seq, payload_bytes)`; a batch wraps
/// leaves in the order the batcher queued them.
#[derive(Debug, Clone, PartialEq)]
enum Msg {
    One(u16, u64, usize),
    Batch(Vec<Msg>),
}

fn flatten(msg: Msg, out: &mut Vec<(u16, u64)>) {
    match msg {
        Msg::One(dest, seq, _) => out.push((dest, seq)),
        Msg::Batch(msgs) => {
            for m in msgs {
                flatten(m, out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random thresholds, random per-message sizes, random interleaving of
    /// destinations and periodic explicit flushes: per-destination FIFO and
    /// exactly-once must survive all of it.
    #[test]
    fn thresholds_never_reorder_nor_lose_messages(
        sends in proptest::collection::vec((0u16..3, 1usize..48), 1..250),
        max_messages in 1usize..9,
        max_bytes in 16usize..256,
        max_delay_us in 100u64..50_000,
        flush_every in 5usize..60,
    ) {
        const DESTS: u16 = 3;
        let bus: Bus<Msg> = Bus::new(NetConfig::instant());
        let endpoints: Vec<_> = (0..DESTS)
            .map(|d| bus.register(Addr::Server(ServerId(d))))
            .collect();
        let batcher = Batcher::new(
            Arc::new(bus),
            BatchConfig::default()
                .with_max_messages(max_messages)
                .with_max_bytes(max_bytes)
                .with_max_delay(Duration::from_micros(max_delay_us)),
            Msg::Batch,
            |m| match m {
                Msg::One(_, _, bytes) => *bytes,
                Msg::Batch(_) => 0,
            },
        );

        // One global sender; per destination the seq numbers it will observe
        // are strictly increasing.
        let mut expected: HashMap<u16, Vec<u64>> = HashMap::new();
        for (i, &(dest, bytes)) in sends.iter().enumerate() {
            let seq = i as u64;
            batcher
                .send(Addr::Server(ServerId(dest)), Msg::One(dest, seq, bytes))
                .unwrap();
            expected.entry(dest).or_default().push(seq);
            if (i + 1) % flush_every == 0 {
                batcher.flush();
            }
        }
        batcher.flush();

        for (dest, ep) in endpoints.iter().enumerate() {
            let dest = dest as u16;
            let want = expected.remove(&dest).unwrap_or_default();
            let mut got: Vec<(u16, u64)> = Vec::new();
            while got.len() < want.len() {
                let msg = ep
                    .recv_timeout(Duration::from_secs(2))
                    .expect("flushed message must arrive");
                flatten(msg, &mut got);
            }
            prop_assert!(
                got.iter().all(|&(d, _)| d == dest),
                "destination {dest} received another destination's message: {got:?}"
            );
            let seqs: Vec<u64> = got.iter().map(|&(_, s)| s).collect();
            prop_assert_eq!(
                seqs,
                want,
                "destination {} messages lost, duplicated or reordered",
                dest
            );
            prop_assert!(
                ep.try_recv().is_none(),
                "destination {} received extra messages",
                dest
            );
        }
        prop_assert_eq!(batcher.stats().enqueued(), sends.len() as u64);
        batcher.shutdown();
    }

    /// Concurrent senders racing the inline and deadline flush paths: each
    /// sender's subsequence toward the shared destination stays in order and
    /// complete (the cross-sender interleaving is unspecified).
    #[test]
    fn concurrent_senders_keep_per_sender_fifo(
        per_thread in 1u64..120,
        max_messages in 2usize..8,
        max_delay_us in 50u64..500,
    ) {
        let bus: Bus<Msg> = Bus::new(NetConfig::instant());
        let ep = bus.register(Addr::Server(ServerId(0)));
        let batcher = Batcher::new(
            Arc::new(bus),
            BatchConfig::default()
                .with_max_messages(max_messages)
                .with_max_delay(Duration::from_micros(max_delay_us)),
            Msg::Batch,
            |_| 1,
        );
        const THREADS: u64 = 3;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let batcher = batcher.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        batcher
                            .send(
                                Addr::Server(ServerId(0)),
                                Msg::One(t as u16, t * 10_000 + i, 1),
                            )
                            .unwrap();
                    }
                });
            }
        });
        batcher.flush();
        let mut got: Vec<(u16, u64)> = Vec::new();
        while (got.len() as u64) < THREADS * per_thread {
            let msg = ep
                .recv_timeout(Duration::from_secs(2))
                .expect("flushed message must arrive");
            flatten(msg, &mut got);
        }
        for t in 0..THREADS {
            let seqs: Vec<u64> = got
                .iter()
                .filter(|&&(sender, _)| sender as u64 == t)
                .map(|&(_, s)| s)
                .collect();
            prop_assert_eq!(seqs.len() as u64, per_thread, "sender {} lost messages", t);
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "sender {} messages reordered: {:?}",
                t,
                seqs
            );
        }
        batcher.shutdown();
    }
}
