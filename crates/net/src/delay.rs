//! Latency injection: a delay line that holds messages until their delivery
//! deadline.
//!
//! With [`NetConfig::instant`] messages bypass the delay line entirely
//! (function-call latency), which is the default for throughput benchmarks on
//! one machine. With a nonzero base latency the [`DelayLine`] thread releases
//! each message after `latency ± jitter`, emulating a datacenter network hop
//! as described in §III-A of the paper ("good network performance and
//! predictability, e.g. low jitter, help our system").

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlan;

/// Network behavior knobs for a simulated cluster.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aloha_net::NetConfig;
///
/// let lan = NetConfig::with_latency(Duration::from_micros(100));
/// assert!(!lan.is_instant());
/// assert!(NetConfig::instant().is_instant());
/// ```
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Base one-way delivery latency applied to every message.
    pub latency: Duration,
    /// Uniform jitter in `[0, jitter]` added on top of `latency`.
    pub jitter: Duration,
    /// Seed for the jitter generator, so simulated runs are reproducible.
    pub jitter_seed: u64,
    /// Optional deterministic fault schedule (drops, duplicates, reorders,
    /// partitions, pauses) applied by the bus on the send path.
    pub fault: Option<FaultPlan>,
}

impl NetConfig {
    /// Zero-latency configuration: messages are delivered synchronously.
    pub fn instant() -> NetConfig {
        NetConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            jitter_seed: 0,
            fault: None,
        }
    }

    /// Fixed-latency configuration without jitter.
    pub fn with_latency(latency: Duration) -> NetConfig {
        NetConfig {
            latency,
            ..Self::instant()
        }
    }

    /// Latency plus uniform jitter.
    pub fn with_jitter(latency: Duration, jitter: Duration, seed: u64) -> NetConfig {
        NetConfig {
            latency,
            jitter,
            jitter_seed: seed,
            fault: None,
        }
    }

    /// Attaches a deterministic fault schedule; the bus routes everything
    /// through the delay line once a plan is present, even at zero latency.
    pub fn with_fault(mut self, plan: FaultPlan) -> NetConfig {
        self.fault = Some(plan);
        self
    }

    /// Whether messages bypass the delay line.
    ///
    /// A configuration with a fault plan is never instant: injected delays
    /// (reorders, pause backlogs) need the delay line even at zero base
    /// latency.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.jitter.is_zero() && self.fault.is_none()
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::instant()
    }
}

struct Pending<T> {
    due: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

struct Shared<T> {
    queue: Mutex<DelayState<T>>,
    wakeup: Condvar,
}

struct DelayState<T> {
    heap: BinaryHeap<Reverse<Pending<T>>>,
    rng: SmallRng,
    next_seq: u64,
    shutdown: bool,
}

/// A background thread that releases items after a configured delay, in due
/// order, by invoking a delivery callback.
///
/// Items with equal deadlines are released in submission order, so a
/// zero-jitter delay line preserves per-sender FIFO ordering — matching TCP
/// semantics that the paper's RPC layer relies on.
pub struct DelayLine<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    config: NetConfig,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> std::fmt::Debug for DelayLine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayLine")
            .field("config", &self.config)
            .finish()
    }
}

impl<T: Send + 'static> DelayLine<T> {
    /// Spawns a delay line delivering via `deliver`.
    ///
    /// # Panics
    ///
    /// Panics if called with an instant configuration; callers should bypass
    /// the delay line instead (see [`NetConfig::is_instant`]).
    pub fn spawn(config: NetConfig, deliver: impl Fn(T) + Send + 'static) -> DelayLine<T> {
        assert!(
            !config.is_instant(),
            "use direct delivery for instant networks"
        );
        let shared = Arc::new(Shared {
            queue: Mutex::new(DelayState {
                heap: BinaryHeap::new(),
                rng: SmallRng::seed_from_u64(config.jitter_seed),
                next_seq: 0,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("net-delay".into())
            .spawn(move || Self::run(worker_shared, deliver))
            .expect("spawn delay line thread");
        DelayLine {
            shared,
            config,
            worker: Some(worker),
        }
    }

    fn run(shared: Arc<Shared<T>>, deliver: impl Fn(T)) {
        let mut guard = shared.queue.lock();
        loop {
            if guard.shutdown && guard.heap.is_empty() {
                return;
            }
            let now = Instant::now();
            match guard.heap.peek() {
                Some(Reverse(head)) if head.due <= now => {
                    let Reverse(p) = guard.heap.pop().expect("peeked entry exists");
                    // Deliver outside the lock so callbacks may re-enqueue.
                    drop(guard);
                    deliver(p.item);
                    guard = shared.queue.lock();
                }
                Some(Reverse(head)) => {
                    let due = head.due;
                    shared.wakeup.wait_until(&mut guard, due);
                }
                None => {
                    if guard.shutdown {
                        return;
                    }
                    shared.wakeup.wait(&mut guard);
                }
            }
        }
    }

    /// Enqueues an item for delayed delivery.
    pub fn push(&self, item: T) {
        self.push_after(item, Duration::ZERO);
    }

    /// Enqueues an item with an extra delay on top of the configured latency
    /// and jitter. The release time is never earlier than
    /// `now + latency + extra`; the fault layer uses the extra delay for
    /// reordered copies and pause-window backlogs.
    pub fn push_after(&self, item: T, extra: Duration) {
        let mut guard = self.shared.queue.lock();
        if guard.shutdown {
            return;
        }
        let jitter = if self.config.jitter.is_zero() {
            Duration::ZERO
        } else {
            let nanos = guard
                .rng
                .gen_range(0..=self.config.jitter.as_nanos() as u64);
            Duration::from_nanos(nanos)
        };
        let due = Instant::now() + self.config.latency + jitter + extra;
        let seq = guard.next_seq;
        guard.next_seq += 1;
        guard.heap.push(Reverse(Pending { due, seq, item }));
        self.shared.wakeup.notify_one();
    }

    /// Requests shutdown and waits for all pending items to be delivered.
    pub fn close(mut self) {
        self.begin_shutdown();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut guard = self.shared.queue.lock();
        guard.shutdown = true;
        self.shared.wakeup.notify_all();
    }
}

impl<T: Send + 'static> Drop for DelayLine<T> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn delivers_after_latency() {
        let (tx, rx) = mpsc::channel();
        let line = DelayLine::spawn(
            NetConfig::with_latency(Duration::from_millis(5)),
            move |v| {
                tx.send(v).unwrap();
            },
        );
        let start = Instant::now();
        line.push(1u32);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(start.elapsed() >= Duration::from_millis(5));
        line.close();
    }

    #[test]
    fn preserves_fifo_without_jitter() {
        let (tx, rx) = mpsc::channel();
        let line = DelayLine::spawn(
            NetConfig::with_latency(Duration::from_millis(1)),
            move |v| {
                tx.send(v).unwrap();
            },
        );
        for i in 0..100u32 {
            line.push(i);
        }
        for i in 0..100u32 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        line.close();
    }

    #[test]
    fn close_flushes_pending() {
        let delivered = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&delivered);
        let line = DelayLine::spawn(
            NetConfig::with_latency(Duration::from_millis(2)),
            move |_: u8| {
                d.fetch_add(1, Ordering::SeqCst);
            },
        );
        for _ in 0..10 {
            line.push(0);
        }
        line.close();
        assert_eq!(delivered.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let (tx, rx) = mpsc::channel();
        let line = DelayLine::spawn(
            NetConfig::with_jitter(Duration::from_millis(1), Duration::from_millis(2), 42),
            move |v: Instant| {
                tx.send((v, Instant::now())).unwrap();
            },
        );
        for _ in 0..20 {
            line.push(Instant::now());
        }
        for _ in 0..20 {
            let (sent, got) = rx.recv().unwrap();
            let dt = got - sent;
            assert!(dt >= Duration::from_millis(1), "{dt:?}");
            assert!(dt < Duration::from_millis(50), "{dt:?}");
        }
        line.close();
    }

    #[test]
    fn push_after_adds_extra_delay() {
        let (tx, rx) = mpsc::channel();
        let line = DelayLine::spawn(
            NetConfig::with_latency(Duration::from_millis(1)),
            move |v| {
                tx.send(v).unwrap();
            },
        );
        let start = Instant::now();
        line.push_after(1u32, Duration::from_millis(10));
        line.push(2u32);
        // The un-delayed message overtakes the delayed one.
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(start.elapsed() >= Duration::from_millis(11));
        line.close();
    }

    #[test]
    fn fault_plan_forces_delay_line() {
        use crate::fault::FaultPlan;
        let config = NetConfig::instant().with_fault(FaultPlan::new(1));
        assert!(!config.is_instant());
    }

    #[test]
    #[should_panic(expected = "instant")]
    fn instant_config_panics() {
        let _ = DelayLine::spawn(NetConfig::instant(), |_: u8| {});
    }
}
