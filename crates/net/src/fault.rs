//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes message-level faults (per-link drop, duplicate
//! and reorder probabilities), scheduled network partitions, and server pause
//! windows. All randomness is drawn from one `SmallRng` seeded with
//! [`FaultPlan::seed`], so a failing run is reproducible from the plan alone —
//! test harnesses print the plan's `Display` form on failure and a developer
//! can replay it verbatim.
//!
//! Faults are applied on the *request* path only: replies travel through
//! [`ReplySlot`](crate::ReplySlot) channels embedded in messages, not through
//! the bus, so a lost reply manifests to callers exactly like a lost request
//! (an RPC timeout). Retrying the request is therefore the one recovery
//! mechanism protocol layers need.

use std::fmt;
use std::time::{Duration, Instant};

use aloha_common::ServerId;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::bus::Addr;

/// Message-level fault probabilities for one link (sender → destination).
///
/// Probabilities are evaluated independently per message: first the drop
/// check, then (for surviving messages) duplication, then an extra reorder
/// delay per delivered copy.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_p: f64,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub dup_p: f64,
    /// Probability in `[0, 1]` that a delivered copy is delayed by a uniform
    /// extra amount in `(0, reorder_window]`, letting later sends overtake it.
    pub reorder_p: f64,
    /// Maximum extra delay applied to reordered copies.
    pub reorder_window: Duration,
}

impl LinkFault {
    /// A link with no injected faults.
    pub fn none() -> LinkFault {
        LinkFault {
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_window: Duration::ZERO,
        }
    }

    /// A lossy link: drops, duplicates and reorders with the given
    /// probabilities, using `reorder_window` as the reorder horizon.
    pub fn lossy(drop_p: f64, dup_p: f64, reorder_p: f64, reorder_window: Duration) -> LinkFault {
        for (name, p) in [
            ("drop_p", drop_p),
            ("dup_p", dup_p),
            ("reorder_p", reorder_p),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        LinkFault {
            drop_p,
            dup_p,
            reorder_p,
            reorder_window,
        }
    }

    /// Whether this link injects any fault at all.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.reorder_p == 0.0
    }
}

impl Default for LinkFault {
    fn default() -> LinkFault {
        LinkFault::none()
    }
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drop={},dup={},reorder={}@{:?}",
            self.drop_p, self.dup_p, self.reorder_p, self.reorder_window
        )
    }
}

/// A scheduled partition: between `start` and `end` (measured from bus
/// creation) the `isolated` servers receive no bus traffic.
///
/// Because RPC replies bypass the bus (see the module docs), severing a
/// server's inbound request leg is equivalent to cutting both directions of
/// its request/reply traffic; fire-and-forget messages *from* an isolated
/// server still leave, which models an asymmetric partition — the harsher
/// case for epoch-based protocols, since the manager keeps hearing from a
/// server that can no longer hear grants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start, relative to bus creation.
    pub start: Duration,
    /// Window end, relative to bus creation.
    pub end: Duration,
    /// Servers cut off from inbound traffic during the window.
    pub isolated: Vec<ServerId>,
}

/// A scheduled pause: between `start` and `end` the server processes nothing.
///
/// Modeled by holding the server's inbound messages until the window ends
/// (plus normal latency), which is how a paused-then-resumed process observes
/// the world: a burst of stale messages on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseWindow {
    /// The paused server.
    pub server: ServerId,
    /// Window start, relative to bus creation.
    pub start: Duration,
    /// Window end, relative to bus creation.
    pub end: Duration,
}

/// A complete, self-describing fault schedule for one simulated run.
///
/// Every random decision derives from [`seed`](FaultPlan::seed), so two
/// buses given equal plans and equal message sequences make identical fault
/// choices. The [`Display`] form is a single line embedding every knob;
/// chaos tests print it on failure so any run can be reproduced.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aloha_common::ServerId;
/// use aloha_net::{FaultPlan, LinkFault};
///
/// let plan = FaultPlan::new(42)
///     .with_default_link(LinkFault::lossy(0.05, 0.05, 0.1, Duration::from_millis(2)))
///     .with_partition(Duration::from_millis(50), Duration::from_millis(90), vec![ServerId(1)]);
/// assert!(format!("{plan}").contains("seed=42"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic fault decision.
    pub seed: u64,
    /// Fault profile applied to links without a per-destination override.
    pub default_link: LinkFault,
    /// Per-destination overrides, keyed by destination address.
    pub links: Vec<(Addr, LinkFault)>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled server pauses.
    pub pauses: Vec<PauseWindow>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; add faults with the
    /// builder methods.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_link: LinkFault::none(),
            links: Vec::new(),
            partitions: Vec::new(),
            pauses: Vec::new(),
        }
    }

    /// Sets the fault profile for every link without an override.
    pub fn with_default_link(mut self, link: LinkFault) -> FaultPlan {
        self.default_link = link;
        self
    }

    /// Overrides the fault profile for messages addressed to `dest`.
    pub fn with_link(mut self, dest: Addr, link: LinkFault) -> FaultPlan {
        self.links.push((dest, link));
        self
    }

    /// Schedules a partition isolating `isolated` during `[start, end)`.
    pub fn with_partition(
        mut self,
        start: Duration,
        end: Duration,
        isolated: Vec<ServerId>,
    ) -> FaultPlan {
        assert!(start <= end, "partition window ends before it starts");
        self.partitions.push(PartitionWindow {
            start,
            end,
            isolated,
        });
        self
    }

    /// Schedules a pause of `server` during `[start, end)`.
    pub fn with_pause(mut self, server: ServerId, start: Duration, end: Duration) -> FaultPlan {
        assert!(start <= end, "pause window ends before it starts");
        self.pauses.push(PauseWindow { server, start, end });
        self
    }

    /// The fault profile for messages addressed to `dest`.
    pub fn link_for(&self, dest: Addr) -> &LinkFault {
        self.links
            .iter()
            .find(|(a, _)| *a == dest)
            .map(|(_, l)| l)
            .unwrap_or(&self.default_link)
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_noop(&self) -> bool {
        self.default_link.is_none()
            && self.links.iter().all(|(_, l)| l.is_none())
            && self.partitions.is_empty()
            && self.pauses.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultPlan{{seed={}, link{{{}}}",
            self.seed, self.default_link
        )?;
        for (addr, link) in &self.links {
            write!(f, ", link[{addr}]{{{link}}}")?;
        }
        for p in &self.partitions {
            write!(f, ", partition[{:?}..{:?}:", p.start, p.end)?;
            for (i, s) in p.isolated.iter().enumerate() {
                write!(f, "{}{s}", if i == 0 { " " } else { "," })?;
            }
            write!(f, "]")?;
        }
        for p in &self.pauses {
            write!(f, ", pause[{}: {:?}..{:?}]", p.server, p.start, p.end)?;
        }
        write!(f, "}}")
    }
}

/// Where, relative to the epoch cadence, a scheduled crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAlign {
    /// Kill right as an epoch settles (the victim's last act is the group
    /// commit that acked the revoke).
    EpochBoundary,
    /// Kill partway into an open epoch, with installs in flight and the
    /// epoch's WAL records not yet group-committed.
    MidEpoch,
}

impl fmt::Display for CrashAlign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashAlign::EpochBoundary => write!(f, "epoch-boundary"),
            CrashAlign::MidEpoch => write!(f, "mid-epoch"),
        }
    }
}

/// A seeded single-server kill-and-restart schedule for chaos tests.
///
/// Like [`FaultPlan`], the plan is pure data: every choice (victim, kill
/// time, alignment) derives from the seed, and the [`Display`] form is a
/// one-line reproduction recipe the harness prints on failure. The harness
/// itself performs the kill (`Cluster::kill_server`) and the restart after
/// [`CrashPlan::restart_after`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aloha_net::CrashPlan;
///
/// let plan = CrashPlan::seeded(7, 3, Duration::from_millis(200), Duration::from_millis(50));
/// let again = CrashPlan::seeded(7, 3, Duration::from_millis(200), Duration::from_millis(50));
/// assert_eq!(plan, again, "same seed, same schedule");
/// assert!((plan.target.0 as usize) < 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Seed every choice derives from.
    pub seed: u64,
    /// The server to kill.
    pub target: ServerId,
    /// How long after the run starts the kill fires (the harness also waits
    /// for the [`CrashPlan::align`] condition once this elapses).
    pub kill_after: Duration,
    /// How long the server stays dead before the restart.
    pub restart_after: Duration,
    /// Whether the kill lands on an epoch boundary or inside an epoch.
    pub align: CrashAlign,
}

impl CrashPlan {
    /// Derives a schedule from `seed` for a cluster of `servers`: the victim
    /// is uniform over the cluster, the kill fires somewhere in the middle
    /// half of `run` (so load is established before and traffic remains
    /// after), alignment is a coin flip, and the victim stays dead for
    /// `dead_window`.
    pub fn seeded(seed: u64, servers: u16, run: Duration, dead_window: Duration) -> CrashPlan {
        assert!(servers > 0, "crash plan needs at least one server");
        let mut rng = SmallRng::seed_from_u64(seed);
        let target = ServerId(rng.gen_range(0..servers));
        let quarter = run / 4;
        let kill_after =
            quarter + Duration::from_micros(rng.gen_range(0..=quarter.as_micros() as u64));
        let align = if rng.gen_bool(0.5) {
            CrashAlign::EpochBoundary
        } else {
            CrashAlign::MidEpoch
        };
        CrashPlan {
            seed,
            target,
            kill_after,
            restart_after: dead_window,
            align,
        }
    }

    /// Pins the alignment (for tests exercising one flavor explicitly).
    #[must_use]
    pub fn with_align(mut self, align: CrashAlign) -> CrashPlan {
        self.align = align;
        self
    }

    /// Pins the victim.
    #[must_use]
    pub fn with_target(mut self, target: ServerId) -> CrashPlan {
        self.target = target;
        self
    }
}

impl fmt::Display for CrashPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CrashPlan{{seed={}, kill[{} at {:?} {}], restart_after={:?}}}",
            self.seed, self.target, self.kill_after, self.align, self.restart_after
        )
    }
}

/// What the fault layer decided for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FaultDecision {
    /// Drop the message (partition or random loss).
    Drop,
    /// Deliver one copy per entry, each after the given extra delay on top
    /// of the configured network latency.
    Deliver {
        /// Extra delay per delivered copy (length 1 or 2).
        extras: Vec<Duration>,
        /// Whether duplication fired (for stats).
        duplicated: bool,
        /// Whether any copy got a reorder delay (for stats).
        reordered: bool,
    },
}

/// Runtime fault state: the plan, its RNG, and the bus creation instant that
/// anchors partition/pause windows.
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: Mutex<SmallRng>,
    epoch: Instant,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let rng = Mutex::new(SmallRng::seed_from_u64(plan.seed));
        FaultState {
            plan,
            rng,
            epoch: Instant::now(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of a message addressed to `to`, sent now.
    pub(crate) fn decide(&self, to: Addr) -> FaultDecision {
        let elapsed = self.epoch.elapsed();
        if let Addr::Server(sid) = to {
            if self
                .plan
                .partitions
                .iter()
                .any(|p| p.start <= elapsed && elapsed < p.end && p.isolated.contains(&sid))
            {
                return FaultDecision::Drop;
            }
        }
        let link = self.plan.link_for(to);
        let mut rng = self.rng.lock();
        if link.drop_p > 0.0 && rng.gen_bool(link.drop_p) {
            return FaultDecision::Drop;
        }
        let duplicated = link.dup_p > 0.0 && rng.gen_bool(link.dup_p);
        let copies = if duplicated { 2 } else { 1 };
        // A paused destination holds all inbound traffic until its window
        // ends; the backlog is released (in due order) on resume.
        let pause_extra = match to {
            Addr::Server(sid) => self
                .plan
                .pauses
                .iter()
                .filter(|p| p.server == sid && p.start <= elapsed && elapsed < p.end)
                .map(|p| p.end - elapsed)
                .max()
                .unwrap_or(Duration::ZERO),
            _ => Duration::ZERO,
        };
        let mut reordered = false;
        let extras = (0..copies)
            .map(|_| {
                let mut extra = pause_extra;
                if link.reorder_p > 0.0
                    && !link.reorder_window.is_zero()
                    && rng.gen_bool(link.reorder_p)
                {
                    reordered = true;
                    let nanos = rng.gen_range(1..=link.reorder_window.as_nanos() as u64);
                    extra += Duration::from_nanos(nanos);
                }
                extra
            })
            .collect();
        FaultDecision::Deliver {
            extras,
            duplicated,
            reordered,
        }
    }
}

impl fmt::Debug for FaultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_reproducible_line() {
        let plan = FaultPlan::new(7)
            .with_default_link(LinkFault::lossy(0.1, 0.2, 0.3, Duration::from_millis(4)))
            .with_link(Addr::EpochManager, LinkFault::none())
            .with_partition(
                Duration::from_millis(10),
                Duration::from_millis(20),
                vec![ServerId(0), ServerId(2)],
            )
            .with_pause(
                ServerId(1),
                Duration::from_millis(5),
                Duration::from_millis(9),
            );
        let line = format!("{plan}");
        assert!(!line.contains('\n'));
        assert!(line.contains("seed=7"), "{line}");
        assert!(line.contains("drop=0.1"), "{line}");
        assert!(line.contains("link[em]"), "{line}");
        assert!(line.contains("partition["), "{line}");
        assert!(line.contains("pause[s1"), "{line}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::new(99).with_default_link(LinkFault::lossy(
            0.3,
            0.3,
            0.3,
            Duration::from_millis(1),
        ));
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        for _ in 0..200 {
            assert_eq!(a.decide(Addr::EpochManager), b.decide(Addr::EpochManager));
        }
    }

    #[test]
    fn partition_window_drops_only_isolated_servers() {
        let plan = FaultPlan::new(1).with_partition(
            Duration::ZERO,
            Duration::from_secs(3600),
            vec![ServerId(1)],
        );
        let state = FaultState::new(plan);
        assert_eq!(state.decide(Addr::Server(ServerId(1))), FaultDecision::Drop);
        assert!(matches!(
            state.decide(Addr::Server(ServerId(0))),
            FaultDecision::Deliver { .. }
        ));
        assert!(matches!(
            state.decide(Addr::EpochManager),
            FaultDecision::Deliver { .. }
        ));
    }

    #[test]
    fn pause_window_delays_until_window_end() {
        let plan =
            FaultPlan::new(1).with_pause(ServerId(0), Duration::ZERO, Duration::from_secs(3600));
        let state = FaultState::new(plan);
        match state.decide(Addr::Server(ServerId(0))) {
            FaultDecision::Deliver { extras, .. } => {
                assert!(extras[0] > Duration::from_secs(3000), "{extras:?}");
            }
            other => panic!("expected delayed delivery, got {other:?}"),
        }
    }

    #[test]
    fn per_destination_override_wins() {
        let plan = FaultPlan::new(5)
            .with_default_link(LinkFault::lossy(1.0, 0.0, 0.0, Duration::ZERO))
            .with_link(Addr::EpochManager, LinkFault::none());
        let state = FaultState::new(plan);
        assert!(matches!(
            state.decide(Addr::EpochManager),
            FaultDecision::Deliver { .. }
        ));
        assert_eq!(state.decide(Addr::Client(0)), FaultDecision::Drop);
    }

    #[test]
    fn certain_duplication_yields_two_copies() {
        let plan =
            FaultPlan::new(5).with_default_link(LinkFault::lossy(0.0, 1.0, 0.0, Duration::ZERO));
        let state = FaultState::new(plan);
        match state.decide(Addr::Client(1)) {
            FaultDecision::Deliver {
                extras, duplicated, ..
            } => {
                assert_eq!(extras.len(), 2);
                assert!(duplicated);
            }
            other => panic!("expected duplicate delivery, got {other:?}"),
        }
    }

    #[test]
    fn noop_plan_reports_noop() {
        assert!(FaultPlan::new(3).is_noop());
        assert!(!FaultPlan::new(3)
            .with_pause(ServerId(0), Duration::ZERO, Duration::from_millis(1))
            .is_noop());
    }
}
