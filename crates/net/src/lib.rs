//! In-process cluster network for the ALOHA-DB reproduction.
//!
//! The paper evaluates ALOHA-DB on a private cluster of EC2 virtual machines
//! connected by a datacenter network and fbthrift RPC (§V-A3). This crate is
//! the substitution documented in `DESIGN.md`: every simulated server owns an
//! [`Endpoint`] on a shared [`Bus`], and messages between endpoints optionally
//! traverse a [`DelayLine`] that injects configurable latency and jitter — the
//! knob that stands in for real network distance.
//!
//! Request/reply ("RPC") interactions are expressed with [`ReplySlot`] /
//! [`ReplyHandle`] pairs embedded inside application messages, mirroring how
//! an RPC framework would correlate responses.
//!
//! # Examples
//!
//! ```
//! use aloha_net::{Addr, Bus, NetConfig};
//!
//! let bus: Bus<String> = Bus::new(NetConfig::instant());
//! let a = bus.register(Addr::Server(aloha_common::ServerId(0)));
//! bus.send(Addr::Server(aloha_common::ServerId(0)), "hello".to_string()).unwrap();
//! let envelope = a.recv().unwrap();
//! assert_eq!(envelope, "hello");
//! ```

pub mod batch;
pub mod bus;
pub mod delay;
pub mod exec;
pub mod fault;
pub mod reply;
pub mod tcp;
pub mod transport;

pub use batch::{BatchConfig, BatchStats, Batcher};
pub use bus::{recv_while, Addr, Bus, Endpoint};
pub use delay::{DelayLine, NetConfig};
pub use exec::{ExecConfig, ExecStats, Executor};
pub use fault::{CrashAlign, CrashPlan, FaultPlan, LinkFault, PartitionWindow, PauseWindow};
pub use reply::{reply_pair, ReplyHandle, ReplySlot};
pub use tcp::{TcpStats, TcpTransport};
pub use transport::{PendingReplies, RemoteReplier, Transport, WireCodec};
