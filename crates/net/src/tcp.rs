//! TCP transport: the same cluster messages over real sockets.
//!
//! Frames reuse the WAL's `[len][crc32][payload]` discipline
//! ([`aloha_common::crc::crc32`], big-endian header words): a corrupted
//! frame is detected exactly like a corrupted WAL record. Because stream
//! framing cannot be trusted after a bad checksum, a frame error closes
//! the connection; the next send reconnects, and the lost messages are
//! recovered by the RPC retransmission layer — the same contract as a
//! fault-injected drop on the simulated bus.
//!
//! Two payload kinds travel on a connection:
//!
//! * `Msg` — a routed message: the origin node's listener address (where
//!   replies go), the destination [`Addr`], and the codec-encoded body.
//!   [`crate::ReplySlot`]s inside the body are replaced by correlation
//!   ids (see [`PendingReplies`]).
//! * `Reply` — a correlation id plus the encoded reply value, routed back
//!   to the requesting node's [`PendingReplies`] table.
//!
//! Connections are per-peer, lazily established, and retried once per
//! send; `send` drops on failure (counted), `send_reliable` reports the
//! error. Locally registered addresses are delivered in-memory without
//! serialization, so a node's own FE↔BE traffic does not pay the wire.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use aloha_common::codec::{Reader, Writer};
use aloha_common::crc::crc32;
use aloha_common::metrics::Counter;
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Bytes, Error, Result};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use crate::bus::{Addr, Endpoint};
use crate::fault::FaultPlan;
use crate::transport::{PendingReplies, RemoteReplier, Transport, WireCodec};

/// Frame header: u32 payload length, u32 CRC32 of the payload.
const FRAME_HEADER: usize = 4 + 4;
/// Sanity bound on one frame's payload; larger lengths are treated as
/// corruption (a garbage header would otherwise ask for gigabytes).
const MAX_FRAME: usize = 64 * 1024 * 1024;
/// Payload kind: a routed message.
const KIND_MSG: u8 = 0;
/// Payload kind: a correlated reply.
const KIND_REPLY: u8 = 1;
/// Per-connect timeout; loopback connects resolve in microseconds, a dead
/// peer should not stall a sender for long (retries ride the RPC layer).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Wire and delivery counters of one [`TcpTransport`].
#[derive(Debug, Default)]
pub struct TcpStats {
    messages: Counter,
    dropped: Counter,
    bytes_out: Counter,
    bytes_in: Counter,
    frames_out: Counter,
    frames_in: Counter,
    reconnects: Counter,
    frame_errors: Counter,
}

impl TcpStats {
    /// Messages delivered into local endpoint queues (local sends plus
    /// decoded remote frames).
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Messages dropped: unreachable peer, dead connection after retry, or
    /// an unknown destination address.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Bytes put on the wire (frame headers included).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.get()
    }

    /// Bytes accepted off the wire (frame headers included).
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.get()
    }

    /// Connections (re-)established after a send found its connection dead.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Frames rejected for a bad checksum, an insane length, or an
    /// undecodable payload; each also closes its connection.
    pub fn frame_errors(&self) -> u64 {
        self.frame_errors.get()
    }

    /// Exports these counters as the `net` stats node.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut node = StatsSnapshot::new("net");
        node.set_counter("messages", self.messages());
        node.set_counter("dropped", self.dropped());
        node.set_counter("tcp_bytes_out", self.bytes_out());
        node.set_counter("tcp_bytes_in", self.bytes_in());
        node.set_counter("tcp_frames_out", self.frames_out.get());
        node.set_counter("tcp_frames_in", self.frames_in.get());
        node.set_counter("tcp_reconnects", self.reconnects());
        node.set_counter("tcp_frame_errors", self.frame_errors());
        node
    }
}

fn put_addr(w: &mut Writer, addr: Addr) {
    match addr {
        Addr::Server(s) => {
            w.put_u8(0);
            w.put_u16(s.0);
        }
        Addr::EpochManager => {
            w.put_u8(1);
        }
        Addr::Client(c) => {
            w.put_u8(2);
            w.put_u64(c);
        }
        Addr::Replica(s) => {
            w.put_u8(3);
            w.put_u16(s.0);
        }
    }
}

fn get_addr(r: &mut Reader<'_>) -> Result<Addr> {
    match r.get_u8()? {
        0 => Ok(Addr::Server(aloha_common::ServerId(r.get_u16()?))),
        1 => Ok(Addr::EpochManager),
        2 => Ok(Addr::Client(r.get_u64()?)),
        3 => Ok(Addr::Replica(aloha_common::ServerId(r.get_u16()?))),
        tag => Err(Error::Codec(format!("unknown addr tag {tag}"))),
    }
}

/// Prepends the `[len][crc32]` header to one payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

type Conn = Arc<Mutex<Option<TcpStream>>>;

struct TcpInner<M: Send + 'static> {
    codec: Arc<dyn WireCodec<M>>,
    local_addr: SocketAddr,
    /// Locally registered endpoints (delivered in-memory).
    locals: RwLock<HashMap<Addr, Sender<M>>>,
    /// Known remote peers: cluster address → listener socket address.
    peers: RwLock<HashMap<Addr, SocketAddr>>,
    /// Outbound connections, one per peer listener, writes serialized per
    /// connection so frames never interleave.
    conns: Mutex<HashMap<SocketAddr, Conn>>,
    /// Inbound connections, retained only so shutdown can close them.
    inbound: Mutex<Vec<TcpStream>>,
    pending: PendingReplies,
    stats: TcpStats,
    shutdown: AtomicBool,
}

impl<M: Send + 'static> TcpInner<M> {
    fn conn_slot(&self, peer: SocketAddr) -> Conn {
        Arc::clone(self.conns.lock().entry(peer).or_default())
    }

    /// Writes one frame to `peer`, connecting lazily and retrying a dead
    /// connection once.
    fn write_frame(&self, peer: SocketAddr, bytes: &[u8]) -> Result<()> {
        let slot = self.conn_slot(peer);
        let mut slot = slot.lock();
        let mut lost_conn = false;
        for _attempt in 0..2 {
            if slot.is_none() {
                match TcpStream::connect_timeout(&peer, CONNECT_TIMEOUT) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        if lost_conn {
                            self.stats.reconnects.incr();
                        }
                        *slot = Some(stream);
                    }
                    Err(e) => return Err(Error::Io(format!("connect {peer}: {e}"))),
                }
            }
            let stream = slot.as_mut().expect("connected above");
            match stream.write_all(bytes) {
                Ok(()) => {
                    self.stats.bytes_out.add(bytes.len() as u64);
                    self.stats.frames_out.incr();
                    return Ok(());
                }
                Err(_) => {
                    // The connection died under us; drop it and retry once
                    // on a fresh connection.
                    *slot = None;
                    lost_conn = true;
                }
            }
        }
        Err(Error::Io(format!("send to {peer} failed after reconnect")))
    }

    /// Encodes and sends a `Reply` frame back to `reply_to`.
    fn send_reply(&self, reply_to: SocketAddr, corr: u64, payload: &[u8]) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut w = Writer::with_capacity(1 + 8 + 4 + payload.len());
        w.put_u8(KIND_REPLY);
        w.put_u64(corr);
        w.put_bytes(payload);
        if self.write_frame(reply_to, &frame(&w.into_bytes())).is_err() {
            // The requester is gone; its RPC retry (or timeout) handles it.
            self.stats.dropped.incr();
        }
    }

    fn deliver_local(&self, to: Addr, msg: M) -> Result<()> {
        let guard = self.locals.read();
        match guard.get(&to) {
            Some(tx) if tx.send(msg).is_ok() => {
                self.stats.messages.incr();
                Ok(())
            }
            _ => {
                self.stats.dropped.incr();
                Err(Error::Disconnected(to.to_string()))
            }
        }
    }

    fn send_impl(&self, to: Addr, msg: M, reliable: bool) -> Result<()> {
        if self.locals.read().contains_key(&to) {
            return self.deliver_local(to, msg);
        }
        let Some(peer) = self.peers.read().get(&to).copied() else {
            self.stats.dropped.incr();
            return Err(Error::Disconnected(to.to_string()));
        };
        let mut body = Vec::new();
        self.codec.encode(&msg, &self.pending, &mut body)?;
        let mut w = Writer::with_capacity(body.len() + 32);
        w.put_u8(KIND_MSG);
        w.put_str(&self.local_addr.to_string());
        put_addr(&mut w, to);
        w.put_bytes(&body);
        match self.write_frame(peer, &frame(&w.into_bytes())) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.dropped.incr();
                if reliable {
                    Err(e)
                } else {
                    // Data-plane sends are lossy by contract; the RPC layer
                    // retransmits.
                    Ok(())
                }
            }
        }
    }

    /// Parses and routes one inbound payload. Codec or routing errors are
    /// frame errors (the caller closes the connection). The payload arrives
    /// as a shared buffer so the codec can decode key/value fields as
    /// zero-copy windows of the frame.
    fn handle_payload(self: &Arc<Self>, payload: &Bytes) -> Result<()> {
        let mut r = Reader::shared(payload);
        match r.get_u8()? {
            KIND_MSG => {
                let reply_to: SocketAddr = r
                    .get_str()?
                    .parse()
                    .map_err(|e| Error::Codec(format!("bad reply_to: {e}")))?;
                let dst = get_addr(&mut r)?;
                let body = r.get_bytes_shared()?;
                let weak: Weak<TcpInner<M>> = Arc::downgrade(self);
                let replier = RemoteReplier::new(move |corr, payload: Vec<u8>| {
                    if let Some(inner) = weak.upgrade() {
                        inner.send_reply(reply_to, corr, &payload);
                    }
                });
                let msg = self.codec.decode(&body, &replier)?;
                // Unknown destination: counted as a drop, like the bus.
                let _ = self.deliver_local(dst, msg);
                Ok(())
            }
            KIND_REPLY => {
                let corr = r.get_u64()?;
                let body = r.get_bytes()?;
                // Unknown ids are duplicates or stale replies; ignored.
                let _ = self.pending.complete(corr, body);
                Ok(())
            }
            kind => Err(Error::Codec(format!("unknown frame kind {kind}"))),
        }
    }

    /// Per-connection reader loop: frames until EOF, error, or corruption.
    fn run_reader(self: Arc<Self>, mut stream: TcpStream) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let mut header = [0u8; FRAME_HEADER];
            if stream.read_exact(&mut header).is_err() {
                return; // EOF or closed
            }
            let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
            if len > MAX_FRAME {
                self.stats.frame_errors.incr();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            let mut payload = vec![0u8; len];
            if stream.read_exact(&mut payload).is_err() {
                // A torn frame (connection died mid-payload) is corruption
                // from the receiver's point of view.
                self.stats.frame_errors.incr();
                return;
            }
            if crc32(&payload) != crc {
                // After a checksum failure the stream offset cannot be
                // trusted; close rather than resync.
                self.stats.frame_errors.incr();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            self.stats.bytes_in.add((FRAME_HEADER + len) as u64);
            self.stats.frames_in.incr();
            // One allocation hand-off per frame: every key/value decoded out
            // of this payload shares its backing from here on.
            if self.handle_payload(&Bytes::from(payload)).is_err() {
                self.stats.frame_errors.incr();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// A [`Transport`] carrying messages between OS processes over TCP.
///
/// Built in two phases so a cluster can bind every node to an ephemeral
/// port first and exchange the resulting addresses afterwards:
///
/// ```no_run
/// use std::sync::Arc;
/// use aloha_net::{Addr, TcpTransport, Transport, WireCodec};
/// # use aloha_net::{PendingReplies, RemoteReplier};
/// # use aloha_common::{Bytes, Result, ServerId};
/// # struct C;
/// # impl WireCodec<u64> for C {
/// #     fn encode(&self, m: &u64, _: &PendingReplies, out: &mut Vec<u8>) -> Result<()> {
/// #         out.extend_from_slice(&m.to_be_bytes());
/// #         Ok(())
/// #     }
/// #     fn decode(&self, b: &Bytes, _: &RemoteReplier) -> Result<u64> {
/// #         Ok(u64::from_be_bytes(b.as_ref().try_into().unwrap()))
/// #     }
/// # }
///
/// let tcp = TcpTransport::bind("127.0.0.1:0", Arc::new(C)).unwrap();
/// println!("listening on {}", tcp.local_addr());
/// tcp.add_peer(Addr::Server(ServerId(1)), "127.0.0.1:4001".parse().unwrap());
/// let ep = tcp.register(Addr::Server(ServerId(0)));
/// ```
pub struct TcpTransport<M: Send + 'static> {
    inner: Arc<TcpInner<M>>,
}

impl<M: Send + 'static> Clone for TcpTransport<M> {
    fn clone(&self) -> Self {
        TcpTransport {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + 'static> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local_addr", &self.inner.local_addr)
            .field("peers", &self.inner.peers.read().len())
            .finish()
    }
}

impl<M: Send + 'static> TcpTransport<M> {
    /// Binds the listener (`"host:0"` picks an ephemeral port — read it
    /// back with [`TcpTransport::local_addr`]) and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the listener cannot bind.
    pub fn bind(bind: &str, codec: Arc<dyn WireCodec<M>>) -> Result<TcpTransport<M>> {
        let listener =
            TcpListener::bind(bind).map_err(|e| Error::Io(format!("bind {bind}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local_addr: {e}")))?;
        let inner = Arc::new(TcpInner {
            codec,
            local_addr,
            locals: RwLock::new(HashMap::new()),
            peers: RwLock::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            inbound: Mutex::new(Vec::new()),
            pending: PendingReplies::new(),
            stats: TcpStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || run_acceptor(weak, listener))
            .expect("spawn tcp acceptor");
        Ok(TcpTransport { inner })
    }

    /// The socket address this transport accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Declares that cluster address `addr` is served by the node listening
    /// at `at`. Sends to `addr` connect there lazily.
    pub fn add_peer(&self, addr: Addr, at: SocketAddr) {
        self.inner.peers.write().insert(addr, at);
    }

    /// This transport's wire counters.
    pub fn stats(&self) -> &TcpStats {
        &self.inner.stats
    }
}

fn run_acceptor<M: Send + 'static>(weak: Weak<TcpInner<M>>, listener: TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let Some(inner) = weak.upgrade() else { return };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            inner.inbound.lock().push(clone);
        }
        std::thread::Builder::new()
            .name("tcp-recv".into())
            .spawn(move || inner.run_reader(stream))
            .expect("spawn tcp reader");
    }
}

impl<M: Send + 'static> Transport<M> for TcpTransport<M> {
    fn register(&self, addr: Addr) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        let prev = self.inner.locals.write().insert(addr, tx);
        assert!(prev.is_none(), "duplicate endpoint registration for {addr}");
        Endpoint::new(addr, rx)
    }

    fn deregister(&self, addr: Addr) {
        self.inner.locals.write().remove(&addr);
    }

    fn send(&self, to: Addr, msg: M) -> Result<()> {
        self.inner.send_impl(to, msg, false)
    }

    fn send_reliable(&self, to: Addr, msg: M) -> Result<()> {
        self.inner.send_impl(to, msg, true)
    }

    fn addresses(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self.inner.locals.read().keys().copied().collect();
        addrs.extend(self.inner.peers.read().keys().copied());
        addrs.sort();
        addrs.dedup();
        addrs
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        None
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.locals.write().clear();
        self.inner.pending.clear();
        for conn in self.inner.conns.lock().values() {
            if let Some(stream) = conn.lock().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for stream in self.inner.inbound.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Poke the listener so the acceptor observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.inner.local_addr, CONNECT_TIMEOUT);
    }
}

#[cfg(test)]
mod tests {
    use aloha_common::ServerId;

    use super::*;

    /// Toy codec: u64 payloads, no replies.
    struct U64Codec;
    impl WireCodec<u64> for U64Codec {
        fn encode(&self, msg: &u64, _pending: &PendingReplies, out: &mut Vec<u8>) -> Result<()> {
            out.extend_from_slice(&msg.to_be_bytes());
            Ok(())
        }
        fn decode(&self, bytes: &Bytes, _replier: &RemoteReplier) -> Result<u64> {
            let arr: [u8; 8] = bytes
                .as_ref()
                .try_into()
                .map_err(|_| Error::Codec("want 8 bytes".into()))?;
            Ok(u64::from_be_bytes(arr))
        }
    }

    fn server(i: u16) -> Addr {
        Addr::Server(ServerId(i))
    }

    fn pair() -> (TcpTransport<u64>, TcpTransport<u64>) {
        let a = TcpTransport::bind("127.0.0.1:0", Arc::new(U64Codec)).unwrap();
        let b = TcpTransport::bind("127.0.0.1:0", Arc::new(U64Codec)).unwrap();
        a.add_peer(server(1), b.local_addr());
        b.add_peer(server(0), a.local_addr());
        (a, b)
    }

    #[test]
    fn remote_round_trip() {
        let (a, b) = pair();
        let ep = b.register(server(1));
        a.send(server(1), 42).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        assert!(a.stats().bytes_out() > 0);
        assert!(b.stats().bytes_in() > 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn local_delivery_skips_the_wire() {
        let (a, _b) = pair();
        let ep = a.register(server(0));
        a.send(server(0), 7).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
        assert_eq!(a.stats().bytes_out(), 0);
        a.shutdown();
    }

    #[test]
    fn unknown_destination_errors() {
        let (a, _b) = pair();
        assert!(a.send(server(9), 1).is_err());
        assert_eq!(a.stats().dropped(), 1);
        a.shutdown();
    }

    #[test]
    fn send_survives_peer_restart() {
        let (a, b) = pair();
        let ep = b.register(server(1));
        a.send(server(1), 1).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
        // Kill b's side of the connection; a's next send reconnects.
        b.shutdown();
        let b2 = TcpTransport::bind("127.0.0.1:0", Arc::new(U64Codec)).unwrap();
        a.add_peer(server(1), b2.local_addr());
        let ep2 = b2.register(server(1));
        // The first send may be swallowed by the dead connection (lossy
        // contract); keep sending like the RPC retry layer would.
        let mut got = None;
        for attempt in 0..20u64 {
            let _ = a.send(server(1), 100 + attempt);
            if let Ok(v) = ep2.recv_timeout(Duration::from_millis(200)) {
                got = Some(v);
                break;
            }
        }
        assert!(got.is_some(), "no message after reconnect");
        a.shutdown();
        b2.shutdown();
    }

    #[test]
    fn garbage_frame_is_rejected_and_counted() {
        let (a, b) = pair();
        let ep = b.register(server(1));
        // Handshake a healthy frame first.
        a.send(server(1), 5).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(5)).unwrap(), 5);
        // Now speak garbage at b directly.
        let mut raw = TcpStream::connect(b.local_addr()).unwrap();
        raw.write_all(&[0xFF; 64]).unwrap();
        raw.flush().unwrap();
        drop(raw);
        // The reader must reject without delivering anything.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.stats().frame_errors() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(b.stats().frame_errors() > 0);
        // And the healthy path still works.
        a.send(server(1), 6).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(5)).unwrap(), 6);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_disconnects_local_endpoints() {
        let (a, _b) = pair();
        let ep = a.register(server(0));
        a.shutdown();
        assert!(ep.recv_timeout(Duration::from_secs(1)).is_err());
    }
}
