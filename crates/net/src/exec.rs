//! A bounded two-lane executor for backend message handling.
//!
//! The paper's evaluation runs each backend with a *fixed* pool of processor
//! threads (§V-A3); spawning a fresh OS thread per message is pure overhead
//! at exactly the message rates where ECC's contention-free write phase
//! should shine. This module provides the bounded replacement, split into
//! two lanes with different guarantees:
//!
//! * **Sharded lane** — `sharded_workers` threads, each owning one
//!   hash-routed FIFO queue. Two tasks submitted with the same shard hash
//!   run on the same worker in submission order, so installs / aborts /
//!   deferred installs for one key never reorder, while distinct keys
//!   proceed in parallel. Tasks on this lane may block only on services the
//!   submitting dispatcher answers inline (e.g. replication appends),
//!   never on work routed back through this executor.
//!
//! * **Blocking lane** — `blocking_workers` threads draining one shared
//!   queue, for requests that can recurse across partitions (remote gets,
//!   version resolution). A task is enqueued only after *reserving* one
//!   currently idle worker (an atomic claim-ticket); when no idle worker
//!   remains, submission falls back to a counted **spillover spawn** — a
//!   detached thread, exactly what the pre-pool code did for every message.
//!   The reservation invariant means an enqueued task never waits behind a
//!   blocked worker, so the original deadlock-freedom argument (functor
//!   recursion strictly decreases versions, hence every blocked task
//!   eventually unblocks) carries over unchanged: recursive work either
//!   claims a genuinely idle worker or gets a fresh thread.
//!
//! [`ExecConfig::spawn_per_message`] disables both pools and spawns a
//! (counted) thread per task — the pre-pool behavior, kept as the baseline
//! arm of the `ablation_executor` benchmark.
//!
//! [`Executor::shutdown`] closes the queues, drains every already-accepted
//! task, and joins the pooled workers, so no accepted task is ever lost.
//! Spillover threads are detached and not joined (they hold no queue).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use aloha_common::metrics::{Counter, Histogram};
use aloha_common::stats::{StageStats, StatsSnapshot};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool sizes for an [`Executor`].
///
/// # Examples
///
/// ```
/// use aloha_net::ExecConfig;
/// let cfg = ExecConfig::default();
/// assert!(cfg.pooled && cfg.sharded_workers > 0);
/// let baseline = ExecConfig::spawn_per_message();
/// assert!(!baseline.pooled);
/// ```
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Workers on the key-sharded lane (one FIFO queue each).
    pub sharded_workers: usize,
    /// Workers on the blocking lane (one shared queue).
    pub blocking_workers: usize,
    /// `false` disables both pools: every task runs on a freshly spawned
    /// (counted) thread, the pre-pool behavior used as the ablation
    /// baseline.
    pub pooled: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            sharded_workers: 4,
            blocking_workers: 4,
            pooled: true,
        }
    }
}

impl ExecConfig {
    /// Overrides the sharded-lane pool size.
    pub fn with_sharded_workers(mut self, n: usize) -> ExecConfig {
        self.sharded_workers = n;
        self
    }

    /// Overrides the blocking-lane pool size.
    pub fn with_blocking_workers(mut self, n: usize) -> ExecConfig {
        self.blocking_workers = n;
        self
    }

    /// The spawn-per-message baseline: no pools, one detached thread per
    /// task, every spawn counted in
    /// [`spillover_spawns`](ExecStats::spillover_spawns).
    pub fn spawn_per_message() -> ExecConfig {
        ExecConfig {
            pooled: false,
            ..ExecConfig::default()
        }
    }
}

/// Counters, thread gauges and the queue-depth histogram of one
/// [`Executor`].
#[derive(Debug, Default)]
pub struct ExecStats {
    sharded_tasks: Counter,
    blocking_tasks: Counter,
    spillover_spawns: Counter,
    /// Queue length observed at each enqueue (the histogram's microsecond
    /// buckets are reused as plain value buckets here).
    queue_depth: Histogram,
    /// Pooled workers (constant for the executor's lifetime).
    threads_steady: AtomicU64,
    /// Pooled workers still running plus live spillover threads.
    threads_current: AtomicU64,
    /// High-water mark of `threads_current`.
    threads_peak: AtomicU64,
}

impl ExecStats {
    /// Tasks accepted on the sharded lane.
    pub fn sharded_tasks(&self) -> u64 {
        self.sharded_tasks.get()
    }

    /// Tasks accepted on the blocking lane.
    pub fn blocking_tasks(&self) -> u64 {
        self.blocking_tasks.get()
    }

    /// Tasks that ran on a freshly spawned thread: blocking-lane saturation
    /// spillover, plus every task in spawn-per-message mode.
    pub fn spillover_spawns(&self) -> u64 {
        self.spillover_spawns.get()
    }

    /// Pooled worker threads (the steady-state thread count).
    pub fn threads_steady(&self) -> u64 {
        self.threads_steady.load(Ordering::Relaxed)
    }

    /// Live executor threads right now (pooled + spillover).
    pub fn threads_current(&self) -> u64 {
        self.threads_current.load(Ordering::Relaxed)
    }

    /// High-water mark of live executor threads.
    pub fn threads_peak(&self) -> u64 {
        self.threads_peak.load(Ordering::Relaxed)
    }

    /// Queue-depth-at-enqueue histogram.
    pub fn queue_depth(&self) -> &Histogram {
        &self.queue_depth
    }

    /// Exports the pool metrics as one node of the unified stats tree.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("sharded_tasks", self.sharded_tasks());
        node.set_counter("blocking_tasks", self.blocking_tasks());
        node.set_counter("spillover_spawns", self.spillover_spawns());
        node.set_counter("threads_steady", self.threads_steady());
        node.set_counter("threads_current", self.threads_current());
        node.set_counter("threads_peak", self.threads_peak());
        node.set_stage(
            "queue_depth",
            StageStats::from(&self.queue_depth.snapshot()),
        );
        node
    }

    /// Clears the counters and the depth histogram (benchmark warm-up);
    /// thread gauges reflect live state, so the peak resets to the current
    /// count rather than zero.
    pub fn reset(&self) {
        self.sharded_tasks.reset();
        self.blocking_tasks.reset();
        self.spillover_spawns.reset();
        self.queue_depth.reset();
        self.threads_peak
            .store(self.threads_current(), Ordering::Relaxed);
    }

    fn thread_started(&self) {
        let now = self.threads_current.fetch_add(1, Ordering::SeqCst) + 1;
        self.threads_peak.fetch_max(now, Ordering::SeqCst);
    }

    fn thread_finished(&self) {
        self.threads_current.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The two lanes' send sides; dropped on shutdown so workers drain and exit.
struct Lanes {
    sharded: Vec<Sender<Job>>,
    blocking: Sender<Job>,
}

struct Inner {
    name: String,
    pooled: bool,
    stats: Arc<ExecStats>,
    lanes: RwLock<Option<Lanes>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Blocking-lane claim tickets: idle workers minus enqueued-unclaimed
    /// tasks. A submission enqueues only after decrementing this above
    /// zero; otherwise it spills over to a fresh thread.
    available: Arc<AtomicU64>,
}

/// The bounded two-lane executor (see the module docs). Cheap to clone;
/// clones share the pools.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("name", &self.inner.name)
            .field("pooled", &self.inner.pooled)
            .finish()
    }
}

impl Executor {
    /// Creates the executor and spawns its pooled workers (none in
    /// spawn-per-message mode). Zero worker counts are clamped to one.
    pub fn new(name: impl Into<String>, config: ExecConfig) -> Executor {
        let name = name.into();
        let stats = Arc::new(ExecStats::default());
        let available = Arc::new(AtomicU64::new(0));
        let mut lanes = None;
        let mut workers = Vec::new();
        if config.pooled {
            let sharded_n = config.sharded_workers.max(1);
            let blocking_n = config.blocking_workers.max(1);
            let mut sharded = Vec::with_capacity(sharded_n);
            for i in 0..sharded_n {
                let (tx, rx) = unbounded::<Job>();
                sharded.push(tx);
                workers.push(spawn_worker(
                    format!("{name}-shard{i}"),
                    rx,
                    Arc::clone(&stats),
                    None,
                ));
            }
            let (btx, brx) = unbounded::<Job>();
            for i in 0..blocking_n {
                workers.push(spawn_worker(
                    format!("{name}-block{i}"),
                    brx.clone(),
                    Arc::clone(&stats),
                    Some(Arc::clone(&available)),
                ));
            }
            available.store(blocking_n as u64, Ordering::SeqCst);
            let steady = (sharded_n + blocking_n) as u64;
            stats.threads_steady.store(steady, Ordering::SeqCst);
            stats.threads_current.store(steady, Ordering::SeqCst);
            stats.threads_peak.store(steady, Ordering::SeqCst);
            lanes = Some(Lanes {
                sharded,
                blocking: btx,
            });
        }
        Executor {
            inner: Arc::new(Inner {
                name,
                pooled: config.pooled,
                stats,
                lanes: RwLock::new(lanes),
                workers: Mutex::new(workers),
                available,
            }),
        }
    }

    /// This executor's metrics.
    pub fn stats(&self) -> &ExecStats {
        &self.inner.stats
    }

    /// Instantaneous number of tasks queued in both lanes (0 in
    /// spawn-per-message mode, where nothing ever queues). This is the
    /// executor-pressure signal the control plane's pacer samples.
    pub fn queued_now(&self) -> u64 {
        match self.inner.lanes.read().as_ref() {
            Some(l) => {
                l.sharded.iter().map(|q| q.len() as u64).sum::<u64>() + l.blocking.len() as u64
            }
            None => 0,
        }
    }

    /// Submits a task to the sharded lane. Tasks with equal `hash` run on
    /// the same worker in submission order; tasks with different hashes may
    /// run concurrently. After shutdown the task runs inline on the caller.
    pub fn submit_sharded(&self, hash: u64, job: impl FnOnce() + Send + 'static) {
        self.inner.stats.sharded_tasks.incr();
        if !self.inner.pooled {
            return self.spawn_spillover(Box::new(job));
        }
        let lanes = self.inner.lanes.read();
        match lanes.as_ref() {
            Some(l) => {
                let q = &l.sharded[(hash % l.sharded.len() as u64) as usize];
                self.inner.stats.queue_depth.record(q.len() as u64);
                if let Err(e) = q.send(Box::new(job)) {
                    drop(lanes);
                    (e.0)();
                }
            }
            None => {
                drop(lanes);
                job();
            }
        }
    }

    /// Submits a task that may block (e.g. recurse into another partition).
    /// Runs on a pooled blocking-lane worker if one is idle, otherwise on a
    /// counted spillover thread. After shutdown the task runs inline on the
    /// caller.
    pub fn submit_blocking(&self, job: impl FnOnce() + Send + 'static) {
        self.inner.stats.blocking_tasks.incr();
        if !self.inner.pooled {
            return self.spawn_spillover(Box::new(job));
        }
        // Claim one idle worker; failure to claim means every pooled worker
        // is busy (possibly blocked), so the task must not queue behind them.
        let claimed = loop {
            let a = self.inner.available.load(Ordering::SeqCst);
            if a == 0 {
                break false;
            }
            if self
                .inner
                .available
                .compare_exchange(a, a - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break true;
            }
        };
        if !claimed {
            return self.spawn_spillover(Box::new(job));
        }
        let lanes = self.inner.lanes.read();
        match lanes.as_ref() {
            Some(l) => {
                self.inner.stats.queue_depth.record(l.blocking.len() as u64);
                if let Err(e) = l.blocking.send(Box::new(job)) {
                    drop(lanes);
                    self.inner.available.fetch_add(1, Ordering::SeqCst);
                    (e.0)();
                }
            }
            None => {
                drop(lanes);
                self.inner.available.fetch_add(1, Ordering::SeqCst);
                job();
            }
        }
    }

    /// Closes both lanes, drains every accepted task, and joins the pooled
    /// workers. Idempotent. Tasks submitted afterwards run inline on the
    /// submitter.
    pub fn shutdown(&self) {
        drop(self.inner.lanes.write().take());
        let workers: Vec<JoinHandle<()>> = self.inner.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
    }

    fn spawn_spillover(&self, job: Job) {
        let stats = Arc::clone(&self.inner.stats);
        stats.spillover_spawns.incr();
        stats.thread_started();
        std::thread::Builder::new()
            .name(format!("{}-spill", self.inner.name))
            .spawn(move || {
                job();
                stats.thread_finished();
            })
            .expect("spawn spillover thread");
    }
}

/// Worker body shared by both lanes: drain jobs until every sender is gone
/// (shutdown dropped the lanes). `available` is the blocking lane's
/// claim-ticket counter — returning a ticket *after* the job finishes is
/// what keeps enqueued tasks from waiting behind a blocked worker.
fn spawn_worker(
    name: String,
    rx: Receiver<Job>,
    stats: Arc<ExecStats>,
    available: Option<Arc<AtomicU64>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                job();
                if let Some(a) = &available {
                    a.fetch_add(1, Ordering::SeqCst);
                }
            }
            stats.thread_finished();
        })
        .expect("spawn executor worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn sharded_tasks_run_and_drain_on_shutdown() {
        let exec = Executor::new("t", ExecConfig::default().with_sharded_workers(3));
        let ran = Arc::new(AtomicUsize::new(0));
        for i in 0..100u64 {
            let ran = Arc::clone(&ran);
            exec.submit_sharded(i, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        exec.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 100);
        assert_eq!(exec.stats().sharded_tasks(), 100);
        assert_eq!(exec.stats().spillover_spawns(), 0);
    }

    #[test]
    fn same_shard_preserves_submission_order() {
        let exec = Executor::new("t", ExecConfig::default().with_sharded_workers(4));
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..200usize {
            let log = Arc::clone(&log);
            exec.submit_sharded(7, move || log.lock().push(i));
        }
        exec.shutdown();
        let log = log.lock();
        assert_eq!(*log, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_lane_spills_over_when_workers_are_parked() {
        let exec = Executor::new("t", ExecConfig::default().with_blocking_workers(2));
        let (release_tx, release_rx) = unbounded::<()>();
        // Park both pooled workers.
        for _ in 0..2 {
            let rx = release_rx.clone();
            exec.submit_blocking(move || {
                let _ = rx.recv();
            });
        }
        // Wait until both tickets are consumed by the parked tasks.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while exec.inner.available.load(Ordering::SeqCst) != 0 {
            assert!(std::time::Instant::now() < deadline, "tickets not claimed");
            std::thread::yield_now();
        }
        // Give the workers a moment to actually dequeue and park.
        std::thread::sleep(Duration::from_millis(20));
        // This submission must not queue behind the parked workers.
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let tx = release_tx;
        exec.submit_blocking(move || {
            ran2.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(());
            let _ = tx.send(());
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ran.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "spillover never ran");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(exec.stats().spillover_spawns() >= 1);
        exec.shutdown();
    }

    #[test]
    fn spawn_per_message_mode_counts_every_spawn() {
        let exec = Executor::new("t", ExecConfig::spawn_per_message());
        let ran = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded::<()>();
        for i in 0..10u64 {
            let ran = Arc::clone(&ran);
            let done = done_tx.clone();
            let submit_blocking = i % 2 == 0;
            let job = move || {
                ran.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(());
            };
            if submit_blocking {
                exec.submit_blocking(job);
            } else {
                exec.submit_sharded(i, job);
            }
        }
        for _ in 0..10 {
            done_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("task finished");
        }
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        assert_eq!(exec.stats().spillover_spawns(), 10);
        assert_eq!(exec.stats().threads_steady(), 0);
        assert!(exec.stats().threads_peak() >= 1);
        exec.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_run_inline() {
        let exec = Executor::new("t", ExecConfig::default());
        exec.shutdown();
        let ran = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::clone(&ran);
        exec.submit_sharded(1, move || {
            r1.fetch_add(1, Ordering::SeqCst);
        });
        let r2 = Arc::clone(&ran);
        exec.submit_blocking(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn snapshot_exports_pool_metrics() {
        let exec = Executor::new(
            "t",
            ExecConfig::default()
                .with_sharded_workers(2)
                .with_blocking_workers(3),
        );
        exec.submit_sharded(1, || {});
        exec.submit_blocking(|| {});
        exec.shutdown();
        let node = exec.stats().snapshot("exec");
        assert_eq!(node.counter("sharded_tasks"), Some(1));
        assert_eq!(node.counter("blocking_tasks"), Some(1));
        assert_eq!(node.counter("threads_steady"), Some(5));
        assert!(node.stage("queue_depth").is_some());
        // All pooled workers exited after the drain.
        assert_eq!(exec.stats().threads_current(), 0);
    }
}
