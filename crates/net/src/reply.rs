//! One-shot reply channels for request/reply messaging.
//!
//! A request message carries a [`ReplySlot`]; the responder fulfils it once
//! via [`ReplySlot::send`], and the requester blocks on the matching
//! [`ReplyHandle`]. This mirrors RPC response correlation in the paper's
//! fbthrift layer without a real wire protocol.

use std::time::Duration;

use aloha_common::{Error, Result};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

/// The responder's half of a one-shot reply channel.
///
/// Dropping an unfulfilled slot causes the requester to observe
/// [`Error::Disconnected`], modeling a responder crash.
///
/// Cloning is supported so the fault layer can duplicate request messages:
/// each delivered copy fulfils its own slot clone, and the requester
/// consumes whichever reply lands first (later replies to a one-shot
/// channel are discarded with the channel).
#[derive(Debug)]
pub struct ReplySlot<T> {
    tx: Sender<T>,
}

impl<T> Clone for ReplySlot<T> {
    fn clone(&self) -> Self {
        ReplySlot {
            tx: self.tx.clone(),
        }
    }
}

/// The requester's half of a one-shot reply channel.
#[derive(Debug)]
pub struct ReplyHandle<T> {
    rx: Receiver<T>,
}

/// Creates a connected ([`ReplySlot`], [`ReplyHandle`]) pair.
///
/// # Examples
///
/// ```
/// use aloha_net::reply_pair;
/// let (slot, handle) = reply_pair::<u32>();
/// slot.send(7);
/// assert_eq!(handle.wait().unwrap(), 7);
/// ```
pub fn reply_pair<T>() -> (ReplySlot<T>, ReplyHandle<T>) {
    let (tx, rx) = bounded(1);
    (ReplySlot { tx }, ReplyHandle { rx })
}

impl<T> ReplySlot<T> {
    /// Fulfils the reply. Returns `false` if the requester has gone away
    /// (which responders treat as harmless).
    pub fn send(self, value: T) -> bool {
        self.tx.send(value).is_ok()
    }
}

impl<T> ReplyHandle<T> {
    /// Blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] if the responder dropped its slot
    /// without replying.
    pub fn wait(self) -> Result<T> {
        self.rx
            .recv()
            .map_err(|_| Error::Disconnected("reply slot dropped".into()))
    }

    /// Blocks until the reply arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] on timeout and [`Error::Disconnected`] if
    /// the responder dropped its slot.
    pub fn wait_timeout(self, timeout: Duration) -> Result<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) => Err(Error::Timeout("rpc reply".into())),
            Err(RecvTimeoutError::Disconnected) => {
                Err(Error::Disconnected("reply slot dropped".into()))
            }
        }
    }

    /// Polls for the reply without blocking.
    pub fn try_wait(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let (slot, handle) = reply_pair();
        assert!(slot.send(41));
        assert_eq!(handle.wait().unwrap(), 41);
    }

    #[test]
    fn dropped_slot_is_disconnected() {
        let (slot, handle) = reply_pair::<()>();
        drop(slot);
        assert!(matches!(handle.wait(), Err(Error::Disconnected(_))));
    }

    #[test]
    fn dropped_handle_makes_send_return_false() {
        let (slot, handle) = reply_pair::<u8>();
        drop(handle);
        assert!(!slot.send(1));
    }

    #[test]
    fn timeout_fires_when_no_reply() {
        let (_slot, handle) = reply_pair::<u8>();
        let err = handle.wait_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, Error::Timeout(_)));
    }

    #[test]
    fn cross_thread_reply() {
        let (slot, handle) = reply_pair();
        let t = std::thread::spawn(move || slot.send(99));
        assert_eq!(handle.wait().unwrap(), 99);
        t.join().unwrap();
    }

    #[test]
    fn duplicated_slot_first_reply_wins() {
        let (slot, handle) = reply_pair();
        let dup = slot.clone();
        assert!(slot.send(1));
        // The duplicate's reply must not block or panic even though the
        // one-shot channel already holds a value.
        dup.send(2);
        assert_eq!(handle.wait().unwrap(), 1);
    }

    #[test]
    fn try_wait_is_nonblocking() {
        let (slot, handle) = reply_pair();
        assert!(handle.try_wait().is_none());
        slot.send(5);
        assert_eq!(handle.try_wait(), Some(5));
    }
}
