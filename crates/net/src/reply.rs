//! One-shot reply channels for request/reply messaging.
//!
//! A request message carries a [`ReplySlot`]; the responder fulfils it once
//! via [`ReplySlot::send`], and the requester blocks on the matching
//! [`ReplyHandle`]. This mirrors RPC response correlation in the paper's
//! fbthrift layer without a real wire protocol.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use aloha_common::{Error, Result};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

enum ReplyTarget<T> {
    /// A local one-shot channel (the [`reply_pair`] form).
    Chan(Sender<T>),
    /// A closure, used by process-boundary transports to route the reply
    /// back over the wire. One-shot semantics are enforced by the remote
    /// correlation table, not by the closure.
    Fn(Arc<dyn Fn(T) + Send + Sync>),
}

/// The responder's half of a one-shot reply channel.
///
/// Dropping an unfulfilled slot causes the requester to observe
/// [`Error::Disconnected`], modeling a responder crash.
///
/// Cloning is supported so the fault layer can duplicate request messages:
/// each delivered copy fulfils its own slot clone, and the requester
/// consumes whichever reply lands first (later replies to a one-shot
/// channel are discarded with the channel).
pub struct ReplySlot<T> {
    target: ReplyTarget<T>,
}

impl<T> fmt::Debug for ReplySlot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            ReplyTarget::Chan(_) => f.write_str("ReplySlot(chan)"),
            ReplyTarget::Fn(_) => f.write_str("ReplySlot(fn)"),
        }
    }
}

impl<T> Clone for ReplySlot<T> {
    fn clone(&self) -> Self {
        let target = match &self.target {
            ReplyTarget::Chan(tx) => ReplyTarget::Chan(tx.clone()),
            ReplyTarget::Fn(f) => ReplyTarget::Fn(Arc::clone(f)),
        };
        ReplySlot { target }
    }
}

/// The requester's half of a one-shot reply channel.
#[derive(Debug)]
pub struct ReplyHandle<T> {
    rx: Receiver<T>,
}

/// Creates a connected ([`ReplySlot`], [`ReplyHandle`]) pair.
///
/// # Examples
///
/// ```
/// use aloha_net::reply_pair;
/// let (slot, handle) = reply_pair::<u32>();
/// slot.send(7);
/// assert_eq!(handle.wait().unwrap(), 7);
/// ```
pub fn reply_pair<T>() -> (ReplySlot<T>, ReplyHandle<T>) {
    let (tx, rx) = bounded(1);
    (
        ReplySlot {
            target: ReplyTarget::Chan(tx),
        },
        ReplyHandle { rx },
    )
}

impl<T> ReplySlot<T> {
    /// Wraps a closure as a reply slot. Process-boundary transports rebuild
    /// decoded messages' slots with this: the closure serializes the reply
    /// and routes it back over the wire. `Fn` (not `FnOnce`) because slots
    /// must stay `Clone` for fault-layer duplication; exactly-once delivery
    /// is the requester-side correlation table's job.
    pub fn from_fn(f: impl Fn(T) + Send + Sync + 'static) -> ReplySlot<T> {
        ReplySlot {
            target: ReplyTarget::Fn(Arc::new(f)),
        }
    }

    /// Fulfils the reply. Returns `false` if the requester has gone away
    /// (which responders treat as harmless; closure-backed slots cannot
    /// observe the requester and always return `true`).
    pub fn send(self, value: T) -> bool {
        match self.target {
            ReplyTarget::Chan(tx) => tx.send(value).is_ok(),
            ReplyTarget::Fn(f) => {
                f(value);
                true
            }
        }
    }
}

impl<T> ReplyHandle<T> {
    /// Blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] if the responder dropped its slot
    /// without replying.
    pub fn wait(self) -> Result<T> {
        self.rx
            .recv()
            .map_err(|_| Error::Disconnected("reply slot dropped".into()))
    }

    /// Blocks until the reply arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] on timeout and [`Error::Disconnected`] if
    /// the responder dropped its slot.
    pub fn wait_timeout(self, timeout: Duration) -> Result<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) => Err(Error::Timeout("rpc reply".into())),
            Err(RecvTimeoutError::Disconnected) => {
                Err(Error::Disconnected("reply slot dropped".into()))
            }
        }
    }

    /// Polls for the reply without blocking.
    pub fn try_wait(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let (slot, handle) = reply_pair();
        assert!(slot.send(41));
        assert_eq!(handle.wait().unwrap(), 41);
    }

    #[test]
    fn dropped_slot_is_disconnected() {
        let (slot, handle) = reply_pair::<()>();
        drop(slot);
        assert!(matches!(handle.wait(), Err(Error::Disconnected(_))));
    }

    #[test]
    fn dropped_handle_makes_send_return_false() {
        let (slot, handle) = reply_pair::<u8>();
        drop(handle);
        assert!(!slot.send(1));
    }

    #[test]
    fn timeout_fires_when_no_reply() {
        let (_slot, handle) = reply_pair::<u8>();
        let err = handle.wait_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, Error::Timeout(_)));
    }

    #[test]
    fn cross_thread_reply() {
        let (slot, handle) = reply_pair();
        let t = std::thread::spawn(move || slot.send(99));
        assert_eq!(handle.wait().unwrap(), 99);
        t.join().unwrap();
    }

    #[test]
    fn duplicated_slot_first_reply_wins() {
        let (slot, handle) = reply_pair();
        let dup = slot.clone();
        assert!(slot.send(1));
        // The duplicate's reply must not block or panic even though the
        // one-shot channel already holds a value.
        dup.send(2);
        assert_eq!(handle.wait().unwrap(), 1);
    }

    #[test]
    fn try_wait_is_nonblocking() {
        let (slot, handle) = reply_pair();
        assert!(handle.try_wait().is_none());
        slot.send(5);
        assert_eq!(handle.try_wait(), Some(5));
    }

    #[test]
    fn fn_backed_slot_invokes_closure() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let slot = ReplySlot::from_fn(move |v: u32| {
            tx.send(v).unwrap();
        });
        let dup = slot.clone();
        assert!(slot.send(7));
        assert!(dup.send(8));
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
    }
}
