//! The cluster message bus: named endpoints plus fire-and-forget delivery.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use aloha_common::metrics::Counter;
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Error, Result, ServerId};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;

use crate::delay::{DelayLine, NetConfig};
use crate::fault::{FaultDecision, FaultPlan, FaultState};

/// A network address inside the simulated cluster.
///
/// Matches the paper's process roles: one FE/BE server process per host, one
/// epoch manager, and external client drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Addr {
    /// A server process (front-end + back-end pair).
    Server(ServerId),
    /// The epoch manager process.
    EpochManager,
    /// A client driver, identified by an arbitrary number.
    Client(u64),
    /// The standby replica of server `ServerId`'s partition (partial
    /// replication): the endpoint the primary ships its WAL batches to.
    Replica(ServerId),
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Server(s) => write!(f, "{s}"),
            Addr::EpochManager => write!(f, "em"),
            Addr::Client(c) => write!(f, "c{c}"),
            Addr::Replica(s) => write!(f, "r{s}"),
        }
    }
}

/// Aggregate traffic statistics for a [`Bus`].
#[derive(Debug, Default)]
pub struct NetStats {
    messages: Counter,
    dropped: Counter,
    injected_drops: Counter,
    injected_dups: Counter,
    injected_reorders: Counter,
}

impl NetStats {
    /// Total messages successfully handed to an endpoint queue.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Messages addressed to missing or shut-down endpoints.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Messages dropped by the fault layer (random loss or a partition).
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops.get()
    }

    /// Messages duplicated by the fault layer.
    pub fn injected_dups(&self) -> u64 {
        self.injected_dups.get()
    }

    /// Messages the fault layer delayed past their natural order.
    pub fn injected_reorders(&self) -> u64 {
        self.injected_reorders.get()
    }

    /// Exports these counters as one node of the unified stats tree.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut node = StatsSnapshot::new("net");
        node.set_counter("messages", self.messages());
        node.set_counter("dropped", self.dropped());
        node.set_counter("injected_drops", self.injected_drops());
        node.set_counter("injected_dups", self.injected_dups());
        node.set_counter("injected_reorders", self.injected_reorders());
        node
    }
}

type Registry<M> = Arc<RwLock<HashMap<Addr, Sender<M>>>>;

struct BusInner<M: Send + 'static> {
    registry: Registry<M>,
    delay: Option<DelayLine<(Addr, M)>>,
    fault: Option<FaultState>,
    stats: Arc<NetStats>,
}

/// The shared in-process network connecting every simulated process.
///
/// Cloning a `Bus` is cheap; all clones deliver into the same endpoints.
///
/// # Examples
///
/// ```
/// use aloha_common::ServerId;
/// use aloha_net::{Addr, Bus, NetConfig};
///
/// let bus: Bus<u64> = Bus::new(NetConfig::instant());
/// let ep = bus.register(Addr::Server(ServerId(1)));
/// bus.send(Addr::Server(ServerId(1)), 7).unwrap();
/// assert_eq!(ep.recv().unwrap(), 7);
/// ```
pub struct Bus<M: Send + 'static> {
    inner: Arc<BusInner<M>>,
}

impl<M: Send + 'static> Clone for Bus<M> {
    fn clone(&self) -> Self {
        Bus {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + 'static> fmt::Debug for Bus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bus")
            .field("endpoints", &self.inner.registry.read().len())
            .field("messages", &self.inner.stats.messages())
            .finish()
    }
}

fn deliver_direct<M: Send>(registry: &Registry<M>, stats: &NetStats, to: Addr, msg: M) {
    let guard = registry.read();
    match guard.get(&to) {
        Some(tx) if tx.send(msg).is_ok() => stats.messages.incr(),
        _ => stats.dropped.incr(),
    }
}

impl<M: Send + 'static> Bus<M> {
    /// Creates a bus with the given network behavior.
    pub fn new(config: NetConfig) -> Bus<M> {
        let registry: Registry<M> = Arc::new(RwLock::new(HashMap::new()));
        let stats = Arc::new(NetStats::default());
        let fault = config.fault.clone().map(FaultState::new);
        let delay = if config.is_instant() {
            None
        } else {
            let reg = Arc::clone(&registry);
            let st = Arc::clone(&stats);
            Some(DelayLine::spawn(config, move |(to, msg)| {
                deliver_direct(&reg, &st, to, msg);
            }))
        };
        Bus {
            inner: Arc::new(BusInner {
                registry,
                delay,
                fault,
                stats,
            }),
        }
    }

    /// Registers an endpoint, returning its receive side.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already registered — cluster wiring is static in
    /// this reproduction, so a duplicate registration is a programming error.
    pub fn register(&self, addr: Addr) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        let prev = self.inner.registry.write().insert(addr, tx);
        assert!(prev.is_none(), "duplicate endpoint registration for {addr}");
        Endpoint { addr, rx }
    }

    /// Removes an endpoint; subsequent sends to it are counted as dropped.
    pub fn deregister(&self, addr: Addr) {
        self.inner.registry.write().remove(&addr);
    }

    /// Traffic statistics for this bus.
    pub(crate) fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// The fault plan this bus was created with, if any. Chaos harnesses
    /// print it alongside failures so runs are reproducible from one line.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inner.fault.as_ref().map(|f| f.plan())
    }

    /// Sends a control-plane message directly, bypassing the fault layer
    /// and the delay line. Harness teardown must not ride the lossy data
    /// plane: a dropped `Shutdown` would hang the test harness, not the
    /// system under test. Direct delivery may overtake in-flight delayed
    /// messages, which is acceptable for teardown.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] if the destination is not registered.
    pub fn send_reliable(&self, to: Addr, msg: M) -> Result<()> {
        let guard = self.inner.registry.read();
        match guard.get(&to) {
            Some(tx) if tx.send(msg).is_ok() => {
                self.inner.stats.messages.incr();
                Ok(())
            }
            _ => {
                self.inner.stats.dropped.incr();
                Err(Error::Disconnected(to.to_string()))
            }
        }
    }

    /// Addresses currently registered.
    pub fn addresses(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self.inner.registry.read().keys().copied().collect();
        addrs.sort();
        addrs
    }

    /// Drops every registered endpoint's send side: blocked `recv` calls
    /// return `Disconnected` once their queues drain, and subsequent sends
    /// count as drops. Harness teardown normally deregisters addresses one
    /// by one; `close` is the transport-level equivalent for callers that
    /// only hold the trait object.
    pub fn close(&self) {
        self.inner.registry.write().clear();
    }
}

impl<M: Send + Clone + 'static> Bus<M> {
    /// Sends a message to `to`, applying the configured network delay and
    /// any fault plan (`Clone` is required so the fault layer can duplicate
    /// messages; replies are one-shot, so duplicated RPCs resolve to the
    /// first fulfilled reply).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] if the destination is not currently
    /// registered and the network is instant (with a delay line the miss is
    /// only observable asynchronously, so it is counted in
    /// [`NetStats::dropped`] instead). Fault-injected drops return `Ok` —
    /// a real network gives the sender no signal either.
    pub fn send(&self, to: Addr, msg: M) -> Result<()> {
        if let Some(fault) = &self.inner.fault {
            let line = self
                .inner
                .delay
                .as_ref()
                .expect("a fault plan always spawns a delay line");
            match fault.decide(to) {
                FaultDecision::Drop => {
                    self.inner.stats.injected_drops.incr();
                    return Ok(());
                }
                FaultDecision::Deliver {
                    extras,
                    duplicated,
                    reordered,
                } => {
                    if duplicated {
                        self.inner.stats.injected_dups.incr();
                    }
                    if reordered {
                        self.inner.stats.injected_reorders.incr();
                    }
                    let mut msg = Some(msg);
                    let copies = extras.len();
                    for (i, extra) in extras.into_iter().enumerate() {
                        let m = if i + 1 == copies {
                            msg.take().expect("last copy consumes the message")
                        } else {
                            msg.as_ref().expect("copy before last").clone()
                        };
                        line.push_after((to, m), extra);
                    }
                    return Ok(());
                }
            }
        }
        match &self.inner.delay {
            Some(line) => {
                line.push((to, msg));
                Ok(())
            }
            None => {
                let guard = self.inner.registry.read();
                match guard.get(&to) {
                    Some(tx) if tx.send(msg).is_ok() => {
                        self.inner.stats.messages.incr();
                        Ok(())
                    }
                    _ => {
                        self.inner.stats.dropped.incr();
                        Err(Error::Disconnected(to.to_string()))
                    }
                }
            }
        }
    }
}

/// The receive side of a registered bus address.
#[derive(Debug)]
pub struct Endpoint<M> {
    addr: Addr,
    rx: Receiver<M>,
}

impl<M> Endpoint<M> {
    pub(crate) fn new(addr: Addr, rx: Receiver<M>) -> Endpoint<M> {
        Endpoint { addr, rx }
    }

    /// The address this endpoint is registered under.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] once the bus is gone and the queue is
    /// drained.
    pub fn recv(&self) -> Result<M> {
        self.rx
            .recv()
            .map_err(|_| Error::Disconnected(self.addr.to_string()))
    }

    /// Blocks for at most `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] on timeout, [`Error::Disconnected`] if the
    /// bus is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<M> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(Error::Timeout(format!("recv on {}", self.addr))),
            Err(RecvTimeoutError::Disconnected) => Err(Error::Disconnected(self.addr.to_string())),
        }
    }

    /// Blocks until a message arrives or `deadline` passes. The single
    /// blocking-with-deadline receive that server poll loops build on:
    /// unlike repeated `recv_timeout` calls, the deadline does not slide
    /// when messages keep arriving.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] once `deadline` passes,
    /// [`Error::Disconnected`] if the transport is gone.
    pub fn recv_deadline(&self, deadline: std::time::Instant) -> Result<M> {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(Error::Timeout(format!("recv on {}", self.addr))),
            Err(RecvTimeoutError::Disconnected) => Err(Error::Disconnected(self.addr.to_string())),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<M> {
        self.rx.try_recv().ok()
    }

    /// Number of queued messages.
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }
}

/// Blocking-with-deadline receive for shutdown-aware thread loops: waits on
/// `rx` in `slice`-bounded stretches, re-checking `keep_running` between
/// them, so a quiescent thread still observes its shutdown flag promptly.
///
/// Returns `None` when the channel disconnects or `keep_running` reports
/// false — both mean the loop should exit. This replaces the ad-hoc
/// `recv_timeout(50ms)` + shutdown-check pattern previously copied into
/// every processor/scheduler/worker loop.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// let (tx, rx) = crossbeam::channel::unbounded();
/// tx.send(7u32).unwrap();
/// assert_eq!(
///     aloha_net::recv_while(&rx, Duration::from_millis(1), || true),
///     Some(7)
/// );
/// assert_eq!(aloha_net::recv_while(&rx, Duration::from_millis(1), || false), None);
/// ```
pub fn recv_while<M>(
    rx: &Receiver<M>,
    slice: Duration,
    keep_running: impl Fn() -> bool,
) -> Option<M> {
    loop {
        match rx.recv_timeout(slice) {
            Ok(m) => return Some(m),
            Err(RecvTimeoutError::Timeout) => {
                if !keep_running() {
                    return None;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(i: u16) -> Addr {
        Addr::Server(ServerId(i))
    }

    #[test]
    fn point_to_point_delivery() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let a = bus.register(server(0));
        let b = bus.register(server(1));
        bus.send(server(0), 10).unwrap();
        bus.send(server(1), 20).unwrap();
        assert_eq!(a.recv().unwrap(), 10);
        assert_eq!(b.recv().unwrap(), 20);
        assert_eq!(bus.stats().messages(), 2);
    }

    #[test]
    fn unknown_destination_errors_when_instant() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let err = bus.send(server(9), 1).unwrap_err();
        assert!(matches!(err, Error::Disconnected(_)));
        assert_eq!(bus.stats().dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_registration_panics() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let _a = bus.register(server(0));
        let _b = bus.register(server(0));
    }

    #[test]
    fn delayed_delivery_reaches_endpoint() {
        let bus: Bus<u32> = Bus::new(NetConfig::with_latency(Duration::from_millis(2)));
        let ep = bus.register(server(0));
        bus.send(server(0), 5).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap(), 5);
    }

    #[test]
    fn deregistered_endpoint_counts_drops() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let ep = bus.register(server(0));
        bus.deregister(server(0));
        let _ = bus.send(server(0), 1);
        assert_eq!(bus.stats().dropped(), 1);
        drop(ep);
    }

    #[test]
    fn per_sender_fifo_is_preserved() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let ep = bus.register(server(0));
        for i in 0..100 {
            bus.send(server(0), i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(ep.recv().unwrap(), i);
        }
    }

    #[test]
    fn many_senders_one_receiver() {
        let bus: Bus<u64> = Bus::new(NetConfig::instant());
        let ep = bus.register(server(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let bus = bus.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        bus.send(server(0), t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(m) = ep.try_recv() {
            got.push(m);
        }
        assert_eq!(got.len(), 800);
    }

    #[test]
    fn addresses_are_sorted() {
        let bus: Bus<u8> = Bus::new(NetConfig::instant());
        let _em = bus.register(Addr::EpochManager);
        let _s1 = bus.register(server(1));
        let _s0 = bus.register(server(0));
        assert_eq!(
            bus.addresses(),
            vec![server(0), server(1), Addr::EpochManager]
        );
    }

    #[test]
    fn fault_drop_all_delivers_nothing() {
        use crate::fault::{FaultPlan, LinkFault};
        let plan =
            FaultPlan::new(11).with_default_link(LinkFault::lossy(1.0, 0.0, 0.0, Duration::ZERO));
        let bus: Bus<u32> = Bus::new(NetConfig::instant().with_fault(plan));
        let ep = bus.register(server(0));
        for i in 0..20 {
            bus.send(server(0), i).unwrap();
        }
        assert!(ep.recv_timeout(Duration::from_millis(30)).is_err());
        assert_eq!(bus.stats().injected_drops(), 20);
        assert_eq!(bus.stats().messages(), 0);
    }

    #[test]
    fn fault_duplicate_all_delivers_twice() {
        use crate::fault::{FaultPlan, LinkFault};
        let plan =
            FaultPlan::new(11).with_default_link(LinkFault::lossy(0.0, 1.0, 0.0, Duration::ZERO));
        let bus: Bus<u32> = Bus::new(NetConfig::instant().with_fault(plan));
        let ep = bus.register(server(0));
        bus.send(server(0), 7).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
        assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
        assert_eq!(bus.stats().injected_dups(), 1);
    }

    #[test]
    fn fault_partition_blocks_only_window() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new(3).with_partition(
            Duration::ZERO,
            Duration::from_millis(40),
            vec![ServerId(0)],
        );
        let bus: Bus<u32> = Bus::new(NetConfig::instant().with_fault(plan));
        let ep = bus.register(server(0));
        bus.send(server(0), 1).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        bus.send(server(0), 2).unwrap();
        assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        assert_eq!(bus.stats().injected_drops(), 1);
    }

    #[test]
    fn fault_plan_is_reported() {
        use crate::fault::FaultPlan;
        let bus: Bus<u8> = Bus::new(NetConfig::instant().with_fault(FaultPlan::new(5)));
        assert_eq!(bus.fault_plan().map(|p| p.seed), Some(5));
        let plain: Bus<u8> = Bus::new(NetConfig::instant());
        assert!(plain.fault_plan().is_none());
    }

    #[test]
    fn endpoint_backlog_reflects_queue() {
        let bus: Bus<u8> = Bus::new(NetConfig::instant());
        let ep = bus.register(server(0));
        bus.send(server(0), 1).unwrap();
        bus.send(server(0), 2).unwrap();
        assert_eq!(ep.backlog(), 2);
        ep.recv().unwrap();
        assert_eq!(ep.backlog(), 1);
    }
}
