//! The pluggable transport abstraction.
//!
//! Everything above the network — batcher, executor, fault harnesses, both
//! engines — talks to the cluster through [`Transport`], not through a
//! concrete [`Bus`]. The in-process [`Bus`] is the default implementation
//! (bit-for-bit the old behavior, including the fault/delay layers); the
//! TCP implementation in [`crate::tcp`] carries the same messages between
//! OS processes over length-delimited checksummed frames.
//!
//! # Contract
//!
//! * **Per-sender FIFO.** Two `send` calls from the same thread to the same
//!   destination arrive in order (if both arrive).
//! * **`send` is lossy.** The simulated bus drops on injected faults, TCP
//!   drops on connection failure; neither signals the sender beyond best
//!   effort. Callers recover via the RPC retransmission layer.
//! * **`send_reliable` is for control-plane teardown**: it bypasses fault
//!   injection on the bus, and reports an error instead of dropping.
//! * **Replies are one-shot.** A [`crate::ReplySlot`] embedded in a message
//!   resolves at most once, no matter how many duplicates arrive.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aloha_common::stats::StatsSnapshot;
use aloha_common::{Bytes, Result};
use parking_lot::Mutex;

use crate::bus::{Addr, Bus, Endpoint};
use crate::fault::FaultPlan;

/// A cluster transport: named endpoints plus fire-and-forget delivery.
///
/// Object-safe so engines can hold `Arc<dyn Transport<M>>` and swap the
/// network out from under an unchanged data plane.
pub trait Transport<M: Send + 'static>: Send + Sync {
    /// Registers a local endpoint, returning its receive side.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already registered locally — cluster wiring is
    /// static in this reproduction, so a duplicate is a programming error.
    fn register(&self, addr: Addr) -> Endpoint<M>;

    /// Removes a local endpoint; subsequent sends to it count as dropped.
    fn deregister(&self, addr: Addr);

    /// Sends a message on the data plane (lossy: fault injection or a dead
    /// connection silently drops; RPC retries absorb the loss).
    ///
    /// # Errors
    ///
    /// Returns [`aloha_common::Error::Disconnected`] only when the miss is
    /// synchronously observable (instant bus, unknown destination).
    fn send(&self, to: Addr, msg: M) -> Result<()>;

    /// Sends a control-plane message, bypassing fault injection.
    ///
    /// # Errors
    ///
    /// Returns an error if the destination is unreachable, rather than
    /// dropping silently.
    fn send_reliable(&self, to: Addr, msg: M) -> Result<()>;

    /// Addresses currently reachable (locally registered plus known peers),
    /// sorted.
    fn addresses(&self) -> Vec<Addr>;

    /// The fault plan active on this transport, if any. Chaos harnesses
    /// print it alongside failures so runs are reproducible from one line.
    fn fault_plan(&self) -> Option<&FaultPlan>;

    /// This transport's counters as the `net` node of the unified stats
    /// tree. Each implementation exports its own counter set (the bus its
    /// fault-injection tallies, TCP its wire/reconnect/frame-error
    /// tallies) under the shared `messages`/`dropped` core.
    fn snapshot(&self) -> StatsSnapshot;

    /// Tears the transport down: local endpoints disconnect (blocked
    /// `recv` calls return `Disconnected`) and remote connections close.
    fn shutdown(&self);
}

impl<M: Send + Clone + 'static> Transport<M> for Bus<M> {
    fn register(&self, addr: Addr) -> Endpoint<M> {
        Bus::register(self, addr)
    }

    fn deregister(&self, addr: Addr) {
        Bus::deregister(self, addr)
    }

    fn send(&self, to: Addr, msg: M) -> Result<()> {
        Bus::send(self, to, msg)
    }

    fn send_reliable(&self, to: Addr, msg: M) -> Result<()> {
        Bus::send_reliable(self, to, msg)
    }

    fn addresses(&self) -> Vec<Addr> {
        Bus::addresses(self)
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        Bus::fault_plan(self)
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    fn shutdown(&self) {
        self.close()
    }
}

/// Boxed completion closure fired with a reply frame's payload.
pub type ReplyFn = Box<dyn FnOnce(&[u8]) + Send>;

/// Outstanding request→reply correlations on one node.
///
/// Message types whose variants carry a [`crate::ReplySlot`] cannot ship the
/// slot's channel across a process boundary. Instead, the wire codec
/// [`WireCodec::encode`] registers a completion closure here and writes the
/// returned correlation id into the frame; when the matching `Reply` frame
/// comes back, [`PendingReplies::complete`] decodes the payload and fires
/// the original local slot. The entry is removed on first completion, so
/// duplicated replies (retransmits, fault dups) are harmless.
#[derive(Default)]
pub struct PendingReplies {
    next: AtomicU64,
    map: Mutex<HashMap<u64, ReplyFn>>,
}

impl PendingReplies {
    /// Creates an empty correlation table.
    pub fn new() -> PendingReplies {
        PendingReplies::default()
    }

    /// Registers a completion closure; returns the correlation id to embed
    /// in the outgoing frame.
    pub fn register(&self, on_reply: ReplyFn) -> u64 {
        let corr = self.next.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(corr, on_reply);
        corr
    }

    /// Fires and removes the completion for `corr`. Returns `false` when the
    /// id is unknown — already completed (duplicate reply) or never issued
    /// (stray frame); both are ignored by design.
    pub fn complete(&self, corr: u64, payload: &[u8]) -> bool {
        let Some(on_reply) = self.map.lock().remove(&corr) else {
            return false;
        };
        on_reply(payload);
        true
    }

    /// Number of replies still outstanding.
    pub fn outstanding(&self) -> usize {
        self.map.lock().len()
    }

    /// Drops every outstanding completion without firing it (local slots
    /// disconnect, which the RPC layer treats as a lost reply).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

impl fmt::Debug for PendingReplies {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingReplies")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

/// The reply path handed to [`WireCodec::decode`].
///
/// When a decoded message carries a correlation id, the codec rebuilds its
/// reply slot as a closure that encodes the reply value and hands
/// `(corr, payload)` here; the transport routes it back to the frame's
/// origin node as a `Reply` frame.
#[derive(Clone)]
pub struct RemoteReplier {
    send: Arc<dyn Fn(u64, Vec<u8>) + Send + Sync>,
}

impl RemoteReplier {
    /// Wraps the transport's reply-frame sender.
    pub fn new(send: impl Fn(u64, Vec<u8>) + Send + Sync + 'static) -> RemoteReplier {
        RemoteReplier {
            send: Arc::new(send),
        }
    }

    /// Routes an encoded reply payload back to the requesting node.
    pub fn reply(&self, corr: u64, payload: Vec<u8>) {
        (self.send)(corr, payload)
    }
}

impl fmt::Debug for RemoteReplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RemoteReplier")
    }
}

/// Binary codec for one message type, used by process-boundary transports.
///
/// The codec owns the reply correlation protocol: `encode` registers any
/// embedded [`crate::ReplySlot`]s with the node's [`PendingReplies`] and
/// writes their correlation ids into the payload; `decode` reconstructs
/// those slots via [`crate::ReplySlot::from_fn`] closures that route back
/// through the given [`RemoteReplier`].
pub trait WireCodec<M>: Send + Sync + 'static {
    /// Serializes `msg` into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`aloha_common::Error::Codec`] for values this codec cannot
    /// represent on the wire.
    fn encode(&self, msg: &M, pending: &PendingReplies, out: &mut Vec<u8>) -> Result<()>;

    /// Deserializes one message, rebuilding reply slots against `replier`.
    ///
    /// `bytes` is the message body as a shared buffer so codecs can decode
    /// key/value fields as zero-copy windows of the received frame
    /// (`Bytes::slice_ref`) instead of copying each field.
    ///
    /// # Errors
    ///
    /// Returns [`aloha_common::Error::Codec`] on malformed payloads.
    fn decode(&self, bytes: &Bytes, replier: &RemoteReplier) -> Result<M>;
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    use aloha_common::ServerId;

    use super::*;
    use crate::delay::NetConfig;

    fn server(i: u16) -> Addr {
        Addr::Server(ServerId(i))
    }

    #[test]
    fn bus_behaves_identically_through_the_trait_object() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let net: Arc<dyn Transport<u32>> = Arc::new(bus);
        let ep = net.register(server(0));
        net.send(server(0), 7).unwrap();
        net.send_reliable(server(0), 8).unwrap();
        assert_eq!(ep.recv().unwrap(), 7);
        assert_eq!(ep.recv().unwrap(), 8);
        assert_eq!(net.addresses(), vec![server(0)]);
        let snap = net.snapshot();
        assert_eq!(snap.counter("messages"), Some(2));
        assert!(net.fault_plan().is_none());
    }

    #[test]
    fn bus_shutdown_disconnects_endpoints() {
        let bus: Bus<u32> = Bus::new(NetConfig::instant());
        let net: Arc<dyn Transport<u32>> = Arc::new(bus);
        let ep = net.register(server(0));
        net.shutdown();
        assert!(ep.recv().is_err());
        // Post-shutdown sends are counted as drops, not panics.
        let _ = net.send(server(0), 1);
        assert_eq!(net.snapshot().counter("dropped"), Some(1));
    }

    #[test]
    fn pending_replies_complete_exactly_once() {
        let pending = PendingReplies::new();
        let (tx, rx) = mpsc::channel();
        let corr = pending.register(Box::new(move |payload: &[u8]| {
            tx.send(payload.to_vec()).unwrap();
        }));
        assert_eq!(pending.outstanding(), 1);
        assert!(pending.complete(corr, b"hi"));
        assert_eq!(rx.recv().unwrap(), b"hi");
        // Duplicate replies are dropped.
        assert!(!pending.complete(corr, b"again"));
        assert_eq!(pending.outstanding(), 0);
    }

    #[test]
    fn stray_correlation_ids_are_ignored() {
        let pending = PendingReplies::new();
        assert!(!pending.complete(999, b"stray"));
    }

    #[test]
    #[allow(clippy::redundant_clone)] // the clone IS the behavior under test
    fn remote_replier_routes_payloads() {
        let (tx, rx) = mpsc::channel();
        let replier = RemoteReplier::new(move |corr, payload| {
            tx.send((corr, payload)).unwrap();
        });
        let clone = replier.clone();
        clone.reply(3, vec![1, 2]);
        assert_eq!(rx.recv().unwrap(), (3, vec![1, 2]));
    }
}
