//! Destination-coalescing message batching for the cluster bus.
//!
//! Distributed-transaction latency is dominated by message rounds, so the
//! rounds that cannot be eliminated should at least be amortized: a
//! [`Batcher`] buffers outbound messages per destination and hands the bus
//! one envelope per flush instead of one send per message. A queue is
//! flushed when it reaches the configured message count, the configured
//! byte budget, or the configured age — and explicitly at epoch boundaries
//! via [`Batcher::flush`], so batching never holds a message across an
//! epoch close.
//!
//! The envelope is built by a caller-supplied `wrap` function (the engine
//! wraps into its `ServerMsg::Batch` variant), which keeps this module
//! protocol-agnostic. Because a flushed batch is one bus message, the fault
//! layer drops, duplicates and reorders whole batches — retries and
//! idempotence then work exactly as they do for single messages.
//!
//! Ordering guarantee: two messages enqueued toward the same destination are
//! never reordered, regardless of which threshold (or which thread — caller
//! or the background deadline flusher) triggers their flush. Each
//! destination queue has its own lock, held across both batch formation and
//! bus submission, so envelopes toward one destination are serialized while
//! traffic toward different destinations flows in parallel — the batcher
//! adds no cross-destination serialization.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use aloha_common::metrics::{Counter, Histogram};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::Result;
use parking_lot::{Mutex, RwLock};

use crate::bus::Addr;
use crate::transport::Transport;

/// Flush thresholds for a [`Batcher`].
///
/// # Examples
///
/// ```
/// use aloha_net::BatchConfig;
/// let cfg = BatchConfig::default();
/// assert!(cfg.max_messages > 1);
/// ```
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Flush a destination queue once it holds this many messages.
    pub max_messages: usize,
    /// Flush a destination queue once its estimated payload reaches this
    /// many bytes.
    pub max_bytes: usize,
    /// Flush a non-empty destination queue once its oldest message has
    /// waited this long (the latency bound batching may add).
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_messages: 32,
            max_bytes: 32 * 1024,
            max_delay: Duration::from_micros(200),
        }
    }
}

impl BatchConfig {
    /// Overrides the message-count threshold.
    pub fn with_max_messages(mut self, n: usize) -> BatchConfig {
        self.max_messages = n;
        self
    }

    /// Overrides the byte threshold.
    pub fn with_max_bytes(mut self, n: usize) -> BatchConfig {
        self.max_bytes = n;
        self
    }

    /// Overrides the age threshold.
    pub fn with_max_delay(mut self, d: Duration) -> BatchConfig {
        self.max_delay = d;
        self
    }
}

/// Counters and the occupancy histogram of one [`Batcher`].
#[derive(Debug, Default)]
pub struct BatchStats {
    enqueued: Counter,
    batches: Counter,
    flush_size: Counter,
    flush_bytes: Counter,
    flush_deadline: Counter,
    flush_explicit: Counter,
    occupancy: Histogram,
}

impl BatchStats {
    /// Messages accepted into destination queues.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.get()
    }

    /// Envelopes (or unwrapped singles) handed to the bus.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Flushes triggered by the message-count threshold.
    pub fn flushes_by_size(&self) -> u64 {
        self.flush_size.get()
    }

    /// Flushes triggered by the byte threshold.
    pub fn flushes_by_bytes(&self) -> u64 {
        self.flush_bytes.get()
    }

    /// Flushes triggered by queue age.
    pub fn flushes_by_deadline(&self) -> u64 {
        self.flush_deadline.get()
    }

    /// Flushes triggered by an explicit [`Batcher::flush`] (epoch close,
    /// shutdown).
    pub fn flushes_explicit(&self) -> u64 {
        self.flush_explicit.get()
    }

    /// Messages-per-batch distribution (recorded per flushed batch).
    pub fn occupancy(&self) -> &Histogram {
        &self.occupancy
    }

    /// Mean messages per flushed batch.
    pub fn mean_occupancy(&self) -> f64 {
        self.occupancy.mean_micros()
    }

    /// Merges these metrics into a stats node as `batch_*` counters plus the
    /// `batch_occupancy` stage (the cluster exports them on its `net` node).
    pub fn export(&self, node: &mut StatsSnapshot) {
        node.set_counter("batch_enqueued", self.enqueued());
        node.set_counter("batch_batches", self.batches());
        node.set_counter("batch_flush_size", self.flushes_by_size());
        node.set_counter("batch_flush_bytes", self.flushes_by_bytes());
        node.set_counter("batch_flush_deadline", self.flushes_by_deadline());
        node.set_counter("batch_flush_explicit", self.flushes_explicit());
        node.set_stage(
            "batch_occupancy",
            StageStats::from(&self.occupancy.snapshot()),
        );
    }

    /// Clears every counter and the occupancy histogram (benchmark warm-up).
    pub fn reset(&self) {
        self.enqueued.reset();
        self.batches.reset();
        self.flush_size.reset();
        self.flush_bytes.reset();
        self.flush_deadline.reset();
        self.flush_explicit.reset();
        self.occupancy.reset();
    }
}

/// Why a queue was flushed (selects the stats counter).
#[derive(Debug, Clone, Copy)]
enum FlushReason {
    Size,
    Bytes,
    Deadline,
    Explicit,
}

struct DestQueue<M> {
    msgs: Vec<M>,
    bytes: usize,
    /// When the oldest queued message arrived (meaningless while empty).
    since: Instant,
}

impl<M> DestQueue<M> {
    fn new() -> DestQueue<M> {
        DestQueue {
            msgs: Vec::new(),
            bytes: 0,
            since: Instant::now(),
        }
    }
}

struct BatcherInner<M: Send + Clone + 'static> {
    net: Arc<dyn Transport<M>>,
    config: BatchConfig,
    wrap: Box<dyn Fn(Vec<M>) -> M + Send + Sync>,
    sizer: Box<dyn Fn(&M) -> usize + Send + Sync>,
    /// Per-destination queues behind a read-mostly map: the destinations are
    /// the cluster's handful of server addresses, inserted once each, so
    /// sends take the read lock plus only their own destination's mutex.
    queues: RwLock<HashMap<Addr, Arc<Mutex<DestQueue<M>>>>>,
    /// Read under a destination's lock before enqueueing, and set before the
    /// shutdown flush: either a message lands in the queue before that flush
    /// drains it, or it observes the flag and goes to the bus directly —
    /// nothing can be stranded.
    shutdown: AtomicBool,
    stats: BatchStats,
}

impl<M: Send + Clone + 'static> BatcherInner<M> {
    fn queue_for(&self, to: Addr) -> Arc<Mutex<DestQueue<M>>> {
        if let Some(queue) = self.queues.read().get(&to) {
            return Arc::clone(queue);
        }
        Arc::clone(
            self.queues
                .write()
                .entry(to)
                .or_insert_with(|| Arc::new(Mutex::new(DestQueue::new()))),
        )
    }

    /// Drains one destination queue and submits the envelope to the bus
    /// *while still holding that destination's lock*, so a racing
    /// caller-side flush and the deadline flusher cannot invert batch order
    /// toward the destination.
    fn flush_locked(&self, queue: &mut DestQueue<M>, to: Addr, reason: FlushReason) {
        if queue.msgs.is_empty() {
            return;
        }
        let msgs = std::mem::take(&mut queue.msgs);
        queue.bytes = 0;
        match reason {
            FlushReason::Size => self.stats.flush_size.incr(),
            FlushReason::Bytes => self.stats.flush_bytes.incr(),
            FlushReason::Deadline => self.stats.flush_deadline.incr(),
            FlushReason::Explicit => self.stats.flush_explicit.incr(),
        }
        self.stats.batches.incr();
        self.stats.occupancy.record(msgs.len() as u64);
        // A single message travels unwrapped: the receiver sees exactly the
        // message it would have seen without batching.
        let envelope = if msgs.len() == 1 {
            msgs.into_iter().next().expect("length checked")
        } else {
            (self.wrap)(msgs)
        };
        // Delivery failures (unregistered destination) are already counted
        // by the transport; a batch may carry messages from several
        // requesters, so there is no single caller to surface the error to.
        // Requesters recover via RPC retransmission, like any lost message.
        let _ = self.net.send(to, envelope);
    }

    fn dests(&self) -> Vec<(Addr, Arc<Mutex<DestQueue<M>>>)> {
        self.queues
            .read()
            .iter()
            .map(|(addr, queue)| (*addr, Arc::clone(queue)))
            .collect()
    }

    fn flush_all(&self, reason: FlushReason) {
        for (to, queue) in self.dests() {
            self.flush_locked(&mut queue.lock(), to, reason);
        }
    }
}

/// A per-destination message coalescer in front of a [`Transport`].
///
/// Clones share the same queues; the cluster typically creates one batcher
/// and hands a clone to every server, which also coalesces different
/// senders' traffic toward the same destination.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
///
/// use aloha_common::ServerId;
/// use aloha_net::{Addr, BatchConfig, Batcher, Bus, NetConfig};
///
/// let bus: Bus<u64> = Bus::new(NetConfig::instant());
/// let ep = bus.register(Addr::Server(ServerId(0)));
/// let batcher = Batcher::new(
///     Arc::new(bus),
///     BatchConfig::default().with_max_messages(2),
///     |msgs| msgs.iter().sum(), // toy envelope: the sum
///     |_| 8,
/// );
/// batcher.send(Addr::Server(ServerId(0)), 1).unwrap();
/// batcher.send(Addr::Server(ServerId(0)), 2).unwrap(); // size threshold
/// assert_eq!(ep.recv().unwrap(), 3);
/// batcher.shutdown();
/// ```
pub struct Batcher<M: Send + Clone + 'static> {
    inner: Arc<BatcherInner<M>>,
}

impl<M: Send + Clone + 'static> Clone for Batcher<M> {
    fn clone(&self) -> Self {
        Batcher {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + Clone + 'static> fmt::Debug for Batcher<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Batcher")
            .field("enqueued", &self.inner.stats.enqueued())
            .field("batches", &self.inner.stats.batches())
            .finish()
    }
}

impl<M: Send + Clone + 'static> Batcher<M> {
    /// Creates a batcher over `net` and spawns its deadline flusher.
    ///
    /// `wrap` builds the on-wire envelope for a multi-message batch; `sizer`
    /// estimates one message's payload bytes for the byte threshold.
    pub fn new(
        net: Arc<dyn Transport<M>>,
        config: BatchConfig,
        wrap: impl Fn(Vec<M>) -> M + Send + Sync + 'static,
        sizer: impl Fn(&M) -> usize + Send + Sync + 'static,
    ) -> Batcher<M> {
        let inner = Arc::new(BatcherInner {
            net,
            config,
            wrap: Box::new(wrap),
            sizer: Box::new(sizer),
            queues: RwLock::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            stats: BatchStats::default(),
        });
        let weak = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("batch-flusher".into())
            .spawn(move || run_flusher(weak))
            .expect("spawn batch flusher");
        Batcher { inner }
    }

    /// Enqueues `msg` toward `to`, flushing inline if a size or byte
    /// threshold is reached. After [`Batcher::shutdown`] the message bypasses
    /// the queues and goes straight to the bus.
    ///
    /// # Errors
    ///
    /// Only direct (post-shutdown) sends can fail; a queued message's
    /// delivery outcome is observable solely through bus drop counters, as
    /// with any asynchronous network.
    pub fn send(&self, to: Addr, msg: M) -> Result<()> {
        let bytes = (self.inner.sizer)(&msg);
        let queue = self.inner.queue_for(to);
        let mut queue = queue.lock();
        if self.inner.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            return self.inner.net.send(to, msg);
        }
        if queue.msgs.is_empty() {
            queue.since = Instant::now();
        }
        queue.msgs.push(msg);
        queue.bytes += bytes;
        self.inner.stats.enqueued.incr();
        if queue.msgs.len() >= self.inner.config.max_messages {
            self.inner.flush_locked(&mut queue, to, FlushReason::Size);
        } else if queue.bytes >= self.inner.config.max_bytes {
            self.inner.flush_locked(&mut queue, to, FlushReason::Bytes);
        }
        Ok(())
    }

    /// Flushes every destination queue now (epoch close, teardown).
    pub fn flush(&self) {
        self.inner.flush_all(FlushReason::Explicit);
    }

    /// Flushes everything and stops the deadline flusher; subsequent sends
    /// bypass the queues.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.flush_all(FlushReason::Explicit);
    }

    /// Instantaneous number of messages coalescing across all destination
    /// queues. This is the batch-occupancy signal the control plane's pacer
    /// samples.
    pub fn queued_now(&self) -> u64 {
        self.inner
            .dests()
            .iter()
            .map(|(_, q)| q.lock().msgs.len() as u64)
            .sum()
    }

    /// This batcher's counters and occupancy histogram.
    pub fn stats(&self) -> &BatchStats {
        &self.inner.stats
    }

    /// The thresholds this batcher was created with.
    pub fn config(&self) -> &BatchConfig {
        &self.inner.config
    }
}

/// Deadline-flusher thread body: flushes queues whose oldest message has
/// aged past `max_delay`, then sleeps until the earliest pending deadline
/// (or a short poll interval while idle — a wakeup-free design, so there is
/// no notification race to lose; the cost is that a lone message may wait up
/// to one extra poll beyond its deadline). Holds only a weak reference
/// between polls so an abandoned batcher (dropped without `shutdown`) lets
/// the thread exit.
fn run_flusher<M: Send + Clone + 'static>(weak: Weak<BatcherInner<M>>) {
    const IDLE_POLL: Duration = Duration::from_millis(50);
    loop {
        let Some(inner) = weak.upgrade() else { return };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        for (to, queue) in inner.dests() {
            let mut queue = queue.lock();
            if queue.msgs.is_empty() {
                continue;
            }
            let deadline = queue.since + inner.config.max_delay;
            if deadline <= now {
                inner.flush_locked(&mut queue, to, FlushReason::Deadline);
            } else {
                next = Some(next.map_or(deadline, |n| n.min(deadline)));
            }
        }
        let sleep = match next {
            Some(deadline) => deadline.saturating_duration_since(now),
            // Idle: poll at the deadline granularity so a message enqueued
            // mid-sleep still flushes within ~2x max_delay, but never spin
            // faster than necessary nor nap longer than IDLE_POLL.
            None => inner.config.max_delay.min(IDLE_POLL),
        };
        drop(inner); // don't keep an abandoned batcher alive while asleep
        std::thread::sleep(sleep.max(Duration::from_micros(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;
    use crate::delay::NetConfig;
    use aloha_common::ServerId;

    /// Toy protocol: leaves are `(seq, payload_bytes)`; a batch wraps its
    /// members in arrival order.
    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        One(u64, usize),
        Batch(Vec<TestMsg>),
    }

    fn batcher(config: BatchConfig) -> (Batcher<TestMsg>, crate::bus::Endpoint<TestMsg>) {
        let bus: Bus<TestMsg> = Bus::new(NetConfig::instant());
        let ep = bus.register(Addr::Server(ServerId(0)));
        let b = Batcher::new(Arc::new(bus), config, TestMsg::Batch, |m| match m {
            TestMsg::One(_, bytes) => *bytes,
            TestMsg::Batch(_) => 0,
        });
        (b, ep)
    }

    fn dest() -> Addr {
        Addr::Server(ServerId(0))
    }

    fn flatten(msg: TestMsg, out: &mut Vec<u64>) {
        match msg {
            TestMsg::One(seq, _) => out.push(seq),
            TestMsg::Batch(msgs) => {
                for m in msgs {
                    flatten(m, out);
                }
            }
        }
    }

    #[test]
    fn size_threshold_flushes_full_batch() {
        let (b, ep) = batcher(
            BatchConfig::default()
                .with_max_messages(3)
                .with_max_delay(Duration::from_secs(60)),
        );
        for seq in 0..3 {
            b.send(dest(), TestMsg::One(seq, 1)).unwrap();
        }
        let got = ep.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(
            got,
            TestMsg::Batch((0..3).map(|s| TestMsg::One(s, 1)).collect())
        );
        assert_eq!(b.stats().flushes_by_size(), 1);
        assert_eq!(b.stats().batches(), 1);
        b.shutdown();
    }

    #[test]
    fn byte_threshold_flushes_before_count() {
        let (b, ep) = batcher(
            BatchConfig::default()
                .with_max_messages(100)
                .with_max_bytes(64)
                .with_max_delay(Duration::from_secs(60)),
        );
        b.send(dest(), TestMsg::One(0, 40)).unwrap();
        b.send(dest(), TestMsg::One(1, 40)).unwrap(); // 80 >= 64
        let got = ep.recv_timeout(Duration::from_secs(1)).unwrap();
        let mut seqs = Vec::new();
        flatten(got, &mut seqs);
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(b.stats().flushes_by_bytes(), 1);
        b.shutdown();
    }

    #[test]
    fn deadline_flushes_a_lone_message() {
        let (b, ep) = batcher(
            BatchConfig::default()
                .with_max_messages(100)
                .with_max_delay(Duration::from_millis(5)),
        );
        b.send(dest(), TestMsg::One(7, 1)).unwrap();
        // Arrives unwrapped (single-message batch) via the deadline path.
        let got = ep.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, TestMsg::One(7, 1));
        assert_eq!(b.stats().flushes_by_deadline(), 1);
        b.shutdown();
    }

    #[test]
    fn explicit_flush_drains_all_destinations() {
        let bus: Bus<TestMsg> = Bus::new(NetConfig::instant());
        let ep0 = bus.register(Addr::Server(ServerId(0)));
        let ep1 = bus.register(Addr::Server(ServerId(1)));
        let b = Batcher::new(
            Arc::new(bus),
            BatchConfig::default()
                .with_max_messages(100)
                .with_max_delay(Duration::from_secs(60)),
            TestMsg::Batch,
            |_| 1,
        );
        b.send(Addr::Server(ServerId(0)), TestMsg::One(1, 1))
            .unwrap();
        b.send(Addr::Server(ServerId(1)), TestMsg::One(2, 1))
            .unwrap();
        b.flush();
        assert_eq!(
            ep0.recv_timeout(Duration::from_secs(1)).unwrap(),
            TestMsg::One(1, 1)
        );
        assert_eq!(
            ep1.recv_timeout(Duration::from_secs(1)).unwrap(),
            TestMsg::One(2, 1)
        );
        assert_eq!(b.stats().flushes_explicit(), 2);
        b.shutdown();
    }

    #[test]
    fn occupancy_histogram_counts_batch_sizes() {
        let (b, ep) = batcher(
            BatchConfig::default()
                .with_max_messages(4)
                .with_max_delay(Duration::from_secs(60)),
        );
        for seq in 0..4 {
            b.send(dest(), TestMsg::One(seq, 1)).unwrap();
        }
        b.send(dest(), TestMsg::One(4, 1)).unwrap();
        b.flush();
        let _ = ep.recv_timeout(Duration::from_secs(1)).unwrap();
        let _ = ep.recv_timeout(Duration::from_secs(1)).unwrap();
        let snap = b.stats().occupancy().snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(b.stats().enqueued(), 5);
        b.shutdown();
    }

    #[test]
    fn shutdown_flushes_and_bypasses_queues() {
        let (b, ep) = batcher(
            BatchConfig::default()
                .with_max_messages(100)
                .with_max_delay(Duration::from_secs(60)),
        );
        b.send(dest(), TestMsg::One(0, 1)).unwrap();
        b.shutdown();
        assert_eq!(
            ep.recv_timeout(Duration::from_secs(1)).unwrap(),
            TestMsg::One(0, 1)
        );
        // Post-shutdown sends are direct.
        b.send(dest(), TestMsg::One(1, 1)).unwrap();
        assert_eq!(
            ep.recv_timeout(Duration::from_secs(1)).unwrap(),
            TestMsg::One(1, 1)
        );
        b.shutdown(); // idempotent
    }

    #[test]
    fn export_carries_batch_counters_and_occupancy() {
        let (b, ep) = batcher(BatchConfig::default().with_max_messages(2));
        b.send(dest(), TestMsg::One(0, 1)).unwrap();
        b.send(dest(), TestMsg::One(1, 1)).unwrap();
        let _ = ep.recv_timeout(Duration::from_secs(1)).unwrap();
        let mut node = StatsSnapshot::new("net");
        b.stats().export(&mut node);
        assert_eq!(node.counter("batch_enqueued"), Some(2));
        assert_eq!(node.counter("batch_batches"), Some(1));
        assert!(node.stage("batch_occupancy").is_some());
        b.stats().reset();
        let mut node = StatsSnapshot::new("net");
        b.stats().export(&mut node);
        assert_eq!(node.counter("batch_enqueued"), Some(0));
        b.shutdown();
    }

    #[test]
    fn concurrent_senders_to_one_destination_keep_per_sender_order() {
        let (b, ep) = batcher(
            BatchConfig::default()
                .with_max_messages(4)
                .with_max_delay(Duration::from_micros(200)),
        );
        let per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let b = b.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        b.send(dest(), TestMsg::One(t * 1_000 + i, 1)).unwrap();
                    }
                });
            }
        });
        b.flush();
        let mut seqs = Vec::new();
        while (seqs.len() as u64) < 4 * per_thread {
            let msg = ep.recv_timeout(Duration::from_secs(2)).unwrap();
            flatten(msg, &mut seqs);
        }
        // Interleaved inline and deadline flushes must never invert one
        // sender's messages: each thread's subsequence comes out ascending
        // and complete.
        for t in 0..4u64 {
            let thread_seqs: Vec<u64> = seqs.iter().copied().filter(|s| s / 1_000 == t).collect();
            assert_eq!(
                thread_seqs.len() as u64,
                per_thread,
                "thread {t} lost messages"
            );
            assert!(
                thread_seqs.windows(2).all(|w| w[0] < w[1]),
                "thread {t} messages reordered"
            );
        }
        b.shutdown();
    }
}
