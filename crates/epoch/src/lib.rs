//! Epoch-based concurrency control (ECC) for ALOHA-DB.
//!
//! ECC (§II) schedules transactions into *epochs* controlled by a central
//! epoch manager (EM). A server may start transactions only while it holds an
//! *authorization* — an epoch type plus a validity period — and transaction
//! timestamps are generated decentrally by each front-end within that period.
//! ALOHA-DB unifies read and write epochs into a single series of write
//! epochs (§III-B): write transactions and historical reads proceed at any
//! time, while latest-version reads are delayed to the next epoch.
//!
//! This crate implements:
//!
//! * [`Authorization`] / [`Grant`] — the epoch lease handed to front-ends.
//! * [`TimestampOracle`] — decentralized, globally unique, monotone
//!   timestamp generation within a validity window.
//! * [`EpochClient`] — the front-end state machine: grant/revoke handling,
//!   in-flight transaction tracking, visibility waits, and the straggler
//!   optimization of §III-C (starting transactions *without* authorization
//!   during an epoch switch, with a bounded timestamp).
//! * [`EpochManager`] — the EM driver thread, generic over a transport.
//!
//! # Examples
//!
//! ```
//! use aloha_common::{EpochId, ServerId, Timestamp};
//! use aloha_epoch::{Authorization, TimestampOracle};
//!
//! let auth = Authorization::new(EpochId(1), 1_000, 26_000);
//! let mut oracle = TimestampOracle::new(ServerId(2));
//! let ts = oracle.issue(5_000, auth.start_micros(), auth.end_micros()).unwrap();
//! assert!(auth.contains(ts));
//! assert_eq!(ts.server(), ServerId(2));
//! ```

pub mod auth;
pub mod client;
pub mod manager;
pub mod oracle;

pub use auth::{Authorization, Grant};
pub use client::{BeginError, EpochClient, TxnTicket};
pub use manager::{EpochConfig, EpochManager, EpochTransport, FixedPacer, Pacer, RevokedAck};
pub use oracle::TimestampOracle;
