//! The front-end epoch state machine.
//!
//! An [`EpochClient`] tracks the server's current authorization, issues
//! transaction timestamps, counts in-flight transactions so that revocation
//! can be acknowledged only when the epoch has drained (§II), exposes the
//! visibility bound for reads (§III-B), and implements the §III-C straggler
//! optimization: after a revocation the client may keep starting transactions
//! *without* authorization, as long as their timestamps do not exceed the
//! previous epoch's finish plus the next epoch's duration.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::{Clock, EpochId, ServerId, Timestamp};
use parking_lot::{Condvar, Mutex};

use crate::auth::{Authorization, Grant};
use crate::oracle::TimestampOracle;

/// Reasons [`EpochClient::begin_txn`] can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginError {
    /// The client is shutting down.
    ShuttingDown,
    /// The supplied deadline passed before a timestamp could be issued.
    DeadlineExceeded,
}

impl std::fmt::Display for BeginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeginError::ShuttingDown => write!(f, "epoch client is shutting down"),
            BeginError::DeadlineExceeded => write!(f, "deadline exceeded waiting for an epoch"),
        }
    }
}

impl std::error::Error for BeginError {}

/// Permission to run one transaction: its timestamp, the epoch whose
/// revocation it blocks, and whether it was started under an authorization
/// or in the §III-C no-authorization window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnTicket {
    /// The transaction's timestamp — its version number and serialization
    /// position.
    pub ts: Timestamp,
    /// The epoch this transaction is accounted to.
    pub epoch: EpochId,
    /// `false` if started in the straggler window without authorization.
    pub authorized: bool,
}

#[derive(Debug)]
struct ClientState {
    auth: Option<Authorization>,
    /// Highest epoch this client has ever held authorization for. Guards
    /// against duplicated or reordered grants re-installing a released
    /// epoch's authorization.
    max_epoch_seen: EpochId,
    /// Epoch whose revoke has been received but not yet acknowledged.
    revoke_pending: Option<EpochId>,
    /// No-authorization window: (first allowed microsecond, last allowed
    /// microsecond, epoch the transactions will be accounted to).
    noauth_window: Option<(u64, u64, EpochId)>,
    /// In-flight transaction counts per accounting epoch.
    in_flight: HashMap<EpochId, usize>,
    /// Reads at or below this timestamp observe settled history.
    visible: Timestamp,
    /// Cluster-wide compute frontier from the latest grant: everything below
    /// it has been computed on every server, so compaction may fold beneath
    /// it. Monotone, like `visible`.
    frontier: Timestamp,
    oracle: TimestampOracle,
    shutdown: bool,
}

/// The per-server ECC participant.
///
/// Thread-safe: the hosting server calls [`EpochClient::begin_txn`] from many
/// worker threads while a network thread feeds [`EpochClient::on_grant`] /
/// [`EpochClient::on_revoke`].
pub struct EpochClient {
    server: ServerId,
    clock: Arc<dyn Clock>,
    allow_noauth: bool,
    poll: Duration,
    state: Mutex<ClientState>,
    changed: Condvar,
}

impl std::fmt::Debug for EpochClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("EpochClient")
            .field("server", &self.server)
            .field("auth", &state.auth)
            .field("visible", &state.visible)
            .finish()
    }
}

impl EpochClient {
    /// Creates a client for `server`. `allow_noauth` enables the §III-C
    /// straggler optimization.
    pub fn new(server: ServerId, clock: Arc<dyn Clock>, allow_noauth: bool) -> EpochClient {
        EpochClient {
            server,
            clock,
            allow_noauth,
            poll: Duration::from_micros(200),
            state: Mutex::new(ClientState {
                auth: None,
                max_epoch_seen: EpochId(0),
                revoke_pending: None,
                noauth_window: None,
                in_flight: HashMap::new(),
                visible: Timestamp::ZERO,
                // Preloaded base rows install at `ZERO.succ()` before any
                // traffic, settled and computed by construction, so the
                // initial snapshot point must already cover them: a read
                // racing cluster startup sees the loaded state, not an
                // empty database.
                frontier: Timestamp::ZERO.succ(),
                oracle: TimestampOracle::new(server),
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// The server this client belongs to.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Handles a grant from the EM: installs the new authorization and
    /// advances the visibility bound to the settled prefix.
    ///
    /// Robust against an unreliable network: a duplicated or reordered grant
    /// for an epoch at or below the highest epoch already seen is not
    /// re-installed (it may have been revoked since), but its settled bound —
    /// monotone information — is still absorbed.
    pub fn on_grant(&self, grant: Grant) {
        let mut state = self.state.lock();
        if grant.settled > state.visible {
            state.visible = grant.settled;
        }
        if grant.frontier > state.frontier {
            state.frontier = grant.frontier;
        }
        if grant.auth.epoch() > state.max_epoch_seen {
            state.max_epoch_seen = grant.auth.epoch();
            state.auth = Some(grant.auth);
            state.noauth_window = None;
        }
        self.changed.notify_all();
    }

    /// Handles a revocation from the EM. Returns `true` if the caller must
    /// acknowledge immediately (no transactions of that epoch are in
    /// flight); otherwise the acknowledgement is returned later by
    /// [`EpochClient::txn_finished`].
    ///
    /// Robust against an unreliable network:
    ///
    /// - A revoke for an epoch *older* than the current authorization is a
    ///   late duplicate — the EM must already hold our ack, or it could not
    ///   have granted the newer epoch. Ignored.
    /// - A revoke received while holding no matching authorization (the
    ///   grant was dropped, or the original ack was lost and the EM is
    ///   retransmitting) is acknowledged as soon as no transaction of that
    ///   epoch is in flight: re-acking is idempotent at the EM, and *not*
    ///   re-acking would stall the cluster forever.
    pub fn on_revoke(&self, epoch: EpochId) -> bool {
        let mut state = self.state.lock();
        match state.auth {
            Some(auth) if auth.epoch() == epoch => {
                // Open the no-authorization window immediately (§III-C):
                // transactions started from now on are accounted to the next
                // epoch and capped at finish(previous) + duration(next).
                if self.allow_noauth {
                    let duration = auth.end_micros() - auth.start_micros();
                    state.noauth_window = Some((
                        auth.end_micros() + 1,
                        auth.end_micros() + duration,
                        epoch.next(),
                    ));
                }
                state.auth = None;
            }
            Some(auth) if auth.epoch() > epoch => {
                return false; // late duplicate; the EM has moved past `epoch`
            }
            Some(_) | None => {
                // Authorization for `epoch` was never received (dropped
                // grant) or already released (retransmitted revoke). An
                // older-than-`epoch` authorization is long expired: drop it
                // so it cannot issue timestamps behind the EM's back.
                state.auth = None;
            }
        }
        if state.in_flight.get(&epoch).copied().unwrap_or(0) == 0 {
            if state.revoke_pending == Some(epoch) {
                state.revoke_pending = None;
            }
            self.changed.notify_all();
            true
        } else {
            state.revoke_pending = Some(epoch);
            self.changed.notify_all();
            false
        }
    }

    /// Starts a transaction: blocks until a timestamp can be issued under the
    /// current authorization or (if enabled) the no-authorization window.
    ///
    /// # Errors
    ///
    /// [`BeginError::ShuttingDown`] after [`EpochClient::shutdown`];
    /// [`BeginError::DeadlineExceeded`] if `deadline` passes first.
    pub fn begin_txn(&self, deadline: Option<Instant>) -> Result<TxnTicket, BeginError> {
        let mut state = self.state.lock();
        loop {
            if state.shutdown {
                return Err(BeginError::ShuttingDown);
            }
            let now = self.clock.now_micros();
            if let Some(auth) = state.auth {
                if auth.clock_within(now) || now < auth.start_micros() {
                    // Clamp early clocks to the window start (the oracle
                    // does this); issue if the window still has room.
                    if let Some(ts) =
                        state
                            .oracle
                            .issue(now, auth.start_micros(), auth.end_micros())
                    {
                        let epoch = auth.epoch();
                        *state.in_flight.entry(epoch).or_insert(0) += 1;
                        return Ok(TxnTicket {
                            ts,
                            epoch,
                            authorized: true,
                        });
                    }
                }
                if self.allow_noauth && now > auth.end_micros() {
                    // The authorization expired and no revoke has arrived —
                    // it may have been dropped, or this server may be
                    // partitioned from the EM. Behave exactly as if revoked
                    // (the EM revokes at the epoch's end anyway): release
                    // the authorization and open the §III-C window. The
                    // eventual revoke finds no matching authorization and is
                    // acknowledged once the epoch drains.
                    let duration = auth.end_micros() - auth.start_micros();
                    state.noauth_window = Some((
                        auth.end_micros() + 1,
                        auth.end_micros() + duration,
                        auth.epoch().next(),
                    ));
                    state.auth = None;
                    continue;
                }
                // Window exhausted or clock past the end: wait for revoke +
                // next grant (or the no-auth window).
            } else if let Some((lo, hi, epoch)) = state.noauth_window {
                if let Some(ts) = state.oracle.issue(now, lo, hi) {
                    *state.in_flight.entry(epoch).or_insert(0) += 1;
                    return Ok(TxnTicket {
                        ts,
                        epoch,
                        authorized: false,
                    });
                }
                // No-auth window exhausted; fall through and wait for grant.
            }
            if self.wait(&mut state, deadline) {
                return Err(BeginError::DeadlineExceeded);
            }
        }
    }

    /// Assigns a timestamp to a latest-version read-only transaction
    /// (§III-B): the timestamp names the snapshot the read will observe once
    /// the epoch completes. Does not count as in-flight — read-only
    /// transactions never block revocation because they perform no writes in
    /// the epoch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EpochClient::begin_txn`].
    pub fn assign_read_timestamp(
        &self,
        deadline: Option<Instant>,
    ) -> Result<Timestamp, BeginError> {
        let mut state = self.state.lock();
        loop {
            if state.shutdown {
                return Err(BeginError::ShuttingDown);
            }
            let now = self.clock.now_micros();
            let window = match (state.auth, state.noauth_window) {
                (Some(auth), _) => Some((auth.start_micros(), auth.end_micros())),
                (None, Some((lo, hi, _))) => Some((lo, hi)),
                (None, None) => None,
            };
            if let Some((lo, hi)) = window {
                if let Some(ts) = state.oracle.issue(now, lo, hi) {
                    return Ok(ts);
                }
            }
            if self.wait(&mut state, deadline) {
                return Err(BeginError::DeadlineExceeded);
            }
        }
    }

    /// Marks a transaction's write-only phase complete. Returns
    /// `Some(epoch)` when this completion allows a pending revocation to be
    /// acknowledged — the caller must then send the ack to the EM.
    pub fn txn_finished(&self, ticket: TxnTicket) -> Option<EpochId> {
        let mut state = self.state.lock();
        let count = state
            .in_flight
            .get_mut(&ticket.epoch)
            .expect("finishing a transaction that was never started");
        *count -= 1;
        let drained = *count == 0;
        if drained {
            state.in_flight.remove(&ticket.epoch);
        }
        if drained && state.revoke_pending == Some(ticket.epoch) {
            state.revoke_pending = None;
            self.changed.notify_all();
            return Some(ticket.epoch);
        }
        None
    }

    /// The settled visibility bound: reads at or below it observe immutable
    /// history (modulo functor computing, which is deterministic).
    pub fn visible_bound(&self) -> Timestamp {
        self.state.lock().visible
    }

    /// The cluster-wide compute frontier from the latest grant: every functor
    /// with a version strictly below it has been computed on every server, so
    /// no future read — local or remote — will need a version the compactor
    /// folds beneath it. This is the only sound horizon for
    /// watermark-driven compaction; `visible_bound` is *not* (a settled but
    /// still-uncomputed functor floors its reads below the visible bound).
    pub fn frontier(&self) -> Timestamp {
        self.state.lock().frontier
    }

    /// A snapshot timestamp for an externally-consistent read-only
    /// transaction, available immediately — no waiting out the epoch.
    ///
    /// The absorbed compute frontier is always a valid read point: every
    /// version at or below it is settled (its epoch completed cluster-wide)
    /// *and* computed on every server, so a read at this timestamp observes
    /// an immutable, fully-materialized prefix of the serial history. The
    /// frontier is monotone across grants, so successive snapshots from one
    /// client never travel backwards in time.
    ///
    /// Unlike [`EpochClient::assign_read_timestamp`], this never blocks and
    /// never consumes an oracle slot; unlike [`EpochClient::visible_bound`],
    /// reads at this point need no fallback to the functor-computing path.
    pub fn snapshot_timestamp(&self) -> Timestamp {
        self.state.lock().frontier
    }

    /// Blocks until the visibility bound reaches `ts` — i.e. until the epoch
    /// that contains `ts` has completed (§III-B latest-version reads).
    ///
    /// Returns `false` on shutdown or deadline.
    pub fn wait_visible(&self, ts: Timestamp, deadline: Option<Instant>) -> bool {
        let mut state = self.state.lock();
        loop {
            if state.visible >= ts {
                return true;
            }
            if state.shutdown {
                return false;
            }
            if self.wait(&mut state, deadline) {
                return false;
            }
        }
    }

    /// Raises the absorbed compute frontier to at least `ts` (monotone, like
    /// grant absorption). For state known settled *and* computed by
    /// out-of-band means — a whole-cluster checkpoint restore installs
    /// materialized values at timestamps no grant of the new cluster will
    /// ever cover, and snapshot reads must see them immediately.
    pub fn absorb_frontier(&self, ts: Timestamp) {
        let mut state = self.state.lock();
        if ts > state.frontier {
            state.frontier = ts;
            drop(state);
            self.changed.notify_all();
        }
    }

    /// Blocks until the absorbed compute frontier reaches `ts` — i.e. until
    /// every functor at or below `ts` has been computed cluster-wide.
    /// Stronger than [`EpochClient::wait_visible`]: a settled epoch may
    /// still hold uncomputed functors whose §IV-E deferred writes have not
    /// landed yet, so a snapshot read flooring above the frontier must wait
    /// for the frontier itself, not mere visibility.
    ///
    /// Returns `false` on shutdown or deadline.
    pub fn wait_frontier(&self, ts: Timestamp, deadline: Option<Instant>) -> bool {
        let mut state = self.state.lock();
        loop {
            if state.frontier >= ts {
                return true;
            }
            if state.shutdown {
                return false;
            }
            if self.wait(&mut state, deadline) {
                return false;
            }
        }
    }

    /// Number of transactions currently in flight (all epochs).
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight.values().sum()
    }

    /// Current authorization, if any.
    pub fn current_auth(&self) -> Option<Authorization> {
        self.state.lock().auth
    }

    /// Wakes all waiters and makes subsequent calls fail.
    pub fn shutdown(&self) {
        let mut state = self.state.lock();
        state.shutdown = true;
        self.changed.notify_all();
    }

    /// Waits for a state change or the poll interval (whichever first),
    /// respecting `deadline`. Returns `true` if the deadline has passed.
    fn wait(
        &self,
        state: &mut parking_lot::MutexGuard<'_, ClientState>,
        deadline: Option<Instant>,
    ) -> bool {
        // Poll-bounded wait: the clock may be a manual test clock that
        // advances without notifying the condvar, so never sleep unbounded.
        let until = match deadline {
            Some(d) => {
                if Instant::now() >= d {
                    return true;
                }
                (Instant::now() + self.poll).min(d)
            }
            None => Instant::now() + self.poll,
        };
        self.changed.wait_until(state, until);
        deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::ManualClock;

    fn client_with_clock(allow_noauth: bool) -> (Arc<EpochClient>, ManualClock) {
        let clock = ManualClock::new(0);
        let client = Arc::new(EpochClient::new(
            ServerId(1),
            Arc::new(clock.clone()),
            allow_noauth,
        ));
        (client, clock)
    }

    fn grant(epoch: u64, start: u64, end: u64, settled: Timestamp) -> Grant {
        Grant {
            auth: Authorization::new(EpochId(epoch), start, end),
            settled,
            epoch_duration_micros: end - start,
            frontier: Timestamp::ZERO,
        }
    }

    #[test]
    fn frontier_advances_monotonically_with_grants() {
        let (client, _clock) = client_with_clock(false);
        assert_eq!(client.frontier(), Timestamp::ZERO.succ());
        let mut g = grant(2, 200, 300, Timestamp::from_raw(500));
        g.frontier = Timestamp::from_raw(90);
        client.on_grant(g);
        assert_eq!(client.frontier(), Timestamp::from_raw(90));
        // A reordered older grant with a lower frontier must not regress it.
        let mut stale = grant(1, 0, 100, Timestamp::ZERO);
        stale.frontier = Timestamp::from_raw(10);
        client.on_grant(stale);
        assert_eq!(client.frontier(), Timestamp::from_raw(90));
        assert!(
            client.frontier() <= client.visible_bound(),
            "frontier trails the settled bound"
        );
    }

    #[test]
    fn snapshot_timestamp_tracks_frontier_without_blocking() {
        let (client, _clock) = client_with_clock(false);
        // Available immediately, before any grant: the initial snapshot
        // point covers exactly the preloaded base rows (version 1).
        assert_eq!(client.snapshot_timestamp(), Timestamp::ZERO.succ());
        let mut g = grant(1, 0, 100, Timestamp::from_raw(300));
        g.frontier = Timestamp::from_raw(120);
        client.on_grant(g);
        assert_eq!(client.snapshot_timestamp(), Timestamp::from_raw(120));
        // Monotone: a reordered grant with a lower frontier never regresses
        // the snapshot point, so session reads never travel backwards.
        let mut stale = grant(2, 100, 200, Timestamp::from_raw(300));
        stale.frontier = Timestamp::from_raw(50);
        client.on_grant(stale);
        assert_eq!(client.snapshot_timestamp(), Timestamp::from_raw(120));
        assert!(
            client.snapshot_timestamp() <= client.visible_bound(),
            "snapshot point only covers settled history"
        );
    }

    #[test]
    fn begin_txn_issues_within_authorization() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 100, 200, Timestamp::ZERO));
        clock.set(150);
        let ticket = client.begin_txn(None).unwrap();
        assert!(ticket.authorized);
        assert_eq!(ticket.epoch, EpochId(1));
        assert!((100..=200).contains(&ticket.ts.micros()));
        assert_eq!(client.in_flight(), 1);
    }

    #[test]
    fn begin_txn_waits_for_first_grant() {
        let (client, clock) = client_with_clock(false);
        clock.set(50);
        let c2 = Arc::clone(&client);
        let t = std::thread::spawn(move || c2.begin_txn(None).unwrap());
        std::thread::sleep(Duration::from_millis(5));
        client.on_grant(grant(1, 40, 400, Timestamp::ZERO));
        let ticket = t.join().unwrap();
        assert_eq!(ticket.epoch, EpochId(1));
    }

    #[test]
    fn revoke_with_no_in_flight_acks_immediately() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        assert!(client.on_revoke(EpochId(1)));
        assert!(client.current_auth().is_none());
    }

    #[test]
    fn revoke_waits_for_in_flight_txn() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        let ticket = client.begin_txn(None).unwrap();
        assert!(!client.on_revoke(EpochId(1)), "ack must be deferred");
        let ack = client.txn_finished(ticket);
        assert_eq!(ack, Some(EpochId(1)), "last finisher carries the ack");
    }

    #[test]
    fn stale_revoke_is_ignored() {
        let (client, _clock) = client_with_clock(false);
        client.on_grant(grant(2, 0, 100, Timestamp::ZERO));
        assert!(!client.on_revoke(EpochId(1)));
        assert!(client.current_auth().is_some(), "current auth untouched");
    }

    #[test]
    fn noauth_window_issues_bounded_timestamps() {
        let (client, clock) = client_with_clock(true);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        assert!(client.on_revoke(EpochId(1)));
        clock.set(120);
        let ticket = client.begin_txn(None).unwrap();
        assert!(!ticket.authorized);
        assert_eq!(
            ticket.epoch,
            EpochId(2),
            "no-auth txns account to the next epoch"
        );
        // §III-C bound: ts <= finish(prev) + duration(next) = 100 + 100.
        assert!(
            ticket.ts.micros() > 100 && ticket.ts.micros() <= 200,
            "{}",
            ticket.ts
        );
    }

    #[test]
    fn noauth_disabled_blocks_until_next_grant() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        client.on_revoke(EpochId(1));
        clock.set(120);
        let deadline = Instant::now() + Duration::from_millis(10);
        let err = client.begin_txn(Some(deadline)).unwrap_err();
        assert_eq!(err, BeginError::DeadlineExceeded);
    }

    #[test]
    fn noauth_txn_blocks_next_epochs_revoke() {
        let (client, clock) = client_with_clock(true);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        client.on_revoke(EpochId(1));
        clock.set(110);
        let noauth_ticket = client.begin_txn(None).unwrap();
        assert_eq!(noauth_ticket.epoch, EpochId(2));
        // Epoch 2 is granted and then revoked while the no-auth txn runs.
        client.on_grant(grant(2, 150, 250, Timestamp::from_raw(1)));
        assert!(
            !client.on_revoke(EpochId(2)),
            "no-auth txn must hold epoch 2 open"
        );
        assert_eq!(client.txn_finished(noauth_ticket), Some(EpochId(2)));
    }

    #[test]
    fn visibility_advances_with_grants() {
        let (client, _clock) = client_with_clock(false);
        assert_eq!(client.visible_bound(), Timestamp::ZERO);
        let settled = Timestamp::from_raw(12345);
        client.on_grant(grant(2, 200, 300, settled));
        assert_eq!(client.visible_bound(), settled);
    }

    #[test]
    fn wait_visible_unblocks_on_grant() {
        let (client, _clock) = client_with_clock(false);
        let target = Timestamp::from_raw(500);
        let c2 = Arc::clone(&client);
        let waiter = std::thread::spawn(move || c2.wait_visible(target, None));
        std::thread::sleep(Duration::from_millis(5));
        client.on_grant(grant(2, 200, 300, Timestamp::from_raw(1000)));
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn read_timestamp_does_not_block_revocation() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        let _ts = client.assign_read_timestamp(None).unwrap();
        assert!(
            client.on_revoke(EpochId(1)),
            "read-only assignment holds nothing open"
        );
    }

    #[test]
    fn shutdown_fails_pending_and_future_begins() {
        let (client, _clock) = client_with_clock(false);
        let c2 = Arc::clone(&client);
        let t = std::thread::spawn(move || c2.begin_txn(None));
        std::thread::sleep(Duration::from_millis(5));
        client.shutdown();
        assert_eq!(t.join().unwrap().unwrap_err(), BeginError::ShuttingDown);
        assert_eq!(
            client.begin_txn(None).unwrap_err(),
            BeginError::ShuttingDown
        );
    }

    #[test]
    fn duplicate_grant_does_not_resurrect_revoked_epoch() {
        let (client, clock) = client_with_clock(false);
        let g1 = grant(1, 0, 100, Timestamp::ZERO);
        client.on_grant(g1);
        clock.set(10);
        assert!(client.on_revoke(EpochId(1)));
        // A duplicated copy of the epoch-1 grant arrives after the revoke.
        client.on_grant(g1);
        assert!(
            client.current_auth().is_none(),
            "released epoch must stay released"
        );
    }

    #[test]
    fn reordered_old_grant_does_not_roll_back_auth() {
        let (client, _clock) = client_with_clock(false);
        client.on_grant(grant(2, 200, 300, Timestamp::from_raw(100)));
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        let auth = client.current_auth().unwrap();
        assert_eq!(auth.epoch(), EpochId(2));
        // The stale grant's settled bound (lower) must not regress visibility.
        assert_eq!(client.visible_bound(), Timestamp::from_raw(100));
    }

    #[test]
    fn stale_grant_still_advances_visibility() {
        let (client, _clock) = client_with_clock(false);
        client.on_grant(grant(2, 200, 300, Timestamp::ZERO));
        // Reordered: an old-epoch grant carrying a *newer* settled bound
        // (possible when the bound piggybacks on retransmissions).
        client.on_grant(grant(1, 0, 100, Timestamp::from_raw(77)));
        assert_eq!(client.current_auth().unwrap().epoch(), EpochId(2));
        assert_eq!(client.visible_bound(), Timestamp::from_raw(77));
    }

    #[test]
    fn revoke_without_grant_is_acked() {
        // The grant for epoch 1 was dropped; the revoke still needs an ack
        // or the EM stalls the whole cluster.
        let (client, _clock) = client_with_clock(false);
        assert!(client.on_revoke(EpochId(1)));
    }

    #[test]
    fn retransmitted_revoke_is_reacked_after_release() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        assert!(
            client.on_revoke(EpochId(1)),
            "first revoke acks (nothing in flight)"
        );
        // The ack was lost; the EM retransmits. We must ack again.
        assert!(client.on_revoke(EpochId(1)));
    }

    #[test]
    fn duplicate_revoke_while_draining_stays_deferred() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(10);
        let ticket = client.begin_txn(None).unwrap();
        assert!(!client.on_revoke(EpochId(1)));
        assert!(
            !client.on_revoke(EpochId(1)),
            "duplicate must not ack early"
        );
        assert_eq!(client.txn_finished(ticket), Some(EpochId(1)));
    }

    #[test]
    fn expired_auth_self_opens_noauth_window() {
        // The revoke never arrives (partition): a no-auth-enabled client
        // keeps issuing timestamps in the §III-C window on its own.
        let (client, clock) = client_with_clock(true);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(150);
        let ticket = client.begin_txn(None).unwrap();
        assert!(!ticket.authorized);
        assert_eq!(ticket.epoch, EpochId(2));
        assert!(
            ticket.ts.micros() > 100 && ticket.ts.micros() <= 200,
            "{}",
            ticket.ts
        );
        // When the revoke finally lands, the drain accounting still works.
        assert!(client.on_revoke(EpochId(1)), "no epoch-1 txns in flight");
        assert_eq!(
            client.txn_finished(ticket),
            None,
            "epoch-2 accounting unaffected"
        );
    }

    #[test]
    fn tickets_are_strictly_increasing_across_epochs() {
        let (client, clock) = client_with_clock(false);
        client.on_grant(grant(1, 0, 100, Timestamp::ZERO));
        clock.set(50);
        let t1 = client.begin_txn(None).unwrap();
        client.txn_finished(t1);
        client.on_revoke(EpochId(1));
        client.on_grant(grant(2, 101, 200, Timestamp::ZERO));
        clock.set(150);
        let t2 = client.begin_txn(None).unwrap();
        assert!(t2.ts > t1.ts);
    }
}
