//! The epoch manager (EM) driver.
//!
//! The EM "controls epoch changes by granting and revoking authorization at
//! all the FEs, and thus determines when the FEs may start executing
//! transactions" (§III-A). The driver is generic over an [`EpochTransport`]
//! so the engine can run it over the cluster bus while tests run it over
//! plain channels.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aloha_common::metrics::{duration_micros, Counter, Gauge, Histogram};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{Clock, EpochId, ServerId, Timestamp};

use crate::auth::{Authorization, Grant};

/// Decides each write epoch's duration just before its grant is issued.
///
/// The EM consults the pacer once per cycle, so consecutive epochs may have
/// different lengths; the rest of the protocol already tolerates this because
/// every [`Grant`] carries its own `epoch_duration_micros` and the clients'
/// no-authorization windows are derived per-authorization (§III-C). The
/// closed-loop controller in `aloha-control` implements this trait; the
/// built-in [`FixedPacer`] reproduces the fixed-duration behavior exactly.
pub trait Pacer: Send + 'static {
    /// Duration of the next epoch. Called before each grant.
    fn next_duration(&mut self) -> Duration;

    /// Feedback after one completed cycle: how long the epoch switch
    /// (revoke sent → all drain acks in) took. Default: ignored.
    fn observe_switch(&mut self, switch: Duration) {
        let _ = switch;
    }
}

/// A pacer that returns the same duration every epoch — today's fixed
/// `epoch_duration` behavior, and the `Fixed` ablation arm.
#[derive(Debug, Clone, Copy)]
pub struct FixedPacer(pub Duration);

impl Pacer for FixedPacer {
    fn next_duration(&mut self) -> Duration {
        self.0
    }
}

/// Acknowledgement that a server has drained an epoch after revocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevokedAck {
    /// The acknowledging server.
    pub server: ServerId,
    /// The epoch that finished draining there.
    pub epoch: EpochId,
    /// The server's local compute frontier: every functor it hosts with a
    /// version strictly below this has been computed. The EM folds the
    /// cluster-wide minimum into the next [`Grant`]'s `frontier`, which is
    /// what licenses compaction to drop history.
    pub frontier: Timestamp,
}

/// How the EM talks to the front-ends.
pub trait EpochTransport: Send + 'static {
    /// Delivers a grant to one server.
    fn send_grant(&self, to: ServerId, grant: Grant);
    /// Delivers a revocation to one server.
    fn send_revoke(&self, to: ServerId, epoch: EpochId);
    /// Receives the next ack, waiting at most `timeout`.
    fn recv_ack(&self, timeout: Duration) -> Option<RevokedAck>;
}

/// EM configuration.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Length of each unified (write) epoch. The paper's default is 25 ms.
    pub epoch_duration: Duration,
    /// The servers to authorize.
    pub servers: Vec<ServerId>,
    /// Granularity at which the EM polls its clock and the ack stream.
    pub poll_interval: Duration,
    /// How long to wait for outstanding drain acks before retransmitting the
    /// revoke to the servers that have not answered. On a reliable network
    /// the retransmission never fires; on a lossy one it recovers from a
    /// dropped revoke, a dropped ack, or a server that missed its grant.
    pub revoke_resend_interval: Duration,
}

impl EpochConfig {
    /// A configuration with the paper's 25 ms epochs.
    pub fn new(servers: Vec<ServerId>) -> EpochConfig {
        EpochConfig {
            epoch_duration: Duration::from_millis(25),
            servers,
            poll_interval: Duration::from_micros(200),
            revoke_resend_interval: Duration::from_millis(5),
        }
    }

    /// Overrides the epoch duration.
    pub fn with_duration(mut self, duration: Duration) -> EpochConfig {
        self.epoch_duration = duration;
        self
    }

    /// Overrides the revoke retransmission interval.
    pub fn with_revoke_resend(mut self, interval: Duration) -> EpochConfig {
        self.revoke_resend_interval = interval;
        self
    }
}

/// Aggregate EM statistics.
#[derive(Debug, Default)]
pub struct EmStats {
    epochs_completed: Counter,
    switch_micros: Histogram,
    epoch_duration_micros: Gauge,
    revoke_resends: Counter,
}

impl EmStats {
    /// Number of fully completed (granted, revoked, drained) epochs.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed.get()
    }

    /// Revoke retransmissions sent to servers that had not answered within
    /// [`EpochConfig::revoke_resend_interval`]. Nonzero under message loss —
    /// or while a killed server's slot is down: the retransmissions are what
    /// bridge the gap until its fresh incarnation (a promoted standby or a
    /// WAL restart) answers and lets the epoch settle.
    pub fn revoke_resends(&self) -> u64 {
        self.revoke_resends.get()
    }

    /// Distribution of epoch-switch durations (revoke sent → all acks in),
    /// during which no transaction can start under authorization.
    pub fn switch_micros(&self) -> &Histogram {
        &self.switch_micros
    }

    /// Duration of the most recently granted epoch, in microseconds.
    pub fn epoch_duration_micros(&self) -> u64 {
        self.epoch_duration_micros.get()
    }

    /// Exports these statistics as one node of the unified stats tree.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut node = StatsSnapshot::new("epoch_manager");
        node.set_counter("epochs_completed", self.epochs_completed());
        node.set_counter("revoke_resends", self.revoke_resends());
        node.set_gauge("epoch_duration_micros", self.epoch_duration_micros());
        node.set_stage(
            "epoch_switch",
            StageStats::from(&self.switch_micros.snapshot()),
        );
        node
    }
}

/// The epoch manager background thread.
///
/// Runs the grant → wait → revoke → drain cycle until shut down. Dropping the
/// manager shuts it down and joins the thread.
pub struct EpochManager {
    shutdown: Arc<AtomicBool>,
    stats: Arc<EmStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("epochs_completed", &self.stats.epochs_completed())
            .finish()
    }
}

impl EpochManager {
    /// Spawns the EM thread with the fixed `config.epoch_duration` — every
    /// epoch the same length, exactly the pre-control-plane behavior.
    ///
    /// # Panics
    ///
    /// Panics if `config.servers` is empty.
    pub fn spawn(
        config: EpochConfig,
        clock: Arc<dyn Clock>,
        transport: impl EpochTransport,
    ) -> EpochManager {
        let pacer = FixedPacer(config.epoch_duration);
        EpochManager::spawn_with_pacer(config, clock, transport, Box::new(pacer))
    }

    /// Spawns the EM thread with an explicit [`Pacer`] deciding each epoch's
    /// duration; `config.epoch_duration` is ignored in favor of the pacer.
    ///
    /// # Panics
    ///
    /// Panics if `config.servers` is empty.
    pub fn spawn_with_pacer(
        config: EpochConfig,
        clock: Arc<dyn Clock>,
        transport: impl EpochTransport,
        pacer: Box<dyn Pacer>,
    ) -> EpochManager {
        assert!(
            !config.servers.is_empty(),
            "epoch manager needs at least one server"
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(EmStats::default());
        let thread_shutdown = Arc::clone(&shutdown);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("epoch-manager".into())
            .spawn(move || {
                run(
                    config,
                    clock,
                    transport,
                    pacer,
                    thread_shutdown,
                    thread_stats,
                )
            })
            .expect("spawn epoch manager thread");
        EpochManager {
            shutdown,
            stats,
            handle: Some(handle),
        }
    }

    /// EM statistics.
    pub fn stats(&self) -> &EmStats {
        &self.stats
    }

    /// Stops the EM and joins its thread.
    pub fn close(mut self) {
        self.begin_shutdown();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for EpochManager {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run(
    config: EpochConfig,
    clock: Arc<dyn Clock>,
    transport: impl EpochTransport,
    mut pacer: Box<dyn Pacer>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<EmStats>,
) {
    let mut prev_finish_micros = clock.now_micros();
    let mut prev_finish_ts = Timestamp::ZERO;
    let mut epoch = EpochId(1);
    // Latest compute frontier each server reported in a drain ack. A server
    // that has never reported contributes ZERO, so the distributed minimum
    // stays conservative until every server has completed an ack round.
    let mut frontiers: HashMap<ServerId, Timestamp> = HashMap::new();

    while !shutdown.load(Ordering::SeqCst) {
        // Each epoch's duration is decided just before its grant; timestamps
        // stay unique across length changes because epochs still never
        // overlap on the shared clock (start > previous end).
        let epoch_micros = duration_micros(pacer.next_duration()).max(1);
        stats.epoch_duration_micros.set(epoch_micros);
        let start = clock.now_micros().max(prev_finish_micros + 1);
        let auth = Authorization::new(epoch, start, start + epoch_micros);
        let grant = Grant {
            auth,
            settled: prev_finish_ts,
            epoch_duration_micros: epoch_micros,
            frontier: config
                .servers
                .iter()
                .map(|s| frontiers.get(s).copied().unwrap_or(Timestamp::ZERO))
                .min()
                .unwrap_or(Timestamp::ZERO),
        };
        for &server in &config.servers {
            transport.send_grant(server, grant);
        }

        // Let the epoch run out on the wall clock.
        while clock.now_micros() < auth.end_micros() {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(config.poll_interval);
        }

        // Revoke and wait for every server to drain its in-flight
        // transactions; this is the epoch-switch window.
        let switch_started = std::time::Instant::now();
        for &server in &config.servers {
            transport.send_revoke(server, epoch);
        }
        let mut pending: HashSet<ServerId> = config.servers.iter().copied().collect();
        let mut last_resend = std::time::Instant::now();
        while !pending.is_empty() {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(ack) = transport.recv_ack(config.poll_interval) {
                if ack.epoch == epoch {
                    pending.remove(&ack.server);
                }
                // Local frontiers are monotone, so even a stale (re-sent or
                // prior-epoch) ack carries a bound that is safe to absorb.
                let slot = frontiers.entry(ack.server).or_insert(Timestamp::ZERO);
                *slot = (*slot).max(ack.frontier);
            }
            if last_resend.elapsed() >= config.revoke_resend_interval {
                for &server in &pending {
                    transport.send_revoke(server, epoch);
                    stats.revoke_resends.incr();
                }
                last_resend = std::time::Instant::now();
            }
        }
        let switch = switch_started.elapsed();
        stats.switch_micros.record(duration_micros(switch));
        stats.epochs_completed.incr();
        pacer.observe_switch(switch);

        prev_finish_micros = auth.end_micros();
        prev_finish_ts = auth.finish_ts();
        epoch = epoch.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::clock::{ClockBase, SystemClock};
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use parking_lot::Mutex;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Event {
        Grant(ServerId, Grant),
        Revoke(ServerId, EpochId),
    }

    struct ChannelTransport {
        events: Sender<Event>,
        acks: Mutex<Receiver<RevokedAck>>,
    }

    impl EpochTransport for ChannelTransport {
        fn send_grant(&self, to: ServerId, grant: Grant) {
            let _ = self.events.send(Event::Grant(to, grant));
        }
        fn send_revoke(&self, to: ServerId, epoch: EpochId) {
            let _ = self.events.send(Event::Revoke(to, epoch));
        }
        fn recv_ack(&self, timeout: Duration) -> Option<RevokedAck> {
            self.acks.lock().recv_timeout(timeout).ok()
        }
    }

    fn harness() -> (ChannelTransport, Receiver<Event>, Sender<RevokedAck>) {
        let (etx, erx) = unbounded();
        let (atx, arx) = unbounded();
        (
            ChannelTransport {
                events: etx,
                acks: Mutex::new(arx),
            },
            erx,
            atx,
        )
    }

    #[test]
    fn grants_then_revokes_then_next_epoch() {
        let (transport, events, acks) = harness();
        let servers = vec![ServerId(0), ServerId(1)];
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new(ClockBase::new()));
        let config = EpochConfig::new(servers)
            .with_duration(Duration::from_millis(3))
            .with_revoke_resend(Duration::from_secs(60));
        let em = EpochManager::spawn(config, clock, transport);

        // Epoch 1: grants to both servers.
        let mut grants = Vec::new();
        for _ in 0..2 {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Grant(s, g) => grants.push((s, g)),
                other => panic!("expected grant, got {other:?}"),
            }
        }
        assert_eq!(grants[0].1.auth.epoch(), EpochId(1));
        assert_eq!(grants[0].1.settled, Timestamp::ZERO);

        // Revokes follow once the epoch expires.
        for _ in 0..2 {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Revoke(s, e) => {
                    assert_eq!(e, EpochId(1));
                    acks.send(RevokedAck {
                        server: s,
                        epoch: e,
                        frontier: Timestamp::ZERO,
                    })
                    .unwrap();
                }
                other => panic!("expected revoke, got {other:?}"),
            }
        }

        // Epoch 2 grants arrive, with the settled bound at epoch 1's finish.
        let mut second = Vec::new();
        for _ in 0..2 {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Grant(s, g) => second.push((s, g)),
                other => panic!("expected grant, got {other:?}"),
            }
        }
        let e1_auth = grants[0].1.auth;
        assert_eq!(second[0].1.auth.epoch(), EpochId(2));
        assert_eq!(second[0].1.settled, e1_auth.finish_ts());
        assert!(second[0].1.auth.start_micros() > e1_auth.end_micros());
        em.close();
    }

    #[test]
    fn missing_ack_stalls_next_epoch() {
        let (transport, events, acks) = harness();
        let servers = vec![ServerId(0), ServerId(1)];
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new(ClockBase::new()));
        let config = EpochConfig::new(servers)
            .with_duration(Duration::from_millis(2))
            .with_revoke_resend(Duration::from_secs(60));
        let em = EpochManager::spawn(config, clock, transport);

        for _ in 0..2 {
            assert!(matches!(
                events.recv_timeout(Duration::from_secs(1)).unwrap(),
                Event::Grant(..)
            ));
        }
        // Only server 0 acks; server 1 is a straggler.
        for _ in 0..2 {
            if let Event::Revoke(s, e) = events.recv_timeout(Duration::from_secs(1)).unwrap() {
                if s == ServerId(0) {
                    acks.send(RevokedAck {
                        server: s,
                        epoch: e,
                        frontier: Timestamp::ZERO,
                    })
                    .unwrap();
                }
            }
        }
        // No grant for epoch 2 while the straggler holds the epoch open.
        assert!(events.recv_timeout(Duration::from_millis(30)).is_err());
        // Straggler finally acks; epoch 2 proceeds.
        acks.send(RevokedAck {
            server: ServerId(1),
            epoch: EpochId(1),
            frontier: Timestamp::ZERO,
        })
        .unwrap();
        match events.recv_timeout(Duration::from_secs(1)).unwrap() {
            Event::Grant(_, g) => assert_eq!(g.auth.epoch(), EpochId(2)),
            other => panic!("expected epoch-2 grant, got {other:?}"),
        }
        em.close();
    }

    #[test]
    fn lost_revoke_is_retransmitted() {
        let (transport, events, acks) = harness();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new(ClockBase::new()));
        let config = EpochConfig::new(vec![ServerId(0)])
            .with_duration(Duration::from_millis(2))
            .with_revoke_resend(Duration::from_millis(5));
        let em = EpochManager::spawn(config, clock, transport);
        assert!(matches!(
            events.recv_timeout(Duration::from_secs(1)).unwrap(),
            Event::Grant(..)
        ));
        // Pretend the first revoke was lost: don't ack it. The EM must try
        // again rather than stall forever.
        let mut revokes = 0;
        while revokes < 2 {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Revoke(_, e) => {
                    assert_eq!(e, EpochId(1));
                    revokes += 1;
                }
                other => panic!("expected retransmitted revoke, got {other:?}"),
            }
        }
        // Acking the retransmission unblocks epoch 2.
        acks.send(RevokedAck {
            server: ServerId(0),
            epoch: EpochId(1),
            frontier: Timestamp::ZERO,
        })
        .unwrap();
        loop {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Grant(_, g) => {
                    assert_eq!(g.auth.epoch(), EpochId(2));
                    break;
                }
                Event::Revoke(..) => continue, // late retransmissions
            }
        }
        em.close();
    }

    #[test]
    fn epochs_do_not_overlap() {
        let (transport, events, acks) = harness();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new(ClockBase::new()));
        let config = EpochConfig::new(vec![ServerId(0)])
            .with_duration(Duration::from_millis(2))
            .with_revoke_resend(Duration::from_secs(60));
        let em = EpochManager::spawn(config, clock, transport);
        let mut last_end = 0u64;
        let mut completed = 0;
        while completed < 3 {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Grant(_, g) => {
                    assert!(g.auth.start_micros() > last_end, "epochs must not overlap");
                    last_end = g.auth.end_micros();
                }
                Event::Revoke(s, e) => {
                    acks.send(RevokedAck {
                        server: s,
                        epoch: e,
                        frontier: Timestamp::ZERO,
                    })
                    .unwrap();
                    completed += 1;
                }
            }
        }
        em.close();
    }

    #[test]
    fn pacer_varies_per_epoch_durations_without_overlap() {
        // Alternates short and long epochs; every grant must carry its own
        // duration, windows must not overlap, and the stats gauge must track
        // the most recent choice.
        struct Alternating(u32);
        impl Pacer for Alternating {
            fn next_duration(&mut self) -> Duration {
                self.0 += 1;
                if self.0 % 2 == 1 {
                    Duration::from_millis(1)
                } else {
                    Duration::from_millis(4)
                }
            }
        }
        let (transport, events, acks) = harness();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new(ClockBase::new()));
        let config = EpochConfig::new(vec![ServerId(0)])
            .with_duration(Duration::from_secs(60)) // ignored by the pacer
            .with_revoke_resend(Duration::from_secs(60));
        let em = EpochManager::spawn_with_pacer(config, clock, transport, Box::new(Alternating(0)));
        let mut grants = Vec::new();
        let mut last_end = 0u64;
        while grants.len() < 4 {
            match events.recv_timeout(Duration::from_secs(1)).unwrap() {
                Event::Grant(_, g) => {
                    assert!(g.auth.start_micros() > last_end, "epochs must not overlap");
                    last_end = g.auth.end_micros();
                    assert_eq!(
                        g.epoch_duration_micros,
                        g.auth.end_micros() - g.auth.start_micros(),
                        "grant duration must describe its own authorization"
                    );
                    grants.push(g);
                }
                Event::Revoke(s, e) => {
                    acks.send(RevokedAck {
                        server: s,
                        epoch: e,
                        frontier: Timestamp::ZERO,
                    })
                    .unwrap();
                }
            }
        }
        assert_eq!(grants[0].epoch_duration_micros, 1_000);
        assert_eq!(grants[1].epoch_duration_micros, 4_000);
        assert_eq!(grants[2].epoch_duration_micros, 1_000);
        assert_eq!(grants[3].epoch_duration_micros, 4_000);
        assert_eq!(em.stats().epoch_duration_micros(), 4_000);
        em.close();
    }

    #[test]
    fn fixed_pacer_reproduces_configured_duration() {
        let mut pacer = FixedPacer(Duration::from_millis(25));
        for _ in 0..8 {
            assert_eq!(pacer.next_duration(), Duration::from_millis(25));
        }
    }

    #[test]
    fn stats_count_completed_epochs() {
        let (transport, events, acks) = harness();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new(ClockBase::new()));
        let config = EpochConfig::new(vec![ServerId(0)])
            .with_duration(Duration::from_millis(1))
            .with_revoke_resend(Duration::from_secs(60));
        let em = EpochManager::spawn(config, clock, transport);
        let mut completed = 0;
        while completed < 5 {
            if let Ok(Event::Revoke(s, e)) = events.recv_timeout(Duration::from_secs(1)) {
                acks.send(RevokedAck {
                    server: s,
                    epoch: e,
                    frontier: Timestamp::ZERO,
                })
                .unwrap();
                completed += 1;
            }
        }
        // Allow the EM to record the last ack.
        std::thread::sleep(Duration::from_millis(5));
        assert!(em.stats().epochs_completed() >= 4);
        em.close();
    }
}
