//! Authorizations and grants: the epoch lease protocol messages.

use aloha_common::{EpochId, ServerId, Timestamp};

/// An epoch authorization: permission to start transactions whose timestamps
/// fall within a validity period (§II).
///
/// ALOHA-DB uses unified epochs (§III-B), so every authorization is a *write*
/// authorization; historical reads never need one.
///
/// # Examples
///
/// ```
/// use aloha_common::{EpochId, ServerId, Timestamp};
/// use aloha_epoch::Authorization;
///
/// let auth = Authorization::new(EpochId(3), 1_000, 26_000);
/// let inside = Timestamp::from_parts(10_000, ServerId(0), 0);
/// let outside = Timestamp::from_parts(30_000, ServerId(0), 0);
/// assert!(auth.contains(inside));
/// assert!(!auth.contains(outside));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Authorization {
    epoch: EpochId,
    start_micros: u64,
    end_micros: u64,
}

impl Authorization {
    /// Creates an authorization for `epoch` valid over
    /// `[start_micros, end_micros]` (inclusive, in cluster microseconds).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    pub fn new(epoch: EpochId, start_micros: u64, end_micros: u64) -> Authorization {
        assert!(start_micros <= end_micros, "empty authorization window");
        Authorization {
            epoch,
            start_micros,
            end_micros,
        }
    }

    /// The epoch this authorization belongs to.
    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// First microsecond of the validity period.
    pub fn start_micros(&self) -> u64 {
        self.start_micros
    }

    /// Last microsecond of the validity period (inclusive).
    pub fn end_micros(&self) -> u64 {
        self.end_micros
    }

    /// The smallest timestamp belonging to this epoch.
    pub fn start_ts(&self) -> Timestamp {
        Timestamp::floor_of_micros(self.start_micros)
    }

    /// The largest timestamp belonging to this epoch (the epoch's *finish
    /// timestamp*): every transaction of the epoch has a timestamp at or
    /// below it.
    pub fn finish_ts(&self) -> Timestamp {
        Timestamp::from_parts(self.end_micros, ServerId::MAX, Timestamp::MAX_SEQ)
    }

    /// Whether `ts` lies within the validity period.
    pub fn contains(&self, ts: Timestamp) -> bool {
        (self.start_micros..=self.end_micros).contains(&ts.micros())
    }

    /// Whether the local clock reading `now_micros` is within the validity
    /// period (a server "can only start a transaction when its local clock is
    /// within the validity period", §II).
    pub fn clock_within(&self, now_micros: u64) -> bool {
        (self.start_micros..=self.end_micros).contains(&now_micros)
    }
}

/// The grant message the EM sends when a new epoch begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The new epoch's authorization.
    pub auth: Authorization,
    /// Everything at or below this timestamp is settled: all transactions of
    /// earlier epochs have completed their write-only phase, so historical
    /// reads up to this bound observe a stable prefix. This is the previous
    /// epoch's finish timestamp ([`Timestamp::ZERO`] for the first epoch).
    pub settled: Timestamp,
    /// Duration of the epoch in microseconds; also bounds the timestamps of
    /// unauthorized straggler-window transactions (§III-C: a no-auth
    /// timestamp may not exceed the previous finish plus the next epoch's
    /// duration).
    pub epoch_duration_micros: u64,
    /// Cluster-wide compute frontier: every functor with a version strictly
    /// below this bound has been computed on every server, as of the last
    /// completed drain round. No future read — local or remote — will target
    /// a bound below it, so storage may fold history beneath it
    /// (watermark-driven compaction). `ZERO` until the first round reports.
    pub frontier: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_ts_dominates_every_member_timestamp() {
        let auth = Authorization::new(EpochId(1), 100, 200);
        let member = Timestamp::from_parts(200, ServerId::MAX, Timestamp::MAX_SEQ);
        assert!(auth.contains(member));
        assert!(member <= auth.finish_ts());
        let next_epoch = Timestamp::from_parts(201, ServerId(0), 0);
        assert!(next_epoch > auth.finish_ts());
    }

    #[test]
    fn start_ts_precedes_every_member_timestamp() {
        let auth = Authorization::new(EpochId(1), 100, 200);
        assert!(auth.start_ts() <= Timestamp::from_parts(100, ServerId(0), 0));
    }

    #[test]
    fn contains_is_inclusive_on_both_ends() {
        let auth = Authorization::new(EpochId(1), 100, 200);
        assert!(auth.contains(Timestamp::from_parts(100, ServerId(0), 0)));
        assert!(auth.contains(Timestamp::from_parts(200, ServerId(3), 5)));
        assert!(!auth.contains(Timestamp::from_parts(99, ServerId(0), 0)));
        assert!(!auth.contains(Timestamp::from_parts(201, ServerId(0), 0)));
    }

    #[test]
    fn clock_gate_matches_window() {
        let auth = Authorization::new(EpochId(1), 100, 200);
        assert!(!auth.clock_within(99));
        assert!(auth.clock_within(100));
        assert!(auth.clock_within(200));
        assert!(!auth.clock_within(201));
    }

    #[test]
    #[should_panic(expected = "empty authorization")]
    fn inverted_window_panics() {
        let _ = Authorization::new(EpochId(1), 10, 5);
    }
}
