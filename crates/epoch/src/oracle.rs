//! Decentralized timestamp generation (§II).
//!
//! Each front-end owns a [`TimestampOracle`]. Timestamps embed the server id,
//! so oracles on different servers can never collide; one oracle issues
//! strictly increasing timestamps, so a single server's transactions are
//! totally ordered. No cross-server coordination is ever required — this is
//! the "decentralized timestamp assignment method" that lets ECC resolve
//! transaction ordering across servers without a sequencer.

use aloha_common::{ServerId, Timestamp};

/// Issues globally unique, strictly increasing timestamps for one server.
///
/// # Examples
///
/// ```
/// use aloha_common::ServerId;
/// use aloha_epoch::TimestampOracle;
///
/// let mut oracle = TimestampOracle::new(ServerId(1));
/// let a = oracle.issue(100, 100, 200).unwrap();
/// let b = oracle.issue(100, 100, 200).unwrap();
/// assert!(b > a);
/// ```
#[derive(Debug)]
pub struct TimestampOracle {
    server: ServerId,
    last: Timestamp,
}

impl TimestampOracle {
    /// Creates an oracle for `server`.
    pub fn new(server: ServerId) -> TimestampOracle {
        TimestampOracle {
            server,
            last: Timestamp::ZERO,
        }
    }

    /// The server this oracle stamps for.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The most recently issued timestamp ([`Timestamp::ZERO`] if none).
    pub fn last_issued(&self) -> Timestamp {
        self.last
    }

    /// Issues the next timestamp for a transaction, given the local clock
    /// reading `now_micros` and the validity window
    /// `[window_start_micros, window_end_micros]` of the current
    /// authorization (or of the §III-C no-authorization straggler window).
    ///
    /// The issued timestamp:
    /// * has a microsecond component within the window,
    /// * tracks the local clock when possible (so cross-server order
    ///   approximates real time),
    /// * is strictly greater than every timestamp issued before.
    ///
    /// Returns `None` when the window is exhausted — the clock has passed
    /// `window_end_micros` or the sequence numbers within the last allowed
    /// microsecond are used up. The caller then waits for the next epoch.
    pub fn issue(
        &mut self,
        now_micros: u64,
        window_start_micros: u64,
        window_end_micros: u64,
    ) -> Option<Timestamp> {
        debug_assert!(window_start_micros <= window_end_micros);
        if now_micros > window_end_micros {
            return None;
        }
        let target_micros = now_micros.max(window_start_micros);
        let candidate = Timestamp::from_parts(target_micros, self.server, 0);
        let ts = if candidate > self.last {
            candidate
        } else {
            // Same or earlier microsecond as the previous issue: bump the
            // sequence, or spill into the next microsecond.
            let last_micros = self.last.micros();
            if self.last.seq() < Timestamp::MAX_SEQ {
                Timestamp::from_parts(last_micros, self.server, self.last.seq() + 1)
            } else if last_micros < window_end_micros {
                Timestamp::from_parts(last_micros + 1, self.server, 0)
            } else {
                return None;
            }
        };
        if ts.micros() > window_end_micros {
            return None;
        }
        self.last = ts;
        Some(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_are_strictly_increasing() {
        let mut o = TimestampOracle::new(ServerId(0));
        let mut prev = Timestamp::ZERO;
        for i in 0..1000 {
            let ts = o
                .issue(100 + i / 100, 100, 200)
                .expect("window not exhausted");
            assert!(ts > prev, "issue {i} not increasing");
            prev = ts;
        }
    }

    #[test]
    fn clock_before_window_clamps_to_window_start() {
        let mut o = TimestampOracle::new(ServerId(0));
        let ts = o.issue(50, 100, 200).unwrap();
        assert_eq!(ts.micros(), 100);
    }

    #[test]
    fn clock_after_window_yields_none() {
        let mut o = TimestampOracle::new(ServerId(0));
        assert!(o.issue(201, 100, 200).is_none());
    }

    #[test]
    fn seq_exhaustion_spills_to_next_microsecond() {
        let mut o = TimestampOracle::new(ServerId(0));
        for _ in 0..=Timestamp::MAX_SEQ {
            o.issue(100, 100, 200).unwrap();
        }
        let spilled = o.issue(100, 100, 200).unwrap();
        assert_eq!(spilled.micros(), 101);
        assert_eq!(spilled.seq(), 0);
    }

    #[test]
    fn window_fully_exhausted_yields_none() {
        let mut o = TimestampOracle::new(ServerId(0));
        // Burn through every slot of a one-microsecond window.
        for _ in 0..=Timestamp::MAX_SEQ {
            assert!(o.issue(100, 100, 100).is_some());
        }
        assert!(o.issue(100, 100, 100).is_none());
    }

    #[test]
    fn different_servers_never_collide() {
        let mut a = TimestampOracle::new(ServerId(1));
        let mut b = TimestampOracle::new(ServerId(2));
        let mut seen = std::collections::HashSet::new();
        for i in 0..500u64 {
            assert!(seen.insert(a.issue(i, 0, 1000).unwrap()));
            assert!(seen.insert(b.issue(i, 0, 1000).unwrap()));
        }
    }

    #[test]
    fn timestamps_stay_within_window() {
        let mut o = TimestampOracle::new(ServerId(0));
        for now in [0u64, 120, 150, 500] {
            if let Some(ts) = o.issue(now, 100, 200) {
                assert!((100..=200).contains(&ts.micros()), "{ts}");
            }
        }
    }

    #[test]
    fn next_window_continues_monotone_across_epochs() {
        let mut o = TimestampOracle::new(ServerId(0));
        let last_old = o.issue(200, 100, 200).unwrap();
        let first_new = o.issue(250, 250, 350).unwrap();
        assert!(first_new > last_old);
    }
}
