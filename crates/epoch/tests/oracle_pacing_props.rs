//! Property tests for the timestamp oracle under *adaptive epoch pacing*:
//! with the control plane steering per-epoch durations, consecutive epochs
//! no longer share a fixed width, so the oracle must keep its guarantees —
//! global uniqueness, strict monotonicity, windows honored — across any
//! sequence of epoch lengths the pacer can produce.

use std::collections::HashSet;

use aloha_common::{ServerId, Timestamp};
use aloha_epoch::TimestampOracle;
use proptest::prelude::*;

/// One epoch as the oracle sees it: an authorization window width, the gap
/// before it opens (switch time), and how many issues the FE attempts.
#[derive(Debug, Clone)]
struct Epoch {
    width_micros: u64,
    gap_micros: u64,
    issues: usize,
}

fn epoch_strategy() -> impl Strategy<Value = Epoch> {
    // Widths span the whole range an AIMD pacer clamped to [initial/5,
    // initial*4] can emit around a 25 ms initial (5 ms..100 ms), plus far
    // smaller degenerate widths to probe exhaustion.
    (1u64..100_000, 0u64..5_000, 0usize..200).prop_map(|(width_micros, gap_micros, issues)| Epoch {
        width_micros,
        gap_micros,
        issues,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Per-epoch durations vary arbitrarily (as under the adaptive pacer);
    /// every issued timestamp must stay unique, strictly increasing, and
    /// inside its epoch's window.
    #[test]
    fn varying_epoch_durations_preserve_uniqueness_and_monotonicity(
        epochs in proptest::collection::vec(epoch_strategy(), 1..40),
    ) {
        let mut oracle = TimestampOracle::new(ServerId(3));
        let mut seen = HashSet::new();
        let mut prev = Timestamp::ZERO;
        let mut window_start = 1u64;
        for epoch in epochs {
            let window_end = window_start + epoch.width_micros;
            let mut now = window_start;
            for i in 0..epoch.issues {
                // The FE clock crawls through the window as it issues.
                now = (now + (i as u64 % 3)).min(window_end);
                let Some(ts) = oracle.issue(now, window_start, window_end) else {
                    // Window exhausted: legal, and everything already issued
                    // has been checked. Move on to the next epoch.
                    break;
                };
                prop_assert!(ts > prev, "{ts} must exceed previous {prev}");
                prop_assert!(
                    (window_start..=window_end).contains(&ts.micros()),
                    "{ts} outside window [{window_start}, {window_end}]"
                );
                prop_assert!(seen.insert(ts), "duplicate timestamp {ts}");
                prev = ts;
            }
            // Next epoch opens after a (possibly zero) switch gap; windows
            // never overlap, exactly as consecutive EM authorizations.
            window_start = window_end + 1 + epoch.gap_micros;
        }
    }

    /// Two oracles on different servers fed the *same* variable-width
    /// windows never collide: uniqueness is carried by the embedded server
    /// id, independent of pacing.
    #[test]
    fn pacing_never_breaks_cross_server_uniqueness(
        epochs in proptest::collection::vec(epoch_strategy(), 1..20),
    ) {
        let mut a = TimestampOracle::new(ServerId(1));
        let mut b = TimestampOracle::new(ServerId(2));
        let mut seen = HashSet::new();
        let mut window_start = 1u64;
        for epoch in epochs {
            let window_end = window_start + epoch.width_micros;
            for _ in 0..epoch.issues.min(64) {
                for oracle in [&mut a, &mut b] {
                    if let Some(ts) = oracle.issue(window_start, window_start, window_end) {
                        prop_assert!(seen.insert(ts), "duplicate timestamp {ts}");
                    }
                }
            }
            window_start = window_end + 1 + epoch.gap_micros;
        }
    }

    /// A shrinking epoch directly after a wide one (the pacer's sharpest
    /// possible transition: max → min) still yields monotone timestamps
    /// even when the previous epoch was exhausted to its last microsecond.
    #[test]
    fn sharp_shrink_after_exhausted_wide_epoch_stays_monotone(
        wide in 10_000u64..100_000,
        narrow in 1u64..1_000,
    ) {
        let mut oracle = TimestampOracle::new(ServerId(0));
        // Exhaust the wide epoch at its final microsecond.
        let wide_end = 1 + wide;
        let last_wide = oracle
            .issue(wide_end, 1, wide_end)
            .expect("fresh window issues");
        // The narrow epoch opens right after the switch.
        let narrow_start = wide_end + 1;
        let narrow_end = narrow_start + narrow;
        let first_narrow = oracle
            .issue(narrow_start, narrow_start, narrow_end)
            .expect("fresh window issues");
        prop_assert!(first_narrow > last_wide);
        prop_assert!(first_narrow.micros() >= narrow_start);
    }
}
