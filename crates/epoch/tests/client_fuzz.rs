//! Randomized state-machine tests for the front-end epoch client: whatever
//! order grants, revokes, transaction starts and finishes arrive in, the
//! safety invariants of ECC must hold.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::{Clock, EpochId, ManualClock, ServerId, Timestamp};
use aloha_epoch::{Authorization, EpochClient, Grant, TxnTicket};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Advance the manual clock by this many microseconds.
    Tick(u16),
    /// Try to start a transaction (non-blocking deadline).
    Begin,
    /// Finish the oldest in-flight transaction.
    Finish,
    /// Grant the next epoch.
    Grant,
    /// Revoke the current epoch.
    Revoke,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u16..2_000).prop_map(Op::Tick),
        Just(Op::Begin),
        Just(Op::Finish),
        Just(Op::Grant),
        Just(Op::Revoke),
    ]
}

#[derive(Default)]
struct Model {
    epoch: u64,
    granted: Option<Authorization>,
    last_finish_micros: u64,
    acks: Vec<EpochId>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn client_invariants_hold_under_random_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        duration in 1_000u64..20_000,
    ) {
        let clock = ManualClock::new(0);
        let client = Arc::new(EpochClient::new(
            ServerId(1),
            Arc::new(clock.clone()),
            true,
        ));
        let mut model = Model::default();
        let mut in_flight: Vec<TxnTicket> = Vec::new();
        let mut last_ts = Timestamp::ZERO;

        for op in ops {
            match op {
                Op::Tick(d) => clock.advance(d as u64),
                Op::Grant => {
                    // EM grants only after the previous epoch fully acked;
                    // model that precondition.
                    if model.granted.is_none() {
                        model.epoch += 1;
                        let start = clock.now_micros().max(model.last_finish_micros + 1);
                        let auth = Authorization::new(EpochId(model.epoch), start, start + duration);
                        model.granted = Some(auth);
                        client.on_grant(Grant {
                            auth,
                            settled: if model.epoch == 1 {
                                Timestamp::ZERO
                            } else {
                                Timestamp::from_parts(
                                    model.last_finish_micros,
                                    ServerId::MAX,
                                    Timestamp::MAX_SEQ,
                                )
                            },
                            epoch_duration_micros: duration,
                            frontier: Timestamp::ZERO,
                        });
                    }
                }
                Op::Revoke => {
                    if let Some(auth) = model.granted.take() {
                        model.last_finish_micros = auth.end_micros();
                        if client.on_revoke(auth.epoch()) {
                            model.acks.push(auth.epoch());
                        }
                    }
                }
                Op::Begin => {
                    let deadline = Some(Instant::now() + Duration::from_millis(2));
                    if let Ok(ticket) = client.begin_txn(deadline) {
                        // Invariant 1: strictly increasing timestamps.
                        prop_assert!(ticket.ts > last_ts, "timestamps must increase");
                        last_ts = ticket.ts;
                        // Invariant 2: authorized tickets lie inside the
                        // authorization window; unauthorized ones inside the
                        // §III-C bound.
                        if ticket.authorized {
                            let auth = model.granted.expect("authorized ticket without grant");
                            prop_assert!(auth.contains(ticket.ts));
                            prop_assert_eq!(ticket.epoch, auth.epoch());
                        } else {
                            // The client self-opens the §III-C window once
                            // the clock passes the authorization's end, even
                            // before a revoke arrives (partition survival);
                            // the bound is then relative to the epoch that
                            // just expired.
                            if let Some(auth) = model.granted {
                                if clock.now_micros() > auth.end_micros() {
                                    model.last_finish_micros = auth.end_micros();
                                    model.granted = None;
                                }
                            }
                            prop_assert!(ticket.ts.micros() > model.last_finish_micros);
                            prop_assert!(
                                ticket.ts.micros() <= model.last_finish_micros + duration,
                                "no-auth ts {} beyond bound {}",
                                ticket.ts.micros(),
                                model.last_finish_micros + duration
                            );
                            prop_assert_eq!(ticket.epoch, EpochId(model.epoch + 1));
                        }
                        in_flight.push(ticket);
                    }
                }
                Op::Finish => {
                    if let Some(ticket) = in_flight.pop() {
                        if let Some(acked) = client.txn_finished(ticket) {
                            model.acks.push(acked);
                        }
                    }
                }
            }
        }
        // Invariant 3: each epoch acked at most once and only revoked epochs
        // are acked.
        let mut acks = model.acks.clone();
        acks.sort();
        let unique = {
            let mut a = acks.clone();
            a.dedup();
            a
        };
        prop_assert_eq!(acks.len(), unique.len(), "duplicate revoke acks");
        for ack in &acks {
            prop_assert!(ack.0 <= model.epoch);
        }
        // Drain remaining transactions: every pending revoke must ack.
        while let Some(ticket) = in_flight.pop() {
            if let Some(acked) = client.txn_finished(ticket) {
                model.acks.push(acked);
            }
        }
        prop_assert_eq!(client.in_flight(), 0);
    }
}
