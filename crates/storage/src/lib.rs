//! Multi-version key-functor storage for ALOHA-DB (§III-D, §IV-C/D).
//!
//! Each key owns an ordered chain of versioned records (Fig 4 of the paper);
//! a record holds a [`aloha_functor::Functor`] that is replaced by its final
//! form at most once. A per-key *value watermark* marks the version below
//! which every record is final, enabling synchronization-free reads of
//! settled history.
//!
//! The [`Partition`] type implements Algorithm 1 — `Compute`, `Func` and
//! `Get` — over one partition's [`VersionedStore`], delegating cross-partition
//! reads, deferred installs and proactive value pushes to a [`ComputeEnv`]
//! supplied by the hosting server.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use aloha_common::{Key, PartitionId, Timestamp, Value};
//! use aloha_functor::{Functor, HandlerRegistry};
//! use aloha_storage::{LocalOnlyEnv, Partition};
//!
//! let partition = Partition::new(PartitionId(0), 1, Arc::new(HandlerRegistry::new()));
//! let key = Key::from("acct");
//! partition.install(&key, Timestamp::from_raw(10), Functor::value_i64(150)).unwrap();
//! partition.install(&key, Timestamp::from_raw(20), Functor::add(100)).unwrap();
//!
//! let env = LocalOnlyEnv;
//! let read = partition.get(&key, Timestamp::from_raw(25), &env).unwrap();
//! assert_eq!(read.value.unwrap().as_i64(), Some(250));
//! ```

pub mod chain;
pub mod durable;
pub mod partition;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use chain::{ChainMem, ChainRead, FinalForm, Record, SnapshotRead, VersionChain};
pub use durable::{DurabilityStats, DurableLog, DurableLogConfig, Fsync, LogDamage, RecoveredLog};
pub use partition::{
    ComputeEnv, DependencyRules, LocalOnlyEnv, Partition, PartitionStats, PushCache,
};
pub use snapshot::{restore_checkpoint, write_checkpoint};
pub use store::{StoreMemStats, StoreStats, VersionedStore};
pub use wal::{read_log, replay_log, replay_records, WalRecord};
