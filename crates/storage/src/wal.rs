//! Write-ahead logging of the write-only phase.
//!
//! Together with [`crate::snapshot`], this implements the logging half of
//! the ALOHA-KV fault-tolerance strategy the paper says ALOHA-DB can
//! leverage (§III-A): every install and rollback of the write-only phase is
//! appended as a self-describing record. Recovery = restore the latest
//! checkpoint, then replay the log suffix; functors re-compute
//! deterministically, so the computing phase needs no logging at all — one
//! of the perks of storing *operations* instead of values.
//!
//! The log targets any `std::io::Write`; tests use an in-memory buffer, a
//! production deployment would use an fsync'd file.

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Error, Key, Result, Timestamp};
use aloha_functor::{Functor, HandlerId, UserFunctor};

use crate::partition::Partition;

/// One logged event of the write-only phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A functor install (idempotent on replay).
    Install {
        /// The written key.
        key: Key,
        /// The transaction's version.
        version: Timestamp,
        /// The installed functor.
        functor: Functor,
    },
    /// A coordinator rollback (second abort round).
    Abort {
        /// The aborted key.
        key: Key,
        /// The aborted version.
        version: Timestamp,
    },
}

const TAG_INSTALL: u8 = 1;
const TAG_ABORT: u8 = 2;

const F_VALUE: u8 = 1;
const F_ABORTED: u8 = 2;
const F_DELETED: u8 = 3;
const F_ADD: u8 = 4;
const F_SUBTR: u8 = 5;
const F_MAX: u8 = 6;
const F_MIN: u8 = 7;
const F_USER: u8 = 8;

/// Serializes a functor into a writer (wire format for the log).
pub fn encode_functor(w: &mut Writer, functor: &Functor) {
    match functor {
        Functor::Value(v) => {
            w.put_u8(F_VALUE);
            w.put_bytes(v.as_bytes());
        }
        Functor::Aborted => {
            w.put_u8(F_ABORTED);
        }
        Functor::Deleted => {
            w.put_u8(F_DELETED);
        }
        Functor::Add(d) => {
            w.put_u8(F_ADD);
            w.put_i64(*d);
        }
        Functor::Subtr(d) => {
            w.put_u8(F_SUBTR);
            w.put_i64(*d);
        }
        Functor::Max(d) => {
            w.put_u8(F_MAX);
            w.put_i64(*d);
        }
        Functor::Min(d) => {
            w.put_u8(F_MIN);
            w.put_i64(*d);
        }
        Functor::User(u) => {
            w.put_u8(F_USER);
            w.put_u32(u.handler.0);
            w.put_u32(u.read_set.len() as u32);
            for k in &u.read_set {
                w.put_bytes(k.as_bytes());
            }
            w.put_bytes(&u.args);
            w.put_u32(u.recipient_set.len() as u32);
            for k in &u.recipient_set {
                w.put_bytes(k.as_bytes());
            }
        }
    }
}

/// Deserializes a functor.
///
/// # Errors
///
/// Returns [`Error::Codec`] for malformed payloads.
pub fn decode_functor(r: &mut Reader<'_>) -> Result<Functor> {
    Ok(match r.get_u8()? {
        F_VALUE => Functor::Value(aloha_common::Value::from(r.get_bytes_shared()?)),
        F_ABORTED => Functor::Aborted,
        F_DELETED => Functor::Deleted,
        F_ADD => Functor::Add(r.get_i64()?),
        F_SUBTR => Functor::Subtr(r.get_i64()?),
        F_MAX => Functor::Max(r.get_i64()?),
        F_MIN => Functor::Min(r.get_i64()?),
        F_USER => {
            let handler = HandlerId(r.get_u32()?);
            let nr = r.get_u32()?;
            let mut read_set = Vec::with_capacity(nr as usize);
            for _ in 0..nr {
                read_set.push(Key::from(r.get_bytes_shared()?));
            }
            let args = r.get_bytes_shared()?;
            let np = r.get_u32()?;
            let mut recipients = Vec::with_capacity(np as usize);
            for _ in 0..np {
                recipients.push(Key::from(r.get_bytes_shared()?));
            }
            Functor::User(UserFunctor::new(handler, read_set, args).with_recipients(recipients))
        }
        other => return Err(Error::Codec(format!("unknown functor tag {other}"))),
    })
}

impl WalRecord {
    /// The transaction version this record carries — the ordering key the
    /// durable log uses for checkpoint truncation.
    pub fn version(&self) -> Timestamp {
        match self {
            WalRecord::Install { version, .. } | WalRecord::Abort { version, .. } => *version,
        }
    }

    /// The key this record touches.
    pub fn key(&self) -> &Key {
        match self {
            WalRecord::Install { key, .. } | WalRecord::Abort { key, .. } => key,
        }
    }

    /// Appends this record to the durable log, keyed by its version.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::durable::DurableLog::append`] failures — notably
    /// `ShuttingDown` once the log is closed, which the caller must treat
    /// as a failed (not silently lost) install.
    pub fn append_durable(&self, log: &crate::durable::DurableLog) -> Result<()> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        log.append(self.version().raw(), &buf)
    }

    /// Appends this record to `out` (length-prefixed frame).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::new();
        match self {
            WalRecord::Install {
                key,
                version,
                functor,
            } => {
                w.put_u8(TAG_INSTALL);
                w.put_bytes(key.as_bytes());
                w.put_u64(version.raw());
                encode_functor(&mut w, functor);
            }
            WalRecord::Abort { key, version } => {
                w.put_u8(TAG_ABORT);
                w.put_bytes(key.as_bytes());
                w.put_u64(version.raw());
            }
        }
        let frame = w.into_bytes();
        out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        out.extend_from_slice(&frame);
    }

    fn decode(frame: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(frame);
        match r.get_u8()? {
            TAG_INSTALL => Ok(WalRecord::Install {
                key: Key::from(r.get_bytes()?),
                version: Timestamp::from_raw(r.get_u64()?),
                functor: decode_functor(&mut r)?,
            }),
            TAG_ABORT => Ok(WalRecord::Abort {
                key: Key::from(r.get_bytes()?),
                version: Timestamp::from_raw(r.get_u64()?),
            }),
            other => Err(Error::Codec(format!("unknown wal record tag {other}"))),
        }
    }
}

/// Iterates over the records of an encoded log.
///
/// # Errors
///
/// The iterator yields [`Error::Codec`] on a truncated or corrupt frame and
/// then stops.
pub fn read_log(buf: &[u8]) -> impl Iterator<Item = Result<WalRecord>> + '_ {
    let mut offset = 0usize;
    let mut failed = false;
    std::iter::from_fn(move || {
        if failed || offset >= buf.len() {
            return None;
        }
        if buf.len() - offset < 4 {
            failed = true;
            return Some(Err(Error::Codec("truncated wal frame header".into())));
        }
        let len = u32::from_be_bytes(buf[offset..offset + 4].try_into().expect("checked")) as usize;
        offset += 4;
        if buf.len() - offset < len {
            failed = true;
            return Some(Err(Error::Codec("truncated wal frame body".into())));
        }
        let frame = &buf[offset..offset + len];
        offset += len;
        Some(WalRecord::decode(frame))
    })
}

/// Replays a log into a partition, skipping records at or below
/// `checkpoint` (already covered by the restored snapshot). Returns the
/// number of records applied and the highest version applied
/// ([`Timestamp::ZERO`] when the suffix was empty), so recovery can extend
/// read visibility over the replayed state.
///
/// # Errors
///
/// Returns [`Error::Codec`] on a corrupt log.
pub fn replay_log(
    partition: &Partition,
    buf: &[u8],
    checkpoint: Timestamp,
) -> Result<(usize, Timestamp)> {
    let mut applied = 0;
    let mut high = Timestamp::ZERO;
    for record in read_log(buf) {
        match record? {
            WalRecord::Install {
                key,
                version,
                functor,
            } => {
                if version > checkpoint {
                    partition.store().put(&key, version, functor);
                    applied += 1;
                    high = high.max(version);
                }
            }
            WalRecord::Abort { key, version } => {
                if version > checkpoint {
                    partition.abort_version(&key, version);
                    applied += 1;
                    high = high.max(version);
                }
            }
        }
    }
    Ok((applied, high))
}

/// Replays decoded records into a partition, skipping versions at or below
/// `checkpoint`. Returns the number of records applied. Replay is
/// idempotent: installs are first-write-wins puts (final forms settle an
/// existing pending record in place — see below) and aborts pre-insert
/// `ABORTED`, so applying the same suffix twice is a no-op.
pub fn apply_records(partition: &Partition, records: &[WalRecord], checkpoint: Timestamp) -> usize {
    let mut applied = 0;
    for record in records {
        if record.version() <= checkpoint {
            continue;
        }
        match record {
            WalRecord::Install {
                key,
                version,
                functor,
            } => {
                if functor.is_final() {
                    // A duplicate delivery (catch-up overlap between the WAL
                    // snapshot and a shipped final-form frame) may find this
                    // version already present as a pending functor. The
                    // final form is the version's deterministic outcome —
                    // settle the record rather than discard the outcome and
                    // leave it uncomputable once a watermark covers it.
                    partition
                        .store()
                        .chain_or_create(key)
                        .settle_at(*version, functor.clone());
                } else {
                    partition.store().put(key, *version, functor.clone());
                }
            }
            WalRecord::Abort { key, version } => {
                partition.abort_version(key, *version);
            }
        }
        applied += 1;
    }
    applied
}

/// Decodes and replays payloads recovered from a [`crate::durable::DurableLog`]
/// (each payload holding one encoded frame) into a partition, skipping
/// records at or below `checkpoint`. Returns the number applied.
///
/// # Errors
///
/// Returns [`Error::Codec`] if a payload does not decode — the durable log's
/// checksums make this a bug, not an expected crash artifact.
pub fn replay_records(
    partition: &Partition,
    payloads: &[(u64, Vec<u8>)],
    checkpoint: Timestamp,
) -> Result<usize> {
    let mut decoded = Vec::with_capacity(payloads.len());
    for (_, payload) in payloads {
        for record in read_log(payload) {
            decoded.push(record?);
        }
    }
    Ok(apply_records(partition, &decoded, checkpoint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::LocalOnlyEnv;
    use aloha_common::{PartitionId, Value};
    use aloha_functor::{ComputeInput, HandlerOutput, HandlerRegistry};
    use std::sync::Arc;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_raw(v)
    }

    #[test]
    fn functor_codec_round_trips_every_variant() {
        let variants = vec![
            Functor::Value(Value::from_i64(9)),
            Functor::Aborted,
            Functor::Deleted,
            Functor::Add(-3),
            Functor::Subtr(7),
            Functor::Max(i64::MAX),
            Functor::Min(i64::MIN),
            Functor::User(
                UserFunctor::new(
                    HandlerId(5),
                    vec![Key::from("a"), Key::from("b")],
                    vec![1, 2, 3],
                )
                .with_recipients(vec![Key::from("c")]),
            ),
        ];
        for f in variants {
            let mut w = Writer::new();
            encode_functor(&mut w, &f);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            assert_eq!(decode_functor(&mut r).unwrap(), f);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn log_round_trips_record_sequences() {
        let records = vec![
            WalRecord::Install {
                key: Key::from("x"),
                version: ts(10),
                functor: Functor::add(1),
            },
            WalRecord::Abort {
                key: Key::from("x"),
                version: ts(10),
            },
            WalRecord::Install {
                key: Key::from("y"),
                version: ts(11),
                functor: Functor::value_i64(5),
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode_into(&mut buf);
        }
        let decoded: Vec<WalRecord> = read_log(&buf).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn truncated_log_reports_error_once() {
        let mut buf = Vec::new();
        WalRecord::Abort {
            key: Key::from("x"),
            version: ts(1),
        }
        .encode_into(&mut buf);
        buf.truncate(buf.len() - 2);
        let results: Vec<_> = read_log(&buf).collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn recovery_replays_suffix_after_checkpoint() {
        // Build a "primary": values + functors, some before a checkpoint,
        // some after; log everything.
        let registry = Arc::new(HandlerRegistry::new());
        let primary = Partition::new(PartitionId(0), 1, Arc::clone(&registry));
        let key = Key::from("acct");
        let mut log = Vec::new();
        let mut log_install = |k: &Key, v: Timestamp, f: Functor| {
            WalRecord::Install {
                key: k.clone(),
                version: v,
                functor: f.clone(),
            }
            .encode_into(&mut log);
            primary.install(k, v, f).unwrap();
        };
        log_install(&key, ts(10), Functor::value_i64(100));
        log_install(&key, ts(20), Functor::add(50));
        // ---- checkpoint at 25 ----
        let checkpoint_blob =
            crate::snapshot::write_checkpoint(&primary, ts(25), &LocalOnlyEnv).unwrap();
        log_install(&key, ts(30), Functor::subtr(30));
        log_install(&key, ts(40), Functor::add(7));
        WalRecord::Abort {
            key: key.clone(),
            version: ts(40),
        }
        .encode_into(&mut log);
        primary.abort_version(&key, ts(40));

        // Recover: snapshot + replay of the suffix.
        let recovered = Partition::new(PartitionId(0), 1, registry);
        let at = crate::snapshot::restore_checkpoint(&recovered, &checkpoint_blob).unwrap();
        let (applied, high) = replay_log(&recovered, &log, at).unwrap();
        assert_eq!(applied, 3, "two post-checkpoint installs + one abort");
        assert_eq!(high, ts(40), "highest replayed version is reported");

        let expected = primary.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        let got = recovered.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        assert_eq!(got.value, expected.value);
        assert_eq!(got.value.unwrap().as_i64(), Some(120)); // 100+50-30, 40 aborted
    }

    #[test]
    fn replayed_user_functors_recompute_deterministically() {
        // Functors (not values!) are logged; recovery recomputes them with
        // the same handlers and must reach the same result.
        let mut registry = HandlerRegistry::new();
        registry.register(HandlerId(1), |input: &ComputeInput<'_>| {
            let v = input.reads.i64(input.key).unwrap_or(0);
            HandlerOutput::commit(Value::from_i64(v * 3))
        });
        let registry = Arc::new(registry);
        let primary = Partition::new(PartitionId(0), 1, Arc::clone(&registry));
        let key = Key::from("k");
        let mut log = Vec::new();
        for (v, f) in [
            (ts(1), Functor::value_i64(2)),
            (
                ts(2),
                Functor::User(UserFunctor::new(
                    HandlerId(1),
                    vec![key.clone()],
                    Vec::new(),
                )),
            ),
            (
                ts(3),
                Functor::User(UserFunctor::new(
                    HandlerId(1),
                    vec![key.clone()],
                    Vec::new(),
                )),
            ),
        ] {
            WalRecord::Install {
                key: key.clone(),
                version: v,
                functor: f.clone(),
            }
            .encode_into(&mut log);
            primary.install(&key, v, f).unwrap();
        }
        let recovered = Partition::new(PartitionId(0), 1, registry);
        replay_log(&recovered, &log, Timestamp::ZERO).unwrap();
        let got = recovered.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        assert_eq!(got.value.unwrap().as_i64(), Some(18)); // 2*3*3
    }
}
