//! The sharded key → version-chain table of one partition.

use std::collections::HashMap;
use std::sync::Arc;

use aloha_common::metrics::Counter;
use aloha_common::{Key, Timestamp};
use aloha_functor::Functor;
use parking_lot::RwLock;

/// Number of hash shards guarding the key table. Sharding keeps the table
/// lock out of the measurement: concurrent puts from processor threads hit
/// different shards with high probability.
const SHARDS: usize = 64;

/// Aggregate access statistics for a [`VersionedStore`].
#[derive(Debug, Default)]
pub struct StoreStats {
    puts: Counter,
    gets: Counter,
}

impl StoreStats {
    /// Number of `put` calls (including idempotent duplicates).
    pub fn puts(&self) -> u64 {
        self.puts.get()
    }

    /// Number of chain lookups.
    pub fn gets(&self) -> u64 {
        self.gets.get()
    }
}

/// One partition's multi-version key-functor table (§III-D).
///
/// # Examples
///
/// ```
/// use aloha_common::{Key, Timestamp};
/// use aloha_functor::Functor;
/// use aloha_storage::VersionedStore;
///
/// let store = VersionedStore::new();
/// store.put(&Key::from("a"), Timestamp::from_raw(1), Functor::value_i64(5));
/// let chain = store.chain(&Key::from("a")).unwrap();
/// assert_eq!(chain.len(), 1);
/// ```
#[derive(Debug)]
pub struct VersionedStore {
    shards: Vec<RwLock<HashMap<Key, Arc<super::VersionChain>>>>,
    stats: StoreStats,
}

impl VersionedStore {
    /// Creates an empty store.
    pub fn new() -> VersionedStore {
        VersionedStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            stats: StoreStats::default(),
        }
    }

    fn shard(&self, key: &Key) -> &RwLock<HashMap<Key, Arc<super::VersionChain>>> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// The version chain for `key`, if any versions exist.
    pub fn chain(&self, key: &Key) -> Option<Arc<super::VersionChain>> {
        self.stats.gets.incr();
        self.shard(key).read().get(key).map(Arc::clone)
    }

    /// The version chain for `key`, creating an empty one if absent.
    pub fn chain_or_create(&self, key: &Key) -> Arc<super::VersionChain> {
        if let Some(chain) = self.shard(key).read().get(key) {
            return Arc::clone(chain);
        }
        let mut guard = self.shard(key).write();
        Arc::clone(guard.entry(key.clone()).or_default())
    }

    /// Installs `functor` at `version` for `key`. Returns `false` if that
    /// version already existed (idempotent install).
    pub fn put(&self, key: &Key, version: Timestamp, functor: Functor) -> bool {
        self.stats.puts.incr();
        self.chain_or_create(key).insert(version, functor)
    }

    /// Number of distinct keys in the partition.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Total number of stored version records.
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|c| c.len()).sum::<usize>())
            .sum()
    }

    /// Access statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Runs `f` over every (key, chain) pair; used by consistency checks and
    /// garbage collection sweeps.
    pub fn for_each_chain(&self, mut f: impl FnMut(&Key, &Arc<super::VersionChain>)) {
        for shard in &self.shards {
            for (key, chain) in shard.read().iter() {
                f(key, chain);
            }
        }
    }

    /// Garbage-collects every chain below `bound` (see
    /// [`super::VersionChain::truncate_below`]). Returns total records dropped.
    pub fn truncate_below(&self, bound: Timestamp) -> usize {
        let mut dropped = 0;
        self.for_each_chain(|_, chain| dropped += chain.truncate_below(bound));
        dropped
    }

    /// Watermark-driven compaction sweep over every chain (see
    /// [`super::VersionChain::compact`]). Returns total records folded away.
    pub fn compact(&self, horizon: Timestamp, keep_versions: usize) -> usize {
        let mut folded = 0;
        self.for_each_chain(|_, chain| folded += chain.compact(horizon, keep_versions));
        folded
    }

    /// Memory accounting aggregated over every chain.
    pub fn memory_stats(&self) -> StoreMemStats {
        let mut out = StoreMemStats::default();
        self.for_each_chain(|_, chain| {
            let m = chain.mem();
            out.chains += 1;
            out.live_records += m.live;
            out.settled_records += m.settled;
            out.compacted_records += m.compacted;
            out.approx_bytes += m.bytes;
        });
        out
    }
}

/// Store-wide memory accounting: the partition `memory` stats subtree reads
/// from this.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreMemStats {
    /// Distinct version chains (keys ever written).
    pub chains: usize,
    /// Records still in live (`Arc` + lock) tails.
    pub live_records: usize,
    /// Records in packed settled sections.
    pub settled_records: usize,
    /// Records folded away by compaction since startup.
    pub compacted_records: u64,
    /// Rough payload bytes held across all chains.
    pub approx_bytes: usize,
}

impl StoreMemStats {
    /// Exports as one node of the unified stats tree.
    pub fn snapshot(&self, name: impl Into<String>) -> aloha_common::stats::StatsSnapshot {
        let mut node = aloha_common::stats::StatsSnapshot::new(name);
        node.set_counter("chains", self.chains as u64);
        node.set_counter("live_records", self.live_records as u64);
        node.set_counter("settled_records", self.settled_records as u64);
        node.set_counter("compacted_records", self.compacted_records);
        node.set_counter("approx_bytes", self.approx_bytes as u64);
        node
    }
}

impl Default for VersionedStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_raw(v)
    }

    #[test]
    fn put_creates_chain_and_get_finds_it() {
        let store = VersionedStore::new();
        let k = Key::from("x");
        assert!(store.chain(&k).is_none());
        assert!(store.put(&k, ts(1), Functor::value_i64(1)));
        assert_eq!(store.chain(&k).unwrap().len(), 1);
        assert_eq!(store.key_count(), 1);
    }

    #[test]
    fn put_same_version_is_idempotent() {
        let store = VersionedStore::new();
        let k = Key::from("x");
        assert!(store.put(&k, ts(1), Functor::value_i64(1)));
        assert!(!store.put(&k, ts(1), Functor::value_i64(2)));
        assert_eq!(store.version_count(), 1);
    }

    #[test]
    fn chain_or_create_returns_same_chain() {
        let store = VersionedStore::new();
        let k = Key::from("y");
        let a = store.chain_or_create(&k);
        let b = store.chain_or_create(&k);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stats_count_accesses() {
        let store = VersionedStore::new();
        let k = Key::from("z");
        store.put(&k, ts(1), Functor::value_i64(0));
        store.chain(&k);
        store.chain(&k);
        assert_eq!(store.stats().puts(), 1);
        assert_eq!(store.stats().gets(), 2);
    }

    #[test]
    fn many_keys_spread_across_shards() {
        let store = VersionedStore::new();
        for i in 0..1000u32 {
            let k = Key::from_parts(&[b"k", &i.to_be_bytes()]);
            store.put(&k, ts(1), Functor::value_i64(i as i64));
        }
        assert_eq!(store.key_count(), 1000);
        assert_eq!(store.version_count(), 1000);
    }

    #[test]
    fn concurrent_puts_to_distinct_keys_all_land() {
        let store = Arc::new(VersionedStore::new());
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let k = Key::from_parts(&[&t.to_be_bytes(), &i.to_be_bytes()]);
                        s.put(&k, ts(1), Functor::value_i64(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.key_count(), 1600);
    }

    #[test]
    fn store_truncate_sweeps_all_chains() {
        let store = VersionedStore::new();
        let k = Key::from("gc");
        for v in [1u64, 2, 3] {
            store.put(&k, ts(v), Functor::value_i64(v as i64));
        }
        store.chain(&k).unwrap().advance_watermark(ts(3));
        assert_eq!(store.truncate_below(ts(3)), 2);
    }
}
