//! Per-key ordered version chains with value watermarks (Fig 4), split into
//! a packed settled section and a live tail.
//!
//! Records start life in the *live* tail as `Arc<Record>` cells that the
//! computing phase finalizes in place. Once a record sinks below its key's
//! value watermark it is immutable; compaction promotes it into the *packed*
//! settled section — a plain `Vec<(version, final form)>` with no per-record
//! `Arc` or lock — and folds the dead prefix below the retention horizon
//! away entirely, keeping the newest committed records as the materialized
//! base. Reads consult both sections and take the floor across them, so the
//! split is invisible to Algorithm 1.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aloha_common::{Timestamp, Value};
use aloha_functor::Functor;
use parking_lot::RwLock;

/// A settled record's payload: one of the three final forms of Table I.
///
/// Unlike [`Functor`], this type can never carry a pending f-type, so holding
/// or cloning one never touches a user functor's read set or argument blob.
/// Cloning is a reference-count bump on the value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FinalForm {
    /// `VALUE` — the materialized value.
    Value(Value),
    /// `ABORTED` — this version aborted; reads skip it.
    Aborted,
    /// `DELETED` — tombstone.
    Deleted,
}

impl FinalForm {
    /// The final form of `functor`, if it has one.
    pub fn of(functor: &Functor) -> Option<FinalForm> {
        match functor {
            Functor::Value(v) => Some(FinalForm::Value(v.clone())),
            Functor::Aborted => Some(FinalForm::Aborted),
            Functor::Deleted => Some(FinalForm::Deleted),
            _ => None,
        }
    }

    /// The committed value, if this form is a `VALUE`.
    pub fn value(&self) -> Option<&Value> {
        match self {
            FinalForm::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this version aborted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, FinalForm::Aborted)
    }

    /// Converts back into the equivalent (final) [`Functor`].
    pub fn into_functor(self) -> Functor {
        match self {
            FinalForm::Value(v) => Functor::Value(v),
            FinalForm::Aborted => Functor::Aborted,
            FinalForm::Deleted => Functor::Deleted,
        }
    }
}

/// One packed settled record: version plus final form, no lock, no `Arc`.
#[derive(Debug, Clone)]
struct PackedRecord {
    version: Timestamp,
    form: FinalForm,
}

/// One live version record: a version number plus a functor cell that is
/// replaced by its final form at most once.
///
/// The paper stores `<version, f-type, f-argument>` triples; here the functor
/// enum carries both the f-type and the f-argument. The cell is guarded by a
/// light reader-writer lock; once the record settles, compaction moves its
/// final form into the chain's packed section and the cell is dropped.
#[derive(Debug)]
pub struct Record {
    version: Timestamp,
    cell: RwLock<Functor>,
}

impl Record {
    fn new(version: Timestamp, functor: Functor) -> Record {
        Record {
            version,
            cell: RwLock::new(functor),
        }
    }

    /// The version (transaction timestamp) of this record.
    pub fn version(&self) -> Timestamp {
        self.version
    }

    /// Snapshot of the current functor (clones the full functor — use
    /// [`Record::final_form`] on read paths that only need the outcome).
    pub fn load(&self) -> Functor {
        self.cell.read().clone()
    }

    /// Settled-read fast path: the final form if the record is already
    /// settled, `None` if it still needs the computing phase. A pending
    /// record costs one lock-guarded enum check here — no clone of the full
    /// functor (user f-arguments, read set and all) just to discover it
    /// isn't final; a settled one costs a reference-count bump on the value.
    pub fn final_form(&self) -> Option<FinalForm> {
        FinalForm::of(&self.cell.read())
    }

    /// Whether the record already holds a final form.
    pub fn is_final(&self) -> bool {
        self.cell.read().is_final()
    }

    /// Replaces the functor with its final form, once.
    ///
    /// Returns `true` if this call performed the replacement, `false` if the
    /// record was already final (another thread computed it first — benign,
    /// because functor computation is deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `final_form` is not final; storing a non-final functor here
    /// would violate the compute-at-most-once invariant.
    pub fn finalize(&self, final_form: Functor) -> bool {
        assert!(
            final_form.is_final(),
            "finalize called with non-final functor {final_form}"
        );
        let mut guard = self.cell.write();
        if guard.is_final() {
            return false;
        }
        *guard = final_form;
        true
    }

    /// Forcibly rewrites the record to `ABORTED`.
    ///
    /// Used by the coordinator's second-round abort (§V-A2) for versions
    /// installed in the current epoch; such versions are not yet visible to
    /// readers, so the rewrite is safe even if the record was final.
    pub fn force_abort(&self) {
        *self.cell.write() = Functor::Aborted;
    }
}

/// One chain lookup result, spanning both sections.
#[derive(Debug, Clone)]
pub enum ChainRead {
    /// A settled record: version plus final form (borrow-cheap).
    Final(Timestamp, FinalForm),
    /// A live record that may still need the computing phase.
    Live(Arc<Record>),
}

impl ChainRead {
    /// The version of the record this lookup found.
    pub fn version(&self) -> Timestamp {
        match self {
            ChainRead::Final(v, _) => *v,
            ChainRead::Live(rec) => rec.version(),
        }
    }
}

/// Result of a frontier snapshot read (see [`VersionChain::snapshot_read`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotRead {
    /// No version exists at or below the bound (never-written key, or the
    /// whole prefix aborted).
    Missing,
    /// The newest non-aborted record at or below the bound: a committed
    /// value or a tombstone.
    Found(Timestamp, FinalForm),
    /// A record at or below the bound has not been computed yet. Sound
    /// snapshot bounds (at or below the cluster compute frontier) never see
    /// this; a caller that does must take the computing read path instead.
    Pending,
    /// Compaction has folded the record that would have answered this read
    /// (the bound's true floor was a committed version at or below the
    /// compacted floor), so the read cannot be answered exactly. Carries
    /// the oldest bound at which this chain answers exactly again (the
    /// oldest surviving committed record); the caller must retry there or
    /// above. Detected under the same lock as the read itself, so a fold
    /// can never slip in between a floor check and the answer.
    Folded(Timestamp),
}

/// Per-chain memory accounting (the `memory` stats subtree feeds from this).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChainMem {
    /// Records still in the live (`Arc` + lock) tail.
    pub live: usize,
    /// Records in the packed settled section.
    pub settled: usize,
    /// Records folded away by compaction over this chain's lifetime.
    pub compacted: u64,
    /// Rough payload bytes held (values, user f-arguments and read sets).
    pub bytes: usize,
}

#[derive(Debug, Default)]
struct ChainInner {
    /// Packed settled records, versions strictly ascending.
    settled: Vec<PackedRecord>,
    /// Live records, versions strictly ascending (disjoint from `settled`).
    live: Vec<Arc<Record>>,
    /// Highest version folded away by compaction (`ZERO` if none). Versions
    /// at or below this with no surviving record are committed history:
    /// aborted records are never folded, so a missing version here cannot
    /// have aborted.
    compacted_floor: Timestamp,
    /// Total records folded away over this chain's lifetime.
    compacted: u64,
}

impl ChainInner {
    /// Index of the settled entry with exactly `version`, if present.
    fn settled_at(&self, version: Timestamp) -> Option<usize> {
        self.settled
            .binary_search_by_key(&version, |p| p.version)
            .ok()
    }

    /// Index of the live entry with exactly `version`, if present.
    fn live_at(&self, version: Timestamp) -> Option<usize> {
        self.live.binary_search_by_key(&version, |r| r.version).ok()
    }

    /// The newest record at or below `bound` across both sections.
    fn floor(&self, bound: Timestamp) -> Option<ChainRead> {
        let s = self
            .settled
            .partition_point(|p| p.version <= bound)
            .checked_sub(1);
        let l = self
            .live
            .partition_point(|r| r.version <= bound)
            .checked_sub(1);
        match (s, l) {
            (None, None) => None,
            (Some(si), None) => {
                let p = &self.settled[si];
                Some(ChainRead::Final(p.version, p.form.clone()))
            }
            (None, Some(li)) => Some(ChainRead::Live(Arc::clone(&self.live[li]))),
            (Some(si), Some(li)) => {
                let p = &self.settled[si];
                if p.version > self.live[li].version {
                    Some(ChainRead::Final(p.version, p.form.clone()))
                } else {
                    Some(ChainRead::Live(Arc::clone(&self.live[li])))
                }
            }
        }
    }

    /// The oldest bound a snapshot read answers exactly on a folded chain:
    /// the oldest surviving committed record. Compaction always keeps the
    /// fold's base, so a committed survivor exists whenever the compacted
    /// floor is non-zero; the floor itself is the (conservative) fallback.
    fn retry_floor(&self) -> Timestamp {
        self.settled
            .iter()
            .find(|p| !p.form.is_aborted())
            .map(|p| p.version)
            .or_else(|| {
                self.live
                    .iter()
                    .find(|r| r.final_form().is_some_and(|f| !f.is_aborted()))
                    .map(|r| r.version())
            })
            .unwrap_or(self.compacted_floor)
            .max(self.compacted_floor)
    }
}

/// The ordered multi-version chain for one key.
///
/// Versions are kept sorted ascending. Writes arrive in nearly sorted order
/// (timestamps are drawn from synchronized clocks within an epoch), so
/// insertion is amortized O(1): push at the tail and rotate backwards past
/// the few out-of-order predecessors. The paper uses a linked list of arrays;
/// a contiguous growable vector gives the same ordered-scan behavior with
/// better locality in Rust.
///
/// # Examples
///
/// ```
/// use aloha_common::Timestamp;
/// use aloha_functor::Functor;
/// use aloha_storage::VersionChain;
///
/// let chain = VersionChain::new();
/// chain.insert(Timestamp::from_raw(10), Functor::value_i64(1));
/// chain.insert(Timestamp::from_raw(5), Functor::value_i64(0));
/// let read = chain.floor(Timestamp::from_raw(7)).unwrap();
/// assert_eq!(read.version(), Timestamp::from_raw(5));
/// ```
#[derive(Debug, Default)]
pub struct VersionChain {
    inner: RwLock<ChainInner>,
    /// Versions `<=` this are all final (the paper's *value watermark*;
    /// `Timestamp::ZERO.raw()` when nothing is settled).
    watermark: AtomicU64,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> VersionChain {
        VersionChain::default()
    }

    /// Inserts a record, keeping versions sorted.
    ///
    /// Returns `false` (and changes nothing) if the version already exists —
    /// including versions already folded away by compaction — so deferred
    /// writes and retried messages are harmless.
    pub fn insert(&self, version: Timestamp, functor: Functor) -> bool {
        let mut inner = self.inner.write();
        if version <= inner.compacted_floor || inner.settled_at(version).is_some() {
            return false; // settled (possibly folded) history: idempotent no-op
        }
        // Fast path: strictly ascending append.
        if inner.live.last().is_none_or(|r| r.version < version) {
            inner.live.push(Arc::new(Record::new(version, functor)));
            return true;
        }
        match inner.live.binary_search_by_key(&version, |r| r.version) {
            Ok(_) => false,
            Err(pos) => {
                inner
                    .live
                    .insert(pos, Arc::new(Record::new(version, functor)));
                true
            }
        }
    }

    /// The record with exactly this version, if present in either section.
    pub fn read_at(&self, version: Timestamp) -> Option<ChainRead> {
        let inner = self.inner.read();
        if let Some(i) = inner.settled_at(version) {
            let p = &inner.settled[i];
            return Some(ChainRead::Final(p.version, p.form.clone()));
        }
        inner
            .live_at(version)
            .map(|i| ChainRead::Live(Arc::clone(&inner.live[i])))
    }

    /// The latest record with version `<= bound`, if any (Alg 1 line 17).
    pub fn floor(&self, bound: Timestamp) -> Option<ChainRead> {
        self.inner.read().floor(bound)
    }

    /// Abort-skipping floor for the snapshot-read fast path: the newest
    /// non-aborted final record at or below `bound`, resolved under a
    /// *single* read-lock acquisition.
    ///
    /// Packed records answer with no per-record lock and no `Arc` clone
    /// escaping; a still-live record contributes its final form in place.
    /// When `bound` is at or below the cluster compute frontier every record
    /// it can reach is final, so the whole aborted-skip walk completes
    /// without computing, blocking, or re-locking between probes — which is
    /// what makes the result a consistent point-in-time read even while
    /// newer versions land in the live tail.
    pub fn snapshot_read(&self, bound: Timestamp) -> SnapshotRead {
        let inner = self.inner.read();
        let mut cursor = bound;
        loop {
            let Some(read) = inner.floor(cursor) else {
                // Nothing non-aborted at or below the cursor. That is a
                // genuine miss only on a never-folded chain: folded records
                // are all *committed*, so with a non-zero compacted floor
                // the true floor was (or may have been) folded away and
                // answering `Missing` would silently time-travel.
                return if inner.compacted_floor > Timestamp::ZERO {
                    SnapshotRead::Folded(inner.retry_floor())
                } else {
                    SnapshotRead::Missing
                };
            };
            let (version, form) = match read {
                ChainRead::Final(v, form) => (v, form),
                ChainRead::Live(rec) => match rec.final_form() {
                    Some(form) => (rec.version(), form),
                    None => return SnapshotRead::Pending,
                },
            };
            if form.is_aborted() {
                cursor = version.pred();
            } else {
                return SnapshotRead::Found(version, form);
            }
        }
    }

    /// All records with versions in `[from, to]` that still need computing,
    /// ascending (Alg 1 line 4). Packed records are final by construction,
    /// so only the live tail is scanned.
    pub fn uncomputed_in(&self, from: Timestamp, to: Timestamp) -> Vec<Arc<Record>> {
        let inner = self.inner.read();
        let start = inner.live.partition_point(|r| r.version < from);
        inner.live[start..]
            .iter()
            .take_while(|r| r.version <= to)
            .filter(|r| !r.is_final())
            .map(Arc::clone)
            .collect()
    }

    /// Rewrites `version` to `ABORTED` wherever it lives (§V-A2 rollback),
    /// pre-inserting an `ABORTED` record if the version is unknown so a late
    /// install becomes a first-write-wins no-op. Folded versions are left
    /// alone: only committed history is ever folded, and a commit can only
    /// have been folded after its epoch settled — any abort arriving that
    /// late is a duplicate of one already applied.
    pub fn force_abort_at(&self, version: Timestamp) {
        let mut inner = self.inner.write();
        if let Some(i) = inner.settled_at(version) {
            inner.settled[i].form = FinalForm::Aborted;
            return;
        }
        if let Some(i) = inner.live_at(version) {
            inner.live[i].force_abort();
            return;
        }
        if version <= inner.compacted_floor {
            return;
        }
        let pos = inner.live.partition_point(|r| r.version < version);
        inner
            .live
            .insert(pos, Arc::new(Record::new(version, Functor::Aborted)));
    }

    /// Settles `version` to `final_form`, inserting the record if the
    /// version is unknown. Used by checkpoint restore, where each entry is
    /// the authoritative final form of that exact version: a pending functor
    /// already installed at the version (a shipped WAL frame that raced
    /// ahead of the bootstrap) is finalized in place — a plain first-write-
    /// wins put would lose to it and leave a non-final record under the
    /// watermark the restore is about to raise. Records already final are
    /// left untouched (computation is deterministic, the forms agree).
    ///
    /// # Panics
    ///
    /// Panics if `final_form` is not final.
    pub fn settle_at(&self, version: Timestamp, final_form: Functor) {
        assert!(
            final_form.is_final(),
            "settle_at called with non-final functor {final_form}"
        );
        let mut inner = self.inner.write();
        if version <= inner.compacted_floor || inner.settled_at(version).is_some() {
            return;
        }
        if let Some(i) = inner.live_at(version) {
            inner.live[i].finalize(final_form);
            return;
        }
        let pos = inner.live.partition_point(|r| r.version < version);
        inner
            .live
            .insert(pos, Arc::new(Record::new(version, final_form)));
    }

    /// Current value watermark.
    pub fn watermark(&self) -> Timestamp {
        Timestamp::from_raw(self.watermark.load(Ordering::Acquire))
    }

    /// Raises the watermark to at least `to` only when every stored record
    /// at or below `to` is final — the chain-local form of the watermark
    /// invariant, checked instead of assumed. Returns whether the chain's
    /// watermark now covers `to`.
    ///
    /// Replication standbys use this: shipped records arrive out of settle
    /// order (an abort for a still-open epoch, a form the primary resolved
    /// ahead of its neighbours, a promotion's unsettled tail), and a final
    /// record must never cover a pending sibling below it — `compute` would
    /// skip the range and leave the pending record stranded forever. The
    /// check and the advance happen under one chain read lock, so no
    /// concurrent insert can slip a pending record underneath.
    pub fn try_advance_watermark(&self, to: Timestamp) -> bool {
        // Records at or below the current watermark are final by invariant,
        // so only the (watermark, to] span needs checking — the scan is
        // amortized O(1) per record as the watermark ratchets forward.
        let wm = self.watermark();
        if to <= wm {
            return true;
        }
        let inner = self.inner.read();
        let start = inner.live.partition_point(|r| r.version <= wm);
        if inner.live[start..]
            .iter()
            .take_while(|r| r.version <= to)
            .any(|r| !r.is_final())
        {
            return false;
        }
        // Packed records are final by construction; the compacted floor only
        // ever trails the watermark. Holding the read lock through the CAS
        // keeps inserters (write lock) out until the advance lands.
        self.advance_watermark(to);
        true
    }

    /// Raises the watermark to at least `to` (Alg 1 lines 7-9: CAS loop).
    pub fn advance_watermark(&self, to: Timestamp) {
        let mut cur = self.watermark.load(Ordering::Acquire);
        while cur < to.raw() {
            match self.watermark.compare_exchange_weak(
                cur,
                to.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Number of stored versions (both sections).
    pub fn len(&self) -> usize {
        let inner = self.inner.read();
        inner.settled.len() + inner.live.len()
    }

    /// Whether the chain has no versions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All versions in ascending order (diagnostics and tests).
    pub fn versions(&self) -> Vec<Timestamp> {
        let inner = self.inner.read();
        let mut out: Vec<Timestamp> = inner.settled.iter().map(|p| p.version).collect();
        out.extend(inner.live.iter().map(|r| r.version));
        out.sort_unstable();
        out
    }

    /// Snapshot of `(version, functor)` pairs, ascending (diagnostics).
    pub fn dump(&self) -> Vec<(Timestamp, Functor)> {
        let inner = self.inner.read();
        let mut out: Vec<(Timestamp, Functor)> = inner
            .settled
            .iter()
            .map(|p| (p.version, p.form.clone().into_functor()))
            .collect();
        out.extend(inner.live.iter().map(|r| (r.version, r.load())));
        out.sort_unstable_by_key(|(v, _)| *v);
        out
    }

    /// Highest version folded away by compaction (`ZERO` if none).
    pub fn compacted_floor(&self) -> Timestamp {
        self.inner.read().compacted_floor
    }

    /// Per-chain memory accounting.
    pub fn mem(&self) -> ChainMem {
        let inner = self.inner.read();
        let mut bytes = 0;
        for p in &inner.settled {
            bytes += std::mem::size_of::<PackedRecord>();
            if let FinalForm::Value(v) = &p.form {
                bytes += v.len();
            }
        }
        for r in &inner.live {
            // Arc + lock overhead plus the functor payload.
            bytes += std::mem::size_of::<Record>() + 16 + r.cell.read().approx_bytes();
        }
        ChainMem {
            live: inner.live.len(),
            settled: inner.settled.len(),
            compacted: inner.compacted,
            bytes,
        }
    }

    /// Watermark-driven compaction: promotes settled live records into the
    /// packed section and folds the dead committed prefix away.
    ///
    /// Only records at or below the value watermark move; of the packed
    /// committed (non-aborted) records, the newest `keep_versions` (at least
    /// one — the materialized base readers floor onto) survive, and so does
    /// the newest committed version at or below `horizon`: only versions
    /// strictly below both survive points are folded. `ABORTED` records are
    /// never folded: they are what lets a late outcome probe distinguish
    /// "this version aborted" from "this version committed and was folded".
    ///
    /// Reads at bounds at or above `horizon` (and at or above the oldest
    /// surviving committed version) are unaffected — their flooring base is
    /// always retained; bounds below that are below the retention horizon
    /// and may see less history (exactly as with
    /// [`VersionChain::truncate_below`]).
    ///
    /// Returns the number of records folded away.
    pub fn compact(&self, horizon: Timestamp, keep_versions: usize) -> usize {
        let wm = self.watermark();
        {
            // Early-out under the read lock: a store-wide sweep visits every
            // chain, and in steady state most are already compact. Taking
            // the write lock only when there is promotable or foldable work
            // keeps the sweeper off the install/compute paths' locks.
            let inner = self.inner.read();
            let promotable = inner.live.first().is_some_and(|r| r.version() <= wm);
            if !promotable && inner.settled.len() <= keep_versions.max(1) {
                return 0;
            }
        }
        let mut inner = self.inner.write();

        // Promote: final live records at or below the watermark become
        // packed. They form a prefix of the (sorted) live tail; anything
        // non-final below the watermark would be a broken invariant, so it
        // is defensively left live for the computing phase.
        let cut = inner.live.partition_point(|r| r.version <= wm);
        if cut > 0 {
            let prefix: Vec<Arc<Record>> = inner.live.drain(..cut).collect();
            for rec in prefix {
                match rec.final_form() {
                    Some(form) => {
                        let packed = PackedRecord {
                            version: rec.version(),
                            form,
                        };
                        // Promotions interleave with earlier promotions and
                        // below-watermark deferred installs: merge sorted.
                        match inner
                            .settled
                            .binary_search_by_key(&packed.version, |p| p.version)
                        {
                            Ok(_) => {} // duplicate: first write wins
                            Err(pos) => inner.settled.insert(pos, packed),
                        }
                    }
                    None => {
                        let pos = inner.live.partition_point(|r| r.version < rec.version());
                        inner.live.insert(pos, rec);
                    }
                }
            }
        }

        // Fold: of the committed entries, keep the newest `keep` and drop
        // the rest below the horizon.
        let keep = keep_versions.max(1);
        let committed: Vec<usize> = inner
            .settled
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.form.is_aborted())
            .map(|(i, _)| i)
            .collect();
        if committed.len() <= keep {
            return 0;
        }
        let keep_from = inner.settled[committed[committed.len() - keep]].version;
        // Reads at bounds in `[horizon_base, horizon]` floor onto the newest
        // committed version at or below the horizon; that flooring base must
        // survive even when the retention cut (`keep_from`) lies above the
        // horizon, or a read at the horizon would find its history gone. No
        // committed version at or below the horizon means nothing below it
        // is foldable at all.
        let horizon_base = committed
            .iter()
            .rev()
            .map(|&i| inner.settled[i].version)
            .find(|v| *v <= horizon);
        let Some(horizon_base) = horizon_base else {
            return 0;
        };
        let fold_below = keep_from.min(horizon_base);
        let before = inner.settled.len();
        let mut floor = inner.compacted_floor;
        inner.settled.retain(|p| {
            if !p.form.is_aborted() && p.version < fold_below {
                floor = floor.max(p.version);
                false
            } else {
                true
            }
        });
        let folded = before - inner.settled.len();
        inner.compacted_floor = floor;
        inner.compacted += folded as u64;
        folded
    }

    /// Garbage-collects history: drops all records with version `< bound`
    /// except the latest one at or below `bound`, which readers of
    /// historical snapshots `>= bound` still need. Records above the
    /// watermark are never collected. Returns the number of dropped records.
    pub fn truncate_below(&self, bound: Timestamp) -> usize {
        let effective = bound.min(self.watermark());
        let mut inner = self.inner.write();
        // Keep the newest record at or below the cut as the snapshot base.
        let base = match inner.floor(effective) {
            Some(read) => read.version(),
            None => return 0,
        };
        let scut = inner.settled.partition_point(|p| p.version < base);
        let lcut = inner.live.partition_point(|r| r.version < base);
        let dropped = scut + lcut;
        inner.settled.drain(..scut);
        inner.live.drain(..lcut);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::Value;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_raw(v)
    }

    /// The final functor at `version`, whichever section holds it.
    fn functor_at(chain: &VersionChain, version: Timestamp) -> Option<Functor> {
        match chain.read_at(version)? {
            ChainRead::Final(_, form) => Some(form.into_functor()),
            ChainRead::Live(rec) => Some(rec.load()),
        }
    }

    #[test]
    fn insert_keeps_sorted_under_out_of_order_arrivals() {
        let chain = VersionChain::new();
        for v in [50u64, 10, 30, 20, 40] {
            assert!(chain.insert(ts(v), Functor::value_i64(v as i64)));
        }
        assert_eq!(
            chain.versions(),
            vec![ts(10), ts(20), ts(30), ts(40), ts(50)]
        );
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let chain = VersionChain::new();
        assert!(chain.insert(ts(10), Functor::value_i64(1)));
        assert!(!chain.insert(ts(10), Functor::value_i64(2)));
        assert_eq!(functor_at(&chain, ts(10)).unwrap(), Functor::value_i64(1));
    }

    #[test]
    fn floor_finds_latest_at_or_below() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(1));
        chain.insert(ts(20), Functor::value_i64(2));
        assert!(chain.floor(ts(9)).is_none());
        assert_eq!(chain.floor(ts(10)).unwrap().version(), ts(10));
        assert_eq!(chain.floor(ts(15)).unwrap().version(), ts(10));
        assert_eq!(chain.floor(ts(99)).unwrap().version(), ts(20));
    }

    #[test]
    fn finalize_happens_once() {
        let rec = Record::new(ts(5), Functor::add(1));
        assert!(!rec.is_final());
        assert!(rec.finalize(Functor::value_i64(3)));
        assert!(
            !rec.finalize(Functor::value_i64(9)),
            "second finalize must lose"
        );
        assert_eq!(rec.load(), Functor::value_i64(3));
    }

    #[test]
    #[should_panic(expected = "non-final")]
    fn finalize_rejects_non_final_form() {
        let rec = Record::new(ts(5), Functor::add(1));
        rec.finalize(Functor::add(2));
    }

    #[test]
    fn force_abort_overwrites_even_final() {
        let rec = Record::new(ts(5), Functor::Value(Value::from_i64(1)));
        rec.force_abort();
        assert_eq!(rec.load(), Functor::Aborted);
    }

    #[test]
    fn final_form_is_borrow_cheap_and_none_for_pending() {
        let rec = Record::new(ts(5), Functor::add(1));
        assert!(rec.final_form().is_none());
        rec.finalize(Functor::value_i64(7));
        assert_eq!(rec.final_form().unwrap().value().unwrap().as_i64(), Some(7));
    }

    #[test]
    fn uncomputed_scan_respects_range_and_finality() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(0)); // final
        chain.insert(ts(20), Functor::add(1));
        chain.insert(ts(30), Functor::add(2));
        chain.insert(ts(40), Functor::add(3));
        let pending = chain.uncomputed_in(ts(15), ts(30));
        let versions: Vec<_> = pending.iter().map(|r| r.version()).collect();
        assert_eq!(versions, vec![ts(20), ts(30)]);
    }

    #[test]
    fn watermark_advances_monotonically() {
        let chain = VersionChain::new();
        chain.advance_watermark(ts(10));
        chain.advance_watermark(ts(5)); // no-op
        assert_eq!(chain.watermark(), ts(10));
        chain.advance_watermark(ts(30));
        assert_eq!(chain.watermark(), ts(30));
    }

    #[test]
    fn concurrent_watermark_advance_takes_max() {
        let chain = Arc::new(VersionChain::new());
        let handles: Vec<_> = (1..=8u64)
            .map(|i| {
                let c = Arc::clone(&chain);
                std::thread::spawn(move || c.advance_watermark(ts(i * 100)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(chain.watermark(), ts(800));
    }

    #[test]
    fn truncate_keeps_snapshot_base_and_unsettled_tail() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30, 40] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(30));
        let dropped = chain.truncate_below(ts(30));
        assert_eq!(dropped, 2); // 10 and 20 go; 30 stays as base; 40 unsettled
        assert_eq!(chain.versions(), vec![ts(30), ts(40)]);
    }

    #[test]
    fn truncate_never_crosses_watermark() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::add(1));
        chain.insert(ts(20), Functor::add(1));
        // watermark still ZERO: nothing settled, nothing may be dropped
        assert_eq!(chain.truncate_below(ts(99)), 0);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn truncate_spans_both_sections() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30, 40] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(20));
        // Promote 10 and 20 into the packed section, fold nothing.
        chain.compact(Timestamp::ZERO, usize::MAX);
        chain.advance_watermark(ts(40));
        assert_eq!(chain.truncate_below(ts(40)), 3);
        assert_eq!(chain.versions(), vec![ts(40)]);
    }

    #[test]
    fn concurrent_inserts_preserve_order_and_count() {
        let chain = Arc::new(VersionChain::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&chain);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        c.insert(ts(t * 1000 + i + 1), Functor::value_i64(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let versions = chain.versions();
        assert_eq!(versions.len(), 1000);
        assert!(
            versions.windows(2).all(|w| w[0] < w[1]),
            "versions must stay sorted"
        );
    }

    #[test]
    fn compact_promotes_settled_records_into_packed_section() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.insert(ts(40), Functor::add(1)); // pending, above watermark
        chain.advance_watermark(ts(30));
        assert_eq!(chain.compact(Timestamp::ZERO, usize::MAX), 0);
        let m = chain.mem();
        assert_eq!((m.settled, m.live), (3, 1));
        // Reads behave identically after promotion.
        let read = chain.floor(ts(25)).unwrap();
        assert_eq!(read.version(), ts(20));
        match read {
            ChainRead::Final(_, form) => {
                assert_eq!(form.value().unwrap().as_i64(), Some(20));
            }
            ChainRead::Live(_) => panic!("promoted record must read as Final"),
        }
    }

    #[test]
    fn compact_folds_dead_prefix_and_keeps_base() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30, 40] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(40));
        // keep_versions=1: only the newest committed record survives.
        let folded = chain.compact(ts(40), 1);
        assert_eq!(folded, 3);
        assert_eq!(chain.versions(), vec![ts(40)]);
        assert_eq!(chain.compacted_floor(), ts(30));
        assert_eq!(chain.mem().compacted, 3);
        // The base still answers reads at or above its version.
        let read = chain.floor(ts(99)).unwrap();
        assert_eq!(read.version(), ts(40));
    }

    #[test]
    fn compact_retention_keeps_requested_history() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30, 40] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(40));
        assert_eq!(chain.compact(ts(40), 2), 2); // 10 and 20 fold
        assert_eq!(chain.versions(), vec![ts(30), ts(40)]);
        // Snapshot reads within the retained window still resolve.
        assert_eq!(chain.floor(ts(35)).unwrap().version(), ts(30));
    }

    #[test]
    fn compact_horizon_caps_folding() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30, 40] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(40));
        // Horizon 20: even with keep_versions=1, only versions below 20 fold.
        assert_eq!(chain.compact(ts(20), 1), 1);
        assert_eq!(chain.versions(), vec![ts(20), ts(30), ts(40)]);
    }

    #[test]
    fn compact_keeps_flooring_base_when_retention_cut_exceeds_horizon() {
        // Regression: with committed versions straddling the horizon and the
        // retention cut (newest `keep`) entirely above it, the fold must not
        // take every committed version at or below the horizon with it — a
        // read flooring at the horizon still needs the newest such version.
        let chain = VersionChain::new();
        for v in [10u64, 20, 100] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(100));
        // keep_versions=1 → retention cut at 100; horizon 50 sits between.
        assert_eq!(chain.compact(ts(50), 1), 1, "only version 10 may fold");
        assert_eq!(chain.versions(), vec![ts(20), ts(100)]);
        // The horizon read keeps its flooring base.
        assert_eq!(chain.floor(ts(50)).unwrap().version(), ts(20));
        // No committed version at or below the horizon: nothing may fold.
        let fresh = VersionChain::new();
        fresh.insert(ts(60), Functor::value_i64(60));
        fresh.insert(ts(70), Functor::value_i64(70));
        fresh.advance_watermark(ts(70));
        assert_eq!(fresh.compact(ts(50), 1), 0);
        assert_eq!(fresh.versions(), vec![ts(60), ts(70)]);
    }

    #[test]
    fn compact_never_folds_aborted_records() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(1));
        chain.insert(ts(20), Functor::Aborted);
        chain.insert(ts(30), Functor::value_i64(3));
        chain.advance_watermark(ts(30));
        assert_eq!(chain.compact(ts(99), 1), 1); // only 10 folds
        assert_eq!(chain.versions(), vec![ts(20), ts(30)]);
        // The aborted record still answers outcome probes.
        match chain.read_at(ts(20)).unwrap() {
            ChainRead::Final(_, form) => assert!(form.is_aborted()),
            ChainRead::Live(_) => panic!("settled abort must be packed"),
        }
        // And reads skip it as before.
        assert_eq!(chain.floor(ts(25)).unwrap().version(), ts(20));
    }

    #[test]
    fn insert_below_compacted_floor_is_idempotent_noop() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(30));
        chain.compact(ts(99), 1);
        assert_eq!(chain.compacted_floor(), ts(20));
        // A retried install of folded history must not resurrect a record.
        assert!(!chain.insert(ts(10), Functor::value_i64(999)));
        assert!(!chain.insert(ts(20), Functor::value_i64(999)));
        assert_eq!(chain.versions(), vec![ts(30)]);
    }

    #[test]
    fn force_abort_reaches_both_sections_and_preinserts() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(1));
        chain.insert(ts(20), Functor::value_i64(2));
        chain.advance_watermark(ts(10));
        chain.compact(Timestamp::ZERO, usize::MAX); // 10 is packed now
        chain.force_abort_at(ts(20)); // live record
        chain.force_abort_at(ts(30)); // unknown: pre-insert
        match chain.read_at(ts(20)).unwrap() {
            ChainRead::Live(rec) => assert_eq!(rec.load(), Functor::Aborted),
            ChainRead::Final(..) => panic!("20 is above the watermark"),
        }
        assert!(matches!(
            chain.read_at(ts(30)),
            Some(ChainRead::Live(rec)) if rec.load() == Functor::Aborted
        ));
        // Late install after the pre-abort loses (first write wins).
        assert!(!chain.insert(ts(30), Functor::value_i64(9)));
    }

    #[test]
    fn snapshot_read_skips_aborts_and_flags_pending() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(1));
        chain.insert(ts(20), Functor::Aborted);
        chain.insert(ts(30), Functor::add(1)); // pending
        assert_eq!(chain.snapshot_read(ts(5)), SnapshotRead::Missing);
        // Aborted 20 is skipped in one lock acquisition.
        match chain.snapshot_read(ts(25)) {
            SnapshotRead::Found(v, form) => {
                assert_eq!(v, ts(10));
                assert_eq!(form.value().unwrap().as_i64(), Some(1));
            }
            other => panic!("expected Found, got {other:?}"),
        }
        // A bound covering the uncomputed record reports Pending.
        assert_eq!(chain.snapshot_read(ts(35)), SnapshotRead::Pending);
        // Packed section answers identically after compaction.
        chain.advance_watermark(ts(20));
        chain.compact(Timestamp::ZERO, usize::MAX);
        match chain.snapshot_read(ts(25)) {
            SnapshotRead::Found(v, _) => assert_eq!(v, ts(10)),
            other => panic!("expected Found, got {other:?}"),
        }
        // Tombstones read as Found(Deleted), not Missing.
        chain.insert(ts(40), Functor::Deleted);
        assert!(matches!(
            chain.snapshot_read(ts(45)),
            SnapshotRead::Found(v, FinalForm::Deleted) if v == ts(40)
        ));
        // Once compaction folds history past a bound, the read reports
        // Folded carrying a retry bound instead of a stale answer — and at
        // that retry bound the chain answers exactly again.
        chain.advance_watermark(ts(40));
        chain.compact(ts(40), 1);
        assert!(chain.compacted_floor() > Timestamp::ZERO);
        let SnapshotRead::Folded(retry) = chain.snapshot_read(ts(5)) else {
            panic!("read below the fold must report Folded");
        };
        assert!(retry > chain.compacted_floor());
        assert!(matches!(
            chain.snapshot_read(retry),
            SnapshotRead::Found(..)
        ));
    }

    #[test]
    fn compact_is_invisible_to_reads_at_retained_bounds() {
        // Build a mixed chain, snapshot reads at every bound, compact, and
        // compare: every bound at or above the oldest surviving committed
        // version must read identically.
        let chain = VersionChain::new();
        for v in 1..=30u64 {
            let f = match v % 5 {
                0 => Functor::Aborted,
                _ => Functor::value_i64(v as i64),
            };
            chain.insert(ts(v), f);
        }
        chain.advance_watermark(ts(30));
        let read_value = |c: &VersionChain, bound: Timestamp| -> Option<(Timestamp, Option<i64>)> {
            let mut cursor = bound;
            loop {
                let read = c.floor(cursor)?;
                let (v, form) = match read {
                    ChainRead::Final(v, form) => (v, form),
                    ChainRead::Live(rec) => (
                        rec.version(),
                        rec.final_form().expect("all records settled"),
                    ),
                };
                if form.is_aborted() {
                    cursor = v.pred();
                } else {
                    return Some((v, form.value().and_then(Value::as_i64)));
                }
            }
        };
        let before: Vec<_> = (1..=31u64).map(|b| read_value(&chain, ts(b))).collect();
        chain.compact(ts(25), 3);
        for (i, b) in (1..=31u64).enumerate() {
            let oldest_kept = chain
                .versions()
                .iter()
                .find(|v| {
                    matches!(
                        chain.read_at(**v),
                        Some(ChainRead::Final(_, form)) if !form.is_aborted()
                    )
                })
                .copied()
                .unwrap();
            if ts(b) >= oldest_kept {
                assert_eq!(
                    read_value(&chain, ts(b)),
                    before[i],
                    "read at {b} changed after compaction"
                );
            }
        }
    }
}
