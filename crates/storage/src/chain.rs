//! Per-key ordered version chains with value watermarks (Fig 4).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aloha_common::Timestamp;
use aloha_functor::Functor;
use parking_lot::RwLock;

/// One version record: a version number plus a functor cell that is replaced
/// by its final form at most once.
///
/// The paper stores `<version, f-type, f-argument>` triples; here the functor
/// enum carries both the f-type and the f-argument. The cell is guarded by a
/// light reader-writer lock: once a record sinks below its key's value
/// watermark it is immutable and the lock is always uncontended.
#[derive(Debug)]
pub struct Record {
    version: Timestamp,
    cell: RwLock<Functor>,
}

impl Record {
    fn new(version: Timestamp, functor: Functor) -> Record {
        Record {
            version,
            cell: RwLock::new(functor),
        }
    }

    /// The version (transaction timestamp) of this record.
    pub fn version(&self) -> Timestamp {
        self.version
    }

    /// Snapshot of the current functor.
    pub fn load(&self) -> Functor {
        self.cell.read().clone()
    }

    /// Settled-read fast path: the final form (`VALUE`/`ABORTED`/`DELETED`)
    /// if the record is already settled, `None` if it still needs the
    /// computing phase. Unlike [`Record::load`], a pending record costs one
    /// lock-guarded enum check here — no clone of the full functor (user
    /// f-arguments, read set and all) just to discover it isn't final.
    /// Records at or below their chain's value watermark always return
    /// `Some`.
    pub fn final_form(&self) -> Option<Functor> {
        let guard = self.cell.read();
        guard.is_final().then(|| guard.clone())
    }

    /// Whether the record already holds a final form.
    pub fn is_final(&self) -> bool {
        self.cell.read().is_final()
    }

    /// Replaces the functor with its final form, once.
    ///
    /// Returns `true` if this call performed the replacement, `false` if the
    /// record was already final (another thread computed it first — benign,
    /// because functor computation is deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `final_form` is not final; storing a non-final functor here
    /// would violate the compute-at-most-once invariant.
    pub fn finalize(&self, final_form: Functor) -> bool {
        assert!(
            final_form.is_final(),
            "finalize called with non-final functor {final_form}"
        );
        let mut guard = self.cell.write();
        if guard.is_final() {
            return false;
        }
        *guard = final_form;
        true
    }

    /// Forcibly rewrites the record to `ABORTED`.
    ///
    /// Used by the coordinator's second-round abort (§V-A2) for versions
    /// installed in the current epoch; such versions are not yet visible to
    /// readers, so the rewrite is safe even if the record was final.
    pub fn force_abort(&self) {
        *self.cell.write() = Functor::Aborted;
    }
}

/// The ordered multi-version chain for one key.
///
/// Versions are kept sorted ascending. Writes arrive in nearly sorted order
/// (timestamps are drawn from synchronized clocks within an epoch), so
/// insertion is amortized O(1): push at the tail and rotate backwards past
/// the few out-of-order predecessors. The paper uses a linked list of arrays;
/// a contiguous growable vector gives the same ordered-scan behavior with
/// better locality in Rust.
///
/// # Examples
///
/// ```
/// use aloha_common::Timestamp;
/// use aloha_functor::Functor;
/// use aloha_storage::VersionChain;
///
/// let chain = VersionChain::new();
/// chain.insert(Timestamp::from_raw(10), Functor::value_i64(1));
/// chain.insert(Timestamp::from_raw(5), Functor::value_i64(0));
/// let rec = chain.latest_at_or_below(Timestamp::from_raw(7)).unwrap();
/// assert_eq!(rec.version(), Timestamp::from_raw(5));
/// ```
#[derive(Debug, Default)]
pub struct VersionChain {
    records: RwLock<Vec<Arc<Record>>>,
    /// Versions `<=` this are all final (the paper's *value watermark*;
    /// `Timestamp::ZERO.raw()` when nothing is settled).
    watermark: AtomicU64,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> VersionChain {
        VersionChain::default()
    }

    /// Inserts a record, keeping versions sorted.
    ///
    /// Returns `false` (and changes nothing) if the version already exists:
    /// installs are idempotent so that deferred writes and retried messages
    /// are harmless.
    pub fn insert(&self, version: Timestamp, functor: Functor) -> bool {
        let mut recs = self.records.write();
        // Fast path: strictly ascending append.
        if recs.last().is_none_or(|r| r.version < version) {
            recs.push(Arc::new(Record::new(version, functor)));
            return true;
        }
        match recs.binary_search_by_key(&version, |r| r.version) {
            Ok(_) => false,
            Err(pos) => {
                recs.insert(pos, Arc::new(Record::new(version, functor)));
                true
            }
        }
    }

    /// The record with exactly this version, if present.
    pub fn record_at(&self, version: Timestamp) -> Option<Arc<Record>> {
        let recs = self.records.read();
        recs.binary_search_by_key(&version, |r| r.version)
            .ok()
            .map(|i| Arc::clone(&recs[i]))
    }

    /// The latest record with version `<= bound`, if any (Alg 1 line 17).
    pub fn latest_at_or_below(&self, bound: Timestamp) -> Option<Arc<Record>> {
        let recs = self.records.read();
        let idx = recs.partition_point(|r| r.version <= bound);
        idx.checked_sub(1).map(|i| Arc::clone(&recs[i]))
    }

    /// All records with versions in `[from, to]` that still need computing,
    /// ascending (Alg 1 line 4).
    pub fn uncomputed_in(&self, from: Timestamp, to: Timestamp) -> Vec<Arc<Record>> {
        let recs = self.records.read();
        let start = recs.partition_point(|r| r.version < from);
        recs[start..]
            .iter()
            .take_while(|r| r.version <= to)
            .filter(|r| !r.is_final())
            .map(Arc::clone)
            .collect()
    }

    /// Current value watermark.
    pub fn watermark(&self) -> Timestamp {
        Timestamp::from_raw(self.watermark.load(Ordering::Acquire))
    }

    /// Raises the watermark to at least `to` (Alg 1 lines 7-9: CAS loop).
    pub fn advance_watermark(&self, to: Timestamp) {
        let mut cur = self.watermark.load(Ordering::Acquire);
        while cur < to.raw() {
            match self.watermark.compare_exchange_weak(
                cur,
                to.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the chain has no versions.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// All versions in ascending order (diagnostics and tests).
    pub fn versions(&self) -> Vec<Timestamp> {
        self.records.read().iter().map(|r| r.version).collect()
    }

    /// Snapshot of `(version, functor)` pairs, ascending (diagnostics).
    pub fn dump(&self) -> Vec<(Timestamp, Functor)> {
        self.records
            .read()
            .iter()
            .map(|r| (r.version, r.load()))
            .collect()
    }

    /// Garbage-collects history: drops all records with version `< bound`
    /// except the latest final one at or below `bound`, which readers of
    /// historical snapshots `>= bound` still need. Records above the
    /// watermark are never collected. Returns the number of dropped records.
    pub fn truncate_below(&self, bound: Timestamp) -> usize {
        let effective = bound.min(self.watermark());
        let mut recs = self.records.write();
        let cut = recs.partition_point(|r| r.version <= effective);
        // Keep the newest record at or below the cut as the snapshot base.
        let drop_upto = cut.saturating_sub(1);
        recs.drain(..drop_upto).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::Value;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_raw(v)
    }

    #[test]
    fn insert_keeps_sorted_under_out_of_order_arrivals() {
        let chain = VersionChain::new();
        for v in [50u64, 10, 30, 20, 40] {
            assert!(chain.insert(ts(v), Functor::value_i64(v as i64)));
        }
        assert_eq!(
            chain.versions(),
            vec![ts(10), ts(20), ts(30), ts(40), ts(50)]
        );
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let chain = VersionChain::new();
        assert!(chain.insert(ts(10), Functor::value_i64(1)));
        assert!(!chain.insert(ts(10), Functor::value_i64(2)));
        let rec = chain.record_at(ts(10)).unwrap();
        assert_eq!(rec.load(), Functor::value_i64(1));
    }

    #[test]
    fn latest_at_or_below_finds_floor() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(1));
        chain.insert(ts(20), Functor::value_i64(2));
        assert!(chain.latest_at_or_below(ts(9)).is_none());
        assert_eq!(chain.latest_at_or_below(ts(10)).unwrap().version(), ts(10));
        assert_eq!(chain.latest_at_or_below(ts(15)).unwrap().version(), ts(10));
        assert_eq!(chain.latest_at_or_below(ts(99)).unwrap().version(), ts(20));
    }

    #[test]
    fn finalize_happens_once() {
        let rec = Record::new(ts(5), Functor::add(1));
        assert!(!rec.is_final());
        assert!(rec.finalize(Functor::value_i64(3)));
        assert!(
            !rec.finalize(Functor::value_i64(9)),
            "second finalize must lose"
        );
        assert_eq!(rec.load(), Functor::value_i64(3));
    }

    #[test]
    #[should_panic(expected = "non-final")]
    fn finalize_rejects_non_final_form() {
        let rec = Record::new(ts(5), Functor::add(1));
        rec.finalize(Functor::add(2));
    }

    #[test]
    fn force_abort_overwrites_even_final() {
        let rec = Record::new(ts(5), Functor::Value(Value::from_i64(1)));
        rec.force_abort();
        assert_eq!(rec.load(), Functor::Aborted);
    }

    #[test]
    fn uncomputed_scan_respects_range_and_finality() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::value_i64(0)); // final
        chain.insert(ts(20), Functor::add(1));
        chain.insert(ts(30), Functor::add(2));
        chain.insert(ts(40), Functor::add(3));
        let pending = chain.uncomputed_in(ts(15), ts(30));
        let versions: Vec<_> = pending.iter().map(|r| r.version()).collect();
        assert_eq!(versions, vec![ts(20), ts(30)]);
    }

    #[test]
    fn watermark_advances_monotonically() {
        let chain = VersionChain::new();
        chain.advance_watermark(ts(10));
        chain.advance_watermark(ts(5)); // no-op
        assert_eq!(chain.watermark(), ts(10));
        chain.advance_watermark(ts(30));
        assert_eq!(chain.watermark(), ts(30));
    }

    #[test]
    fn concurrent_watermark_advance_takes_max() {
        let chain = Arc::new(VersionChain::new());
        let handles: Vec<_> = (1..=8u64)
            .map(|i| {
                let c = Arc::clone(&chain);
                std::thread::spawn(move || c.advance_watermark(ts(i * 100)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(chain.watermark(), ts(800));
    }

    #[test]
    fn truncate_keeps_snapshot_base_and_unsettled_tail() {
        let chain = VersionChain::new();
        for v in [10u64, 20, 30, 40] {
            chain.insert(ts(v), Functor::value_i64(v as i64));
        }
        chain.advance_watermark(ts(30));
        let dropped = chain.truncate_below(ts(30));
        assert_eq!(dropped, 2); // 10 and 20 go; 30 stays as base; 40 unsettled
        assert_eq!(chain.versions(), vec![ts(30), ts(40)]);
    }

    #[test]
    fn truncate_never_crosses_watermark() {
        let chain = VersionChain::new();
        chain.insert(ts(10), Functor::add(1));
        chain.insert(ts(20), Functor::add(1));
        // watermark still ZERO: nothing settled, nothing may be dropped
        assert_eq!(chain.truncate_below(ts(99)), 0);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn concurrent_inserts_preserve_order_and_count() {
        let chain = Arc::new(VersionChain::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&chain);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        c.insert(ts(t * 1000 + i + 1), Functor::value_i64(0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let versions = chain.versions();
        assert_eq!(versions.len(), 1000);
        assert!(
            versions.windows(2).all(|w| w[0] < w[1]),
            "versions must stay sorted"
        );
    }
}
