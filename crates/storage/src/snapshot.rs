//! Checkpointing: serialize a partition's settled state and restore it.
//!
//! ALOHA-DB "is able to leverage the fault tolerance strategies of
//! replication, logging, and checkpointing described in [ALOHA-KV]"
//! (§III-A). This module implements the checkpoint half: a consistent
//! snapshot of every key's latest committed value at a settled timestamp,
//! in a self-describing binary format, plus restore into a fresh store.

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Error, Key, Result, Timestamp, Value};
use aloha_functor::Functor;

use crate::partition::{ComputeEnv, Partition};

/// Magic header identifying a checkpoint blob.
const MAGIC: &[u8; 8] = b"ALOHACP1";

/// Serializes the settled state of `partition` at `at` — for every key, the
/// latest committed value visible at `at`. Deleted and never-written keys
/// are omitted.
///
/// The caller must pass a settled timestamp (at or below the visibility
/// bound); functors at or below `at` are computed on demand while walking.
///
/// # Errors
///
/// Propagates compute-environment failures from on-demand computing.
pub fn write_checkpoint(
    partition: &Partition,
    at: Timestamp,
    env: &dyn ComputeEnv,
) -> Result<Vec<u8>> {
    let mut keys: Vec<Key> = Vec::new();
    partition
        .store()
        .for_each_chain(|key, _| keys.push(key.clone()));
    keys.sort();

    let mut w = Writer::new();
    w.put_bytes(MAGIC);
    w.put_u64(at.raw());
    let mut entries = 0u32;
    let mut body = Writer::new();
    for key in &keys {
        let read = partition.get(key, at, env)?;
        if let Some(value) = read.value {
            body.put_bytes(key.as_bytes());
            body.put_u64(read.version.raw());
            body.put_bytes(value.as_bytes());
            entries += 1;
        }
    }
    w.put_u32(entries);
    let mut out = w.into_bytes();
    out.extend_from_slice(&body.into_bytes());
    Ok(out)
}

/// Restores a checkpoint into `partition`: every entry is installed as a
/// committed `VALUE` at its original version, so historical reads at or
/// after the checkpoint timestamp behave as before the failure.
///
/// # Errors
///
/// Returns [`Error::Codec`] for malformed blobs.
pub fn restore_checkpoint(partition: &Partition, blob: &[u8]) -> Result<Timestamp> {
    let mut r = Reader::new(blob);
    let magic = r.get_bytes()?;
    if magic != MAGIC {
        return Err(Error::Codec("not an ALOHA checkpoint (bad magic)".into()));
    }
    let at = Timestamp::from_raw(r.get_u64()?);
    let entries = r.get_u32()?;
    for _ in 0..entries {
        let key = Key::from(r.get_bytes()?);
        let version = Timestamp::from_raw(r.get_u64()?);
        let value = Value::from(r.get_bytes()?.to_vec());
        // Settle, not put: a shipped WAL frame may already hold this exact
        // version as a pending functor (the replica feed activates before
        // the bootstrap checkpoint is cut), and a first-write-wins put would
        // leave that record non-final under the watermark raised below —
        // unreadable forever.
        let chain = partition.store().chain_or_create(&key);
        chain.settle_at(version, Functor::Value(value));
        // The restored record is settled by definition.
        chain.advance_watermark(version);
    }
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::LocalOnlyEnv;
    use aloha_common::PartitionId;
    use aloha_functor::HandlerRegistry;
    use std::sync::Arc;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_raw(v)
    }

    fn partition() -> Partition {
        Partition::new(PartitionId(0), 1, Arc::new(HandlerRegistry::new()))
    }

    #[test]
    fn checkpoint_round_trips_settled_state() {
        let p = partition();
        for i in 0..20u32 {
            let k = Key::from_parts(&[b"k", &i.to_be_bytes()]);
            p.install(&k, ts(10), Functor::value_i64(i as i64)).unwrap();
            p.install(&k, ts(20), Functor::add(100)).unwrap();
        }
        let blob = write_checkpoint(&p, ts(25), &LocalOnlyEnv).unwrap();

        let restored = partition();
        let at = restore_checkpoint(&restored, &blob).unwrap();
        assert_eq!(at, ts(25));
        for i in 0..20u32 {
            let k = Key::from_parts(&[b"k", &i.to_be_bytes()]);
            let read = restored.get(&k, ts(25), &LocalOnlyEnv).unwrap();
            assert_eq!(read.value.unwrap().as_i64(), Some(i as i64 + 100));
        }
    }

    #[test]
    fn checkpoint_respects_snapshot_bound() {
        let p = partition();
        let k = Key::from("acct");
        p.install(&k, ts(10), Functor::value_i64(1)).unwrap();
        p.install(&k, ts(30), Functor::value_i64(2)).unwrap();
        // Snapshot between the versions sees only the first.
        let blob = write_checkpoint(&p, ts(20), &LocalOnlyEnv).unwrap();
        let restored = partition();
        restore_checkpoint(&restored, &blob).unwrap();
        let read = restored.get(&k, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        assert_eq!(read.value.unwrap().as_i64(), Some(1));
    }

    #[test]
    fn deleted_keys_are_omitted() {
        let p = partition();
        let k = Key::from("gone");
        p.install(&k, ts(10), Functor::value_i64(1)).unwrap();
        p.install(&k, ts(20), Functor::Deleted).unwrap();
        let blob = write_checkpoint(&p, ts(25), &LocalOnlyEnv).unwrap();
        let restored = partition();
        restore_checkpoint(&restored, &blob).unwrap();
        let read = restored.get(&k, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        assert!(read.value.is_none());
    }

    #[test]
    fn restore_settles_a_pending_record_already_at_the_same_version() {
        let primary = partition();
        let k = Key::from("raced");
        primary.install(&k, ts(5), Functor::value_i64(1)).unwrap();
        primary.install(&k, ts(10), Functor::add(2)).unwrap();
        let blob = write_checkpoint(&primary, ts(10), &LocalOnlyEnv).unwrap();

        // A shipped WAL frame raced ahead of the bootstrap: the checkpointed
        // version is already present as a pending functor. Restore must
        // finalize it — a first-write-wins put would leave it non-final
        // under the watermark restore raises, and reads would panic.
        let standby = partition();
        standby.store().put(&k, ts(10), Functor::add(2));
        let at = restore_checkpoint(&standby, &blob).unwrap();
        assert_eq!(at, ts(10));
        let read = standby.get(&k, ts(10), &LocalOnlyEnv).unwrap();
        assert_eq!(read.version, ts(10));
        assert_eq!(read.value.unwrap().as_i64(), Some(3));
    }

    #[test]
    fn restored_history_supports_historical_reads() {
        let p = partition();
        let k = Key::from("h");
        p.install(&k, ts(10), Functor::value_i64(7)).unwrap();
        let blob = write_checkpoint(&p, ts(15), &LocalOnlyEnv).unwrap();
        let restored = partition();
        restore_checkpoint(&restored, &blob).unwrap();
        // Reading below the original version finds nothing; at it, the value.
        assert!(restored
            .get(&k, ts(9), &LocalOnlyEnv)
            .unwrap()
            .value
            .is_none());
        assert_eq!(
            restored
                .get(&k, ts(10), &LocalOnlyEnv)
                .unwrap()
                .value
                .unwrap()
                .as_i64(),
            Some(7)
        );
    }

    #[test]
    fn garbage_blob_is_rejected() {
        let restored = partition();
        assert!(restore_checkpoint(&restored, b"nonsense").is_err());
        let mut w = Writer::new();
        w.put_bytes(b"WRONGMAG");
        assert!(restore_checkpoint(&restored, &w.into_bytes()).is_err());
    }

    #[test]
    fn checkpoint_of_empty_partition_is_valid() {
        let p = partition();
        let blob = write_checkpoint(&p, ts(5), &LocalOnlyEnv).unwrap();
        let restored = partition();
        assert_eq!(restore_checkpoint(&restored, &blob).unwrap(), ts(5));
        assert_eq!(restored.store().key_count(), 0);
    }
}
