//! File-backed durable log segments with epoch group commit (§III-A).
//!
//! The in-memory log of [`crate::wal`] gives the codec; this module gives it
//! a crash-durable home. Records are appended to length-delimited,
//! CRC32-checksummed segment files and made durable with **epoch group
//! commit**: the records accumulated during an epoch are flushed (and,
//! policy permitting, fsync'd) once at epoch close, amortizing the sync cost
//! across every transaction of the epoch — the same amortization trick the
//! epoch state machine already plays with visibility.
//!
//! Periodic watermark checkpoints ([`DurableLog::install_checkpoint`])
//! persist a settled snapshot and truncate segments whose every record the
//! snapshot covers, bounding recovery time and disk use.
//!
//! Recovery ([`DurableLog::open`]) scans segments in sequence order,
//! validates each frame's checksum, and stops cleanly at the last valid
//! record: a torn tail on the final segment is the expected artifact of a
//! crash mid-append, while damage anywhere else is reported as corruption.
//! Either way the valid prefix is returned and nothing partial is applied.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aloha_common::{Counter, Error, Result, StatsSnapshot};
use parking_lot::Mutex;

/// Magic header opening every segment file.
const SEG_MAGIC: &[u8; 8] = b"ALOHAWL1";
/// Segment file name prefix (`wal-<seq>.log`).
const SEG_PREFIX: &str = "wal-";
/// Segment file name suffix.
const SEG_SUFFIX: &str = ".log";
/// Checkpoint file name prefix (`checkpoint-<version>.ckpt`).
const CKPT_PREFIX: &str = "checkpoint-";
/// Checkpoint file name suffix.
const CKPT_SUFFIX: &str = ".ckpt";
/// Frame header: u32 payload+version length, u32 CRC32, u64 version.
const FRAME_HEADER: usize = 4 + 4;

/// When the log pays for an `fsync`.
///
/// `write()`d bytes survive a process crash (they live in the page cache);
/// the fsync policy decides what survives a machine crash, and is the knob
/// the durability ablation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fsync {
    /// Sync once per epoch group commit — every settled epoch is
    /// machine-crash durable.
    EveryEpoch,
    /// Sync every N group commits — bounded-loss middle ground.
    EveryN(u32),
    /// Never sync; durability rides on the page cache alone.
    Never,
}

impl std::fmt::Display for Fsync {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fsync::EveryEpoch => write!(f, "every-epoch"),
            Fsync::EveryN(n) => write!(f, "every-{n}"),
            Fsync::Never => write!(f, "never"),
        }
    }
}

/// Configuration for a [`DurableLog`].
#[derive(Debug, Clone)]
pub struct DurableLogConfig {
    /// Directory holding segment and checkpoint files.
    pub dir: PathBuf,
    /// Group-commit sync policy.
    pub fsync: Fsync,
    /// Rotate to a new segment once the live one exceeds this many bytes.
    pub segment_bytes: u64,
    /// Flush every append batch to the kernel (`write(2)`, no fsync) before
    /// it is acknowledged. Off, durability is epoch-granular in both crash
    /// models; on, acknowledged records additionally survive a *process*
    /// kill (SIGKILL) mid-epoch — the page cache keeps them — while
    /// machine-crash durability stays governed by [`Fsync`]. Multi-process
    /// deployments want this: an install ack travels to a remote
    /// coordinator that will commit on the strength of it.
    pub flush_appends: bool,
}

impl DurableLogConfig {
    /// A log in `dir` with epoch-granular fsync and 256 KiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> DurableLogConfig {
        DurableLogConfig {
            dir: dir.into(),
            fsync: Fsync::EveryEpoch,
            segment_bytes: 256 * 1024,
            flush_appends: false,
        }
    }

    /// Overrides the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: Fsync) -> DurableLogConfig {
        self.fsync = fsync;
        self
    }

    /// Overrides the segment rotation threshold.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> DurableLogConfig {
        self.segment_bytes = bytes.max(64);
        self
    }

    /// Enables per-append kernel flushes (process-crash durability for
    /// acknowledged records).
    #[must_use]
    pub fn with_flush_appends(mut self, flush: bool) -> DurableLogConfig {
        self.flush_appends = flush;
        self
    }
}

/// Counters and gauges exported as the `durability` stats subtree.
#[derive(Debug, Default)]
pub struct DurabilityStats {
    /// Bytes appended to segment files (frame headers included).
    pub wal_bytes: Counter,
    /// Records appended.
    pub records: Counter,
    /// Group commits performed.
    pub commits: Counter,
    /// `fsync` calls actually issued (policy-dependent).
    pub fsyncs: Counter,
    /// Segments deleted by checkpoint truncation.
    pub segments_truncated: Counter,
    /// Microseconds the last recovery spent replaying the WAL suffix.
    pub recovery_replay_micros: AtomicU64,
    /// Version of the most recently installed checkpoint.
    pub last_checkpoint_version: AtomicU64,
}

impl DurabilityStats {
    /// Renders the subtree in the unified snapshot schema.
    ///
    /// `current_version` (typically the visibility bound) turns the last
    /// checkpoint version into a `checkpoint_age` gauge: how far the log has
    /// run ahead of the snapshot it would recover from.
    pub fn snapshot(&self, current_version: u64) -> StatsSnapshot {
        let mut s = StatsSnapshot::new("durability");
        s.set_counter("wal_bytes", self.wal_bytes.get());
        s.set_counter("records", self.records.get());
        s.set_counter("commits", self.commits.get());
        s.set_counter("fsyncs", self.fsyncs.get());
        s.set_counter("segments_truncated", self.segments_truncated.get());
        s.set_gauge(
            "recovery_replay_micros",
            self.recovery_replay_micros.load(Ordering::Relaxed),
        );
        let ckpt = self.last_checkpoint_version.load(Ordering::Relaxed);
        s.set_gauge("checkpoint_version", ckpt);
        s.set_gauge("checkpoint_age", current_version.saturating_sub(ckpt));
        s
    }
}

/// Where a recovery scan stopped short, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogDamage {
    /// The final segment ends mid-frame — the expected artifact of a crash
    /// during an append. The valid prefix is intact.
    TornTail {
        /// Sequence number of the damaged segment.
        segment: u64,
        /// Byte offset of the first unusable byte.
        offset: u64,
        /// Human-readable description.
        reason: String,
    },
    /// A frame failed its checksum or a non-final segment is truncated —
    /// damage a clean crash cannot explain.
    Corrupt {
        /// Sequence number of the damaged segment.
        segment: u64,
        /// Byte offset of the offending frame.
        offset: u64,
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for LogDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogDamage::TornTail {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "torn tail in segment {segment} at byte {offset}: {reason}; \
                 replay stops at the last valid record"
            ),
            LogDamage::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corruption in segment {segment} at byte {offset}: {reason}; \
                 replay stops at the last valid record"
            ),
        }
    }
}

/// Everything a recovery scan found: the newest checkpoint, the ordered
/// valid record payloads, and any damage that ended the scan early.
#[derive(Debug)]
pub struct RecoveredLog {
    /// Newest readable checkpoint as `(version, blob)`, if any.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Valid records in append order as `(version, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Why the scan stopped early, if it did. Never a panic, never a
    /// partially applied record.
    pub damage: Option<LogDamage>,
    /// Segment files scanned.
    pub segments_scanned: usize,
}

/// A sealed (no longer written) segment on disk.
#[derive(Debug, Clone)]
struct SegmentMeta {
    seq: u64,
    /// Highest record version in the segment; `0` when empty.
    max_version: u64,
}

struct LogInner {
    writer: BufWriter<File>,
    /// Sequence number of the live segment.
    seq: u64,
    /// Bytes written to the live segment (header included).
    seg_bytes: u64,
    /// Highest version appended to the live segment.
    seg_max_version: u64,
    /// Sealed segments still on disk, oldest first.
    sealed: Vec<SegmentMeta>,
    /// Group commits since the last fsync (for `Fsync::EveryN`).
    commits_since_sync: u32,
    closed: bool,
}

/// A crash-durable, segmented, checksummed log with epoch group commit.
///
/// Thread-safe: appends serialize on an internal mutex; the hot path is a
/// buffered write. Durability is paid once per epoch in [`DurableLog::commit`].
pub struct DurableLog {
    dir: PathBuf,
    fsync: Fsync,
    segment_bytes: u64,
    flush_appends: bool,
    inner: Mutex<LogInner>,
    stats: DurabilityStats,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .finish()
    }
}

fn io_err(context: &str, err: std::io::Error) -> Error {
    Error::Io(format!("{context}: {err}"))
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEG_PREFIX}{seq:08}{SEG_SUFFIX}"))
}

fn checkpoint_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("{CKPT_PREFIX}{version:020}{CKPT_SUFFIX}"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn open_segment(dir: &Path, seq: u64) -> Result<BufWriter<File>> {
    let path = segment_path(dir, seq);
    let file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| io_err("create wal segment", e))?;
    let mut w = BufWriter::new(file);
    w.write_all(SEG_MAGIC)
        .and_then(|()| w.write_all(&seq.to_be_bytes()))
        .map_err(|e| io_err("write segment header", e))?;
    Ok(w)
}

impl DurableLog {
    /// Opens (or creates) the log in `config.dir`, first recovering whatever
    /// a previous incarnation left behind. Appends continue in a fresh
    /// segment, so recovered bytes are never written over.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the directory or segment files cannot be
    /// created or read. Damaged segment *contents* are not an error — they
    /// are reported in [`RecoveredLog::damage`] with the valid prefix.
    pub fn open(config: DurableLogConfig) -> Result<(DurableLog, RecoveredLog)> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err("create wal directory", e))?;
        let recovered = scan_dir(&config.dir)?;
        let mut sealed = Vec::new();
        let mut next_seq = 0;
        for (seq, max_version) in &recovered.segment_info {
            sealed.push(SegmentMeta {
                seq: *seq,
                max_version: *max_version,
            });
            next_seq = next_seq.max(seq + 1);
        }
        let writer = open_segment(&config.dir, next_seq)?;
        let stats = DurabilityStats::default();
        if let Some((v, _)) = &recovered.log.checkpoint {
            stats.last_checkpoint_version.store(*v, Ordering::Relaxed);
        }
        let log = DurableLog {
            dir: config.dir,
            fsync: config.fsync,
            segment_bytes: config.segment_bytes,
            flush_appends: config.flush_appends,
            inner: Mutex::new(LogInner {
                writer,
                seq: next_seq,
                seg_bytes: (SEG_MAGIC.len() + 8) as u64,
                seg_max_version: 0,
                sealed,
                commits_since_sync: 0,
                closed: false,
            }),
            stats,
        };
        Ok((log, recovered.log))
    }

    /// Appends one record payload ordered by `version`.
    ///
    /// The bytes reach the buffered writer immediately and the file at the
    /// next flush (rotation, [`commit`](DurableLog::commit), or
    /// [`close`](DurableLog::close)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShuttingDown`] after [`close`](DurableLog::close) —
    /// callers treat that as a failed install, not a silent success — and
    /// [`Error::Io`] on filesystem failures.
    pub fn append(&self, version: u64, payload: &[u8]) -> Result<()> {
        self.append_batch(&[(version, payload.to_vec())])
    }

    /// Appends a batch of `(version, payload)` frames under one lock
    /// acquisition: either every frame lands or (if the log was closed
    /// first) none does. Transactional install batches use this so a kill
    /// can never persist half a batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShuttingDown`] after close, [`Error::Io`] on
    /// filesystem failures.
    pub fn append_batch(&self, frames: &[(u64, Vec<u8>)]) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(Error::ShuttingDown);
        }
        for (version, payload) in frames {
            let mut body = Vec::with_capacity(8 + payload.len());
            body.extend_from_slice(&version.to_be_bytes());
            body.extend_from_slice(payload);
            let crc = crc32(&body);
            inner
                .writer
                .write_all(&(body.len() as u32).to_be_bytes())
                .and_then(|()| inner.writer.write_all(&crc.to_be_bytes()))
                .and_then(|()| inner.writer.write_all(&body))
                .map_err(|e| io_err("append wal record", e))?;
            inner.seg_bytes += (FRAME_HEADER + body.len()) as u64;
            inner.seg_max_version = inner.seg_max_version.max(*version);
            self.stats.wal_bytes.add((FRAME_HEADER + body.len()) as u64);
            self.stats.records.incr();
        }
        if inner.seg_bytes >= self.segment_bytes {
            self.rotate(&mut inner)?;
        } else if self.flush_appends {
            // Hand the batch to the kernel before the caller acknowledges
            // it: a process kill can no longer eat an acked record (the
            // page cache survives); machine-crash durability still waits
            // for the group-commit fsync.
            inner
                .writer
                .flush()
                .map_err(|e| io_err("flush wal append", e))?;
        }
        Ok(())
    }

    /// Seals the live segment and starts the next one.
    fn rotate(&self, inner: &mut LogInner) -> Result<()> {
        inner
            .writer
            .flush()
            .map_err(|e| io_err("flush wal segment", e))?;
        let sealed = SegmentMeta {
            seq: inner.seq,
            max_version: inner.seg_max_version,
        };
        inner.sealed.push(sealed);
        inner.seq += 1;
        inner.writer = open_segment(&self.dir, inner.seq)?;
        inner.seg_bytes = (SEG_MAGIC.len() + 8) as u64;
        inner.seg_max_version = 0;
        Ok(())
    }

    /// Epoch group commit: flushes buffered records and syncs per policy.
    ///
    /// Called once per epoch close (just before the revoke ack), so a
    /// settled epoch implies its records reached the file — and, under
    /// [`Fsync::EveryEpoch`], the disk.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on flush or sync failure. A closed log commits
    /// as a no-op: close already flushed everything.
    pub fn commit(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Ok(());
        }
        inner
            .writer
            .flush()
            .map_err(|e| io_err("flush wal group commit", e))?;
        inner.commits_since_sync += 1;
        let sync = match self.fsync {
            Fsync::EveryEpoch => true,
            Fsync::EveryN(n) => inner.commits_since_sync >= n.max(1),
            Fsync::Never => false,
        };
        if sync {
            inner
                .writer
                .get_ref()
                .sync_data()
                .map_err(|e| io_err("fsync wal segment", e))?;
            inner.commits_since_sync = 0;
            self.stats.fsyncs.incr();
        }
        self.stats.commits.incr();
        Ok(())
    }

    /// Persists a checkpoint blob for `version` (tmp file + rename, so a
    /// crash mid-write never leaves a half checkpoint as the newest), then
    /// deletes sealed segments and older checkpoints the blob fully covers.
    /// Returns the number of segments truncated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failures.
    pub fn install_checkpoint(&self, version: u64, blob: &[u8]) -> Result<usize> {
        let tmp = self.dir.join(format!("{CKPT_PREFIX}{version:020}.tmp"));
        let finalp = checkpoint_path(&self.dir, version);
        let mut f = File::create(&tmp).map_err(|e| io_err("create checkpoint tmp", e))?;
        f.write_all(blob)
            .and_then(|()| f.sync_data())
            .map_err(|e| io_err("write checkpoint", e))?;
        drop(f);
        fs::rename(&tmp, &finalp).map_err(|e| io_err("rename checkpoint", e))?;

        let mut inner = self.inner.lock();
        let mut removed = 0;
        inner.sealed.retain(|seg| {
            // A sealed segment is dead once every record in it is at or
            // below the checkpoint version. Empty segments (max 0) die too.
            if seg.max_version <= version {
                let _ = fs::remove_file(segment_path(&self.dir, seg.seq));
                removed += 1;
                false
            } else {
                true
            }
        });
        drop(inner);
        self.stats.segments_truncated.add(removed as u64);
        self.stats
            .last_checkpoint_version
            .fetch_max(version, Ordering::Relaxed);

        // Older checkpoints are superseded; keep only the newest.
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(v) = parse_numbered(name, CKPT_PREFIX, CKPT_SUFFIX) {
                    if v < version {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(removed)
    }

    /// Flushes, syncs and closes the log. Later appends fail with
    /// [`Error::ShuttingDown`]; later commits are no-ops.
    ///
    /// The sync-on-close models the harness's crash semantics: an in-process
    /// "kill" cannot preempt threads mid-instruction, so every record whose
    /// install was acknowledged has already reached `append` and is flushed
    /// here before the recovery scan reads the directory back.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner.closed = true;
        let _ = inner.writer.flush();
        let _ = inner.writer.get_ref().sync_data();
    }

    /// Whether [`close`](DurableLog::close) has run.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Durability counters for the stats snapshot.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads every valid record currently on disk (flushing first), in
    /// append order. Used by parity snapshots and tests; the hot path never
    /// calls this.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when segment files cannot be read.
    pub fn read_back(&self) -> Result<Vec<(u64, Vec<u8>)>> {
        {
            let mut inner = self.inner.lock();
            if !inner.closed {
                inner
                    .writer
                    .flush()
                    .map_err(|e| io_err("flush before read-back", e))?;
            }
        }
        Ok(scan_dir(&self.dir)?.log.records)
    }
}

struct ScanResult {
    log: RecoveredLog,
    /// `(seq, max_version)` for every segment found on disk.
    segment_info: Vec<(u64, u64)>,
}

/// Scans a log directory: newest readable checkpoint plus every valid
/// record in segment order, stopping at the first damaged frame.
fn scan_dir(dir: &Path) -> Result<ScanResult> {
    let mut seg_seqs: Vec<u64> = Vec::new();
    let mut ckpt_versions: Vec<u64> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read wal directory", e))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_numbered(name, SEG_PREFIX, SEG_SUFFIX) {
            seg_seqs.push(seq);
        } else if let Some(v) = parse_numbered(name, CKPT_PREFIX, CKPT_SUFFIX) {
            ckpt_versions.push(v);
        }
    }
    seg_seqs.sort_unstable();
    ckpt_versions.sort_unstable();

    let checkpoint = ckpt_versions.iter().rev().find_map(|v| {
        fs::read(checkpoint_path(dir, *v))
            .ok()
            .map(|blob| (*v, blob))
    });

    let mut records = Vec::new();
    let mut damage = None;
    let mut segment_info = Vec::new();
    for (idx, seq) in seg_seqs.iter().enumerate() {
        let is_last = idx == seg_seqs.len() - 1;
        let path = segment_path(dir, *seq);
        let mut buf = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| io_err("read wal segment", e))?;
        let (seg_records, seg_damage) = scan_segment(*seq, &buf, is_last);
        let max_version = seg_records.iter().map(|(v, _)| *v).max().unwrap_or(0);
        segment_info.push((*seq, max_version));
        records.extend(seg_records);
        if let Some(d) = seg_damage {
            damage = Some(d);
            break;
        }
    }
    Ok(ScanResult {
        log: RecoveredLog {
            checkpoint,
            records,
            damage,
            segments_scanned: seg_seqs.len(),
        },
        segment_info,
    })
}

/// Walks one segment's frames, returning the valid prefix and the damage
/// that ended the walk, if any.
fn scan_segment(seq: u64, buf: &[u8], is_last: bool) -> (Vec<(u64, Vec<u8>)>, Option<LogDamage>) {
    let mut records = Vec::new();
    let header = SEG_MAGIC.len() + 8;
    let torn = |offset: usize, reason: &str| {
        if is_last {
            LogDamage::TornTail {
                segment: seq,
                offset: offset as u64,
                reason: reason.to_string(),
            }
        } else {
            LogDamage::Corrupt {
                segment: seq,
                offset: offset as u64,
                reason: format!("{reason} in a non-final segment"),
            }
        }
    };
    if buf.len() < header || &buf[..SEG_MAGIC.len()] != SEG_MAGIC {
        return (records, Some(torn(0, "missing or invalid segment header")));
    }
    let mut offset = header;
    while offset < buf.len() {
        if buf.len() - offset < FRAME_HEADER {
            return (records, Some(torn(offset, "truncated frame header")));
        }
        let len = u32::from_be_bytes(buf[offset..offset + 4].try_into().expect("checked")) as usize;
        let crc = u32::from_be_bytes(buf[offset + 4..offset + 8].try_into().expect("checked"));
        if len < 8 {
            return (
                records,
                Some(LogDamage::Corrupt {
                    segment: seq,
                    offset: offset as u64,
                    reason: format!("frame length {len} below minimum"),
                }),
            );
        }
        if buf.len() - offset - FRAME_HEADER < len {
            return (records, Some(torn(offset, "truncated frame body")));
        }
        let body = &buf[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
        if crc32(body) != crc {
            return (
                records,
                Some(LogDamage::Corrupt {
                    segment: seq,
                    offset: offset as u64,
                    reason: "checksum mismatch".to_string(),
                }),
            );
        }
        let version = u64::from_be_bytes(body[..8].try_into().expect("checked"));
        records.push((version, body[8..].to_vec()));
        offset += FRAME_HEADER + len;
    }
    (records, None)
}

/// CRC-32 over `data` — the shared workspace implementation, re-exported
/// so WAL tooling keeps its historical import path.
pub use aloha_common::crc::crc32;

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::tempdir::TempDir;

    fn open_fresh(dir: &TempDir) -> DurableLog {
        let (log, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        assert!(rec.records.is_empty());
        log
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_commit_recover_round_trip() {
        let dir = TempDir::new("durable");
        let log = open_fresh(&dir);
        log.append(10, b"alpha").unwrap();
        log.append(20, b"beta").unwrap();
        log.commit().unwrap();
        log.close();

        let (_log2, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        assert!(rec.damage.is_none());
        assert_eq!(
            rec.records,
            vec![(10, b"alpha".to_vec()), (20, b"beta".to_vec())]
        );
    }

    #[test]
    fn reopen_appends_to_a_fresh_segment() {
        let dir = TempDir::new("durable");
        let log = open_fresh(&dir);
        log.append(1, b"one").unwrap();
        log.close();
        let (log2, _) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        log2.append(2, b"two").unwrap();
        log2.close();
        let (_log3, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        assert_eq!(
            rec.records,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
        assert!(rec.segments_scanned >= 2);
    }

    #[test]
    fn rotation_seals_segments_and_checkpoint_truncates_them() {
        let dir = TempDir::new("durable");
        let cfg = DurableLogConfig::new(dir.path()).with_segment_bytes(64);
        let (log, _) = DurableLog::open(cfg).unwrap();
        for v in 1..=20u64 {
            log.append(v, &[0u8; 32]).unwrap();
        }
        log.commit().unwrap();
        // Everything at or below version 20 is covered: all sealed segments die.
        let removed = log.install_checkpoint(20, b"blob").unwrap();
        assert!(removed > 0, "rotation must have sealed segments");
        log.append(21, b"later").unwrap();
        log.close();

        let (_log2, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        assert_eq!(rec.checkpoint, Some((20, b"blob".to_vec())));
        assert_eq!(rec.records, vec![(21, b"later".to_vec())]);
    }

    #[test]
    fn closed_log_rejects_appends() {
        let dir = TempDir::new("durable");
        let log = open_fresh(&dir);
        log.close();
        assert!(matches!(log.append(1, b"x"), Err(Error::ShuttingDown)));
        assert!(log.commit().is_ok(), "commit after close is a no-op");
    }

    #[test]
    fn torn_tail_stops_cleanly_with_description() {
        let dir = TempDir::new("durable");
        let log = open_fresh(&dir);
        log.append(1, b"whole").unwrap();
        log.append(2, b"torn-away").unwrap();
        log.close();
        // Chop the last record in half.
        let path = segment_path(dir.path(), 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (_log2, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        assert_eq!(rec.records, vec![(1, b"whole".to_vec())]);
        match rec.damage {
            Some(LogDamage::TornTail { segment: 0, .. }) => {}
            other => panic!("expected torn tail, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_reports_corruption_after_valid_prefix() {
        let dir = TempDir::new("durable");
        let log = open_fresh(&dir);
        log.append(1, b"good").unwrap();
        log.append(2, b"flipped").unwrap();
        log.close();
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let (_log2, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        assert_eq!(rec.records, vec![(1, b"good".to_vec())]);
        let damage = rec.damage.expect("damage reported");
        assert!(matches!(damage, LogDamage::Corrupt { .. }));
        assert!(damage.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn fsync_policies_count_syncs() {
        let dir = TempDir::new("durable");
        let (every, _) =
            DurableLog::open(DurableLogConfig::new(dir.join("e")).with_fsync(Fsync::EveryEpoch))
                .unwrap();
        let (third, _) =
            DurableLog::open(DurableLogConfig::new(dir.join("n")).with_fsync(Fsync::EveryN(3)))
                .unwrap();
        let (never, _) =
            DurableLog::open(DurableLogConfig::new(dir.join("x")).with_fsync(Fsync::Never))
                .unwrap();
        for _ in 0..6 {
            every.commit().unwrap();
            third.commit().unwrap();
            never.commit().unwrap();
        }
        assert_eq!(every.stats().fsyncs.get(), 6);
        assert_eq!(third.stats().fsyncs.get(), 2);
        assert_eq!(never.stats().fsyncs.get(), 0);
    }

    #[test]
    fn stats_subtree_exposes_checkpoint_age() {
        let dir = TempDir::new("durable");
        let log = open_fresh(&dir);
        log.append(5, b"r").unwrap();
        log.install_checkpoint(5, b"blob").unwrap();
        let snap = log.stats().snapshot(12);
        assert_eq!(snap.gauge("checkpoint_version"), Some(5));
        assert_eq!(snap.gauge("checkpoint_age"), Some(7));
        assert_eq!(snap.counter("records"), Some(1));
    }
}
