//! Algorithm 1 over one partition: `Compute`, `Func` and `Get`.
//!
//! A [`Partition`] owns the multi-version store of one backend (BE) and knows
//! how to resolve functors into final values. Everything that crosses a
//! partition boundary — remote reads, deferred installs for dependent keys,
//! proactive value pushes — is delegated to a [`ComputeEnv`] implemented by
//! the hosting server, which keeps this module free of networking and
//! independently testable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

use aloha_common::metrics::Counter;
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Error, Key, PartitionId, Result, Timestamp};
use aloha_functor::{
    builtin, ComputeInput, Functor, HandlerOutput, HandlerRegistry, Reads, VersionedRead,
};
use parking_lot::{Mutex, RwLock};

use crate::chain::{ChainRead, FinalForm};
use crate::store::VersionedStore;

/// Cross-partition services needed while computing functors.
///
/// The engine implements this over its RPC layer; single-partition tests use
/// [`LocalOnlyEnv`], which fails loudly if a remote operation is attempted.
pub trait ComputeEnv: Send + Sync {
    /// Reads the latest final value of a key owned by *another* partition at
    /// version `<= bound` (a remote `Get`, triggering remote computing if
    /// necessary).
    ///
    /// # Errors
    ///
    /// Implementations report transport failures; [`LocalOnlyEnv`] always
    /// errors.
    fn remote_get(&self, key: &Key, bound: Timestamp) -> Result<VersionedRead>;

    /// Reads several keys at the same bound, returning the reads in `keys`
    /// order. The default delegates to [`remote_get`](ComputeEnv::remote_get)
    /// per key; the engine overrides this with one batched round trip per
    /// owning partition, fanned out in parallel — the functor-computing
    /// phase's gather step.
    ///
    /// # Errors
    ///
    /// Fails if any single read fails.
    fn remote_get_many(&self, keys: &[Key], bound: Timestamp) -> Result<Vec<VersionedRead>> {
        keys.iter().map(|k| self.remote_get(k, bound)).collect()
    }

    /// Installs a deferred write (dependent key, §IV-E) on the partition that
    /// owns `key`. Must be idempotent; `functor` is always a final form.
    ///
    /// # Errors
    ///
    /// Implementations report transport failures.
    fn install_deferred(&self, key: &Key, version: Timestamp, functor: Functor) -> Result<()>;

    /// Ensures a *remote* determinate key has been computed up to `upto`
    /// (i.e. its value watermark is at least `upto`) before a dependent key
    /// is read (§IV-E).
    ///
    /// # Errors
    ///
    /// Implementations report transport failures.
    fn ensure_computed(&self, key: &Key, upto: Timestamp) -> Result<()>;

    /// Proactively pushes `read` — the value of `source` just below
    /// `version` — toward the partition owning `recipient`, which caches it
    /// for the recipient functor's computing phase (§IV-B recipient set).
    /// Purely an optimization; the default implementation drops the push.
    fn push_value(&self, recipient: &Key, version: Timestamp, source: &Key, read: &VersionedRead) {
        let _ = (recipient, version, source, read);
    }
}

/// A [`ComputeEnv`] for single-partition deployments and unit tests: every
/// cross-partition operation is a hard error.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalOnlyEnv;

impl ComputeEnv for LocalOnlyEnv {
    fn remote_get(&self, key: &Key, _bound: Timestamp) -> Result<VersionedRead> {
        Err(Error::Disconnected(format!(
            "local-only env cannot read remote key {key:?}"
        )))
    }

    fn install_deferred(&self, key: &Key, _version: Timestamp, _functor: Functor) -> Result<()> {
        Err(Error::Disconnected(format!(
            "local-only env cannot install remote key {key:?}"
        )))
    }

    fn ensure_computed(&self, key: &Key, _upto: Timestamp) -> Result<()> {
        Err(Error::Disconnected(format!(
            "local-only env cannot reach remote key {key:?}"
        )))
    }
}

/// How many independently locked shards a [`PushCache`] uses. Power of two,
/// sized so the functor-computing crew (a handful of processors plus the
/// executor's sharded workers) rarely collides on one lock.
const PUSH_CACHE_SHARDS: usize = 16;

/// Cache of proactively pushed values, keyed by (functor version, source
/// key). Entries are written by pushes from determinate/recipient-set
/// computation and consumed by the functor-computing phase instead of issuing
/// a remote read.
///
/// Sharded by the source key's stable hash so concurrent computes of
/// different keys don't serialize on one global lock, and organized as
/// version → (source → read) inside a shard so [`PushCache::get`] is
/// allocation-free (no key clone to build a composite lookup key).
#[derive(Debug, Default)]
struct PushCacheShard {
    map: Mutex<HashMap<u64, HashMap<Key, VersionedRead>>>,
    /// Entry count mirror so [`PushCache::len`] never takes the lock: stats
    /// snapshots used to walk every shard and sum `HashMap::len` under each
    /// lock, serializing against the compute hot path.
    entries: AtomicUsize,
}

#[derive(Debug)]
pub struct PushCache {
    shards: Vec<PushCacheShard>,
    /// Probes answered from the cache ([`PushCache::get`] returning `Some`).
    hits: Counter,
    /// Probes that fell through to a store or remote read.
    misses: Counter,
}

impl Default for PushCache {
    fn default() -> PushCache {
        PushCache {
            shards: (0..PUSH_CACHE_SHARDS)
                .map(|_| PushCacheShard::default())
                .collect(),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }
}

impl PushCache {
    /// Creates an empty cache.
    pub fn new() -> PushCache {
        PushCache::default()
    }

    fn shard(&self, source: &Key) -> &PushCacheShard {
        &self.shards[(source.stable_hash() % PUSH_CACHE_SHARDS as u64) as usize]
    }

    /// Stores a pushed value.
    pub fn insert(&self, version: Timestamp, source: Key, read: VersionedRead) {
        let shard = self.shard(&source);
        let mut map = shard.map.lock();
        if map
            .entry(version.raw())
            .or_default()
            .insert(source, read)
            .is_none()
        {
            shard.entries.fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    /// Looks up a pushed value (non-consuming: several functors of the same
    /// transaction on this partition may read the same source key). Every
    /// probe lands in the hit/miss counters, so the `memory` stats subtree
    /// can report how often the cache short-circuits a read's first hop.
    pub fn get(&self, version: Timestamp, source: &Key) -> Option<VersionedRead> {
        let found = self
            .shard(source)
            .map
            .lock()
            .get(&version.raw())
            .and_then(|by_source| by_source.get(source))
            .cloned();
        match &found {
            Some(_) => self.hits.incr(),
            None => self.misses.incr(),
        }
        found
    }

    /// Probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Probes that missed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops entries for versions below `bound`; called when history settles.
    pub fn clear_below(&self, bound: Timestamp) {
        for shard in &self.shards {
            let mut map = shard.map.lock();
            let mut removed = 0;
            map.retain(|v, by_source| {
                if *v >= bound.raw() {
                    true
                } else {
                    removed += by_source.len();
                    false
                }
            });
            if removed > 0 {
                shard.entries.fetch_sub(removed, AtomicOrdering::Relaxed);
            }
        }
    }

    /// Number of cached pushes. Lock-free: reads the shard counters, so
    /// stats snapshots don't contend with the computing phase.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.entries.load(AtomicOrdering::Relaxed))
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A single dependent-key rule: maps a key to its determinate key, if any.
pub type DependencyFn = dyn Fn(&Key) -> Option<Key> + Send + Sync;

/// Schema-level rules mapping a dependent key to its determinate key
/// (§IV-E key dependency).
///
/// Example: in TPC-C the rows of the Order/NewOrder/OrderLine tables are
/// dependent keys whose order id is assigned by the determinate functor on
/// the district's `next_o_id` key; the registered rule maps each such row key
/// to that district key.
#[derive(Default)]
pub struct DependencyRules {
    rules: Vec<Arc<DependencyFn>>,
}

impl DependencyRules {
    /// Creates an empty rule set.
    pub fn new() -> DependencyRules {
        DependencyRules::default()
    }

    /// Adds a rule. Rules are consulted in registration order; the first
    /// `Some` wins.
    pub fn add(&mut self, rule: impl Fn(&Key) -> Option<Key> + Send + Sync + 'static) {
        self.rules.push(Arc::new(rule));
    }

    /// The determinate key governing `key`, if any rule matches.
    pub fn determinate_for(&self, key: &Key) -> Option<Key> {
        self.rules.iter().find_map(|r| r(key))
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl std::fmt::Debug for DependencyRules {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependencyRules")
            .field("rules", &self.rules.len())
            .finish()
    }
}

/// Counters describing one partition's functor-processing activity.
#[derive(Debug, Default)]
pub struct PartitionStats {
    computes: Counter,
    on_demand_computes: Counter,
    remote_reads: Counter,
    push_hits: Counter,
    pushes_sent: Counter,
    deferred_installs: Counter,
    aborted_versions: Counter,
}

impl PartitionStats {
    /// Functors turned into final form by this partition.
    pub fn computes(&self) -> u64 {
        self.computes.get()
    }

    /// Computes triggered synchronously by a read (Alg 1 line 21).
    pub fn on_demand_computes(&self) -> u64 {
        self.on_demand_computes.get()
    }

    /// Read-set gathers that crossed a partition boundary.
    pub fn remote_reads(&self) -> u64 {
        self.remote_reads.get()
    }

    /// Read-set gathers served from the push cache.
    pub fn push_hits(&self) -> u64 {
        self.push_hits.get()
    }

    /// Values proactively pushed toward recipient functors.
    pub fn pushes_sent(&self) -> u64 {
        self.pushes_sent.get()
    }

    /// Deferred (dependent-key) writes installed locally.
    pub fn deferred_installs(&self) -> u64 {
        self.deferred_installs.get()
    }

    /// Versions rewritten to `ABORTED` by coordinator rollback.
    pub fn aborted_versions(&self) -> u64 {
        self.aborted_versions.get()
    }

    /// Exports these counters as one node of the unified stats tree.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("computes", self.computes());
        node.set_counter("on_demand_computes", self.on_demand_computes());
        node.set_counter("remote_reads", self.remote_reads());
        node.set_counter("push_hits", self.push_hits());
        node.set_counter("pushes_sent", self.pushes_sent());
        node.set_counter("deferred_installs", self.deferred_installs());
        node.set_counter("aborted_versions", self.aborted_versions());
        node
    }
}

/// One backend's partition: storage plus Algorithm 1.
pub struct Partition {
    id: PartitionId,
    total_partitions: u16,
    store: VersionedStore,
    registry: Arc<HandlerRegistry>,
    deps: RwLock<DependencyRules>,
    push_cache: PushCache,
    stats: PartitionStats,
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("id", &self.id)
            .field("keys", &self.store.key_count())
            .finish()
    }
}

impl Partition {
    /// Creates an empty partition `id` of `total_partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `total_partitions` is zero or `id` is out of range.
    pub fn new(
        id: PartitionId,
        total_partitions: u16,
        registry: Arc<HandlerRegistry>,
    ) -> Partition {
        assert!(
            total_partitions > 0,
            "cluster must have at least one partition"
        );
        assert!(id.0 < total_partitions, "partition id {id} out of range");
        Partition {
            id,
            total_partitions,
            store: VersionedStore::new(),
            registry,
            deps: RwLock::new(DependencyRules::new()),
            push_cache: PushCache::new(),
            stats: PartitionStats::default(),
        }
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Total partitions in the cluster (for key routing).
    pub fn total_partitions(&self) -> u16 {
        self.total_partitions
    }

    /// Whether this partition owns `key` under hash partitioning.
    pub fn owns(&self, key: &Key) -> bool {
        key.partition(self.total_partitions) == self.id
    }

    /// Underlying store (read-mostly diagnostics and loaders).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Processing statistics.
    pub fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// The push cache (exposed so the hosting server can deliver pushes).
    pub fn push_cache(&self) -> &PushCache {
        &self.push_cache
    }

    /// Registers a dependent-key rule (§IV-E).
    pub fn add_dependency_rule(&self, rule: impl Fn(&Key) -> Option<Key> + Send + Sync + 'static) {
        self.deps.write().add(rule);
    }

    /// Installs a functor at `version` for `key` (the write-only phase).
    /// Idempotent per (key, version).
    ///
    /// Epoch-validity checks (`Put` requires the version to be within the
    /// epoch validity period, §III-D) are enforced by the hosting BE, which
    /// knows the current authorization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchPartition`] if `key` is not owned by this
    /// partition — installing a foreign key indicates a routing bug.
    pub fn install(&self, key: &Key, version: Timestamp, functor: Functor) -> Result<()> {
        if !self.owns(key) {
            return Err(Error::NoSuchPartition(key.partition(self.total_partitions)));
        }
        self.store.put(key, version, functor);
        Ok(())
    }

    /// Installs a row during initial database load, bypassing ownership
    /// routing checks in single-partition test setups but still storing only
    /// owned keys.
    pub fn load(&self, key: &Key, functor: Functor) {
        self.store.put(key, Timestamp::ZERO.succ(), functor);
    }

    /// Rewrites (key, version) to `ABORTED`: the coordinator's second-round
    /// rollback for a transaction that failed the install phase (§V-A2).
    /// Tolerates the abort arriving before the install.
    pub fn abort_version(&self, key: &Key, version: Timestamp) {
        // If the abort raced ahead of the install, this leaves a pre-aborted
        // record that the (idempotent) install will then not overwrite.
        self.store.chain_or_create(key).force_abort_at(version);
        self.stats.aborted_versions.incr();
    }

    /// Current value watermark for `key` ([`Timestamp::ZERO`] if unknown).
    pub fn watermark(&self, key: &Key) -> Timestamp {
        self.store
            .chain(key)
            .map_or(Timestamp::ZERO, |c| c.watermark())
    }

    /// Algorithm 1 `Get`: the latest final value of `key` at version
    /// `<= bound`, computing functors on demand and skipping `ABORTED`
    /// versions.
    ///
    /// Returns the version at which the value was found; `value` is `None`
    /// for deleted or never-written keys.
    ///
    /// # Errors
    ///
    /// Propagates [`ComputeEnv`] transport failures and unknown-handler
    /// errors.
    pub fn get(&self, key: &Key, bound: Timestamp, env: &dyn ComputeEnv) -> Result<VersionedRead> {
        // Dependent-key rule: the determinate key's watermark must cover the
        // requested version before this key may be read (§IV-E).
        let determinate = self.deps.read().determinate_for(key);
        if let Some(dk) = determinate {
            if &dk != key {
                if self.owns(&dk) {
                    self.compute(&dk, bound, env)?;
                } else {
                    env.ensure_computed(&dk, bound)?;
                }
            }
        }
        let Some(chain) = self.store.chain(key) else {
            return Ok(VersionedRead::missing());
        };
        let mut cursor = bound;
        loop {
            let Some(read) = chain.floor(cursor) else {
                return Ok(VersionedRead::missing());
            };
            let (version, form) = match read {
                // Compacted fast path: the record is already a packed final
                // form — no lock, no `Arc`, no functor clone.
                ChainRead::Final(version, form) => (version, form),
                ChainRead::Live(rec) => {
                    let form = match rec.final_form() {
                        // Settled fast path: records at or below the
                        // watermark take this branch without cloning a
                        // pending functor's arguments.
                        Some(f) => f,
                        None => {
                            // Alg 1 line 21: the reading thread computes the
                            // functor itself rather than blocking on the
                            // asynchronous processor.
                            self.stats.on_demand_computes.incr();
                            self.compute(key, rec.version(), env)?;
                            rec.final_form().unwrap_or_else(|| {
                                unreachable!("compute left non-final record at {key:?}")
                            })
                        }
                    };
                    (rec.version(), form)
                }
            };
            match form {
                FinalForm::Value(v) => return Ok(VersionedRead::found(version, v)),
                FinalForm::Deleted => {
                    return Ok(VersionedRead {
                        version,
                        value: None,
                    })
                }
                // Alg 1 lines 22-23: skip aborted versions.
                FinalForm::Aborted => cursor = version.pred(),
            }
        }
    }

    /// Algorithm 1 `Compute`: brings `key` to a state where every version
    /// `<= upto` is final, then raises the value watermark to `upto`.
    ///
    /// # Errors
    ///
    /// Propagates [`ComputeEnv`] transport failures and unknown-handler
    /// errors; on error the watermark is left unchanged so a later call
    /// retries the remaining functors.
    pub fn compute(&self, key: &Key, upto: Timestamp, env: &dyn ComputeEnv) -> Result<()> {
        let chain = self.store.chain_or_create(key);
        let watermark = chain.watermark();
        if watermark >= upto {
            return Ok(());
        }
        for rec in chain.uncomputed_in(watermark, upto) {
            self.compute_record(key, &rec, env)?;
        }
        chain.advance_watermark(upto);
        Ok(())
    }

    /// Algorithm 1 `Func` for one record: gather reads, run the handler,
    /// finalize the record, and install deferred writes.
    fn compute_record(
        &self,
        key: &Key,
        rec: &crate::chain::Record,
        env: &dyn ComputeEnv,
    ) -> Result<()> {
        if rec.is_final() {
            return Ok(()); // settled: nothing to clone, nothing to compute
        }
        let functor = rec.load();
        if functor.is_final() {
            return Ok(()); // finalized between the check and the load
        }
        let version = rec.version();

        // Proactive pushes: send this key's pre-version value toward the
        // functors in the recipient set (§IV-B), before our own computation so
        // that recipients on other partitions can proceed without remote
        // reads.
        let recipients = functor.recipient_set().to_vec();
        if !recipients.is_empty() {
            let prev = self.get(key, version.pred(), env)?;
            let mut pushed_local = false;
            for recipient in &recipients {
                if self.owns(recipient) {
                    if !pushed_local {
                        self.push_cache.insert(version, key.clone(), prev.clone());
                        pushed_local = true;
                    }
                } else {
                    env.push_value(recipient, version, key, &prev);
                }
                self.stats.pushes_sent.incr();
            }
        }

        let output = match &functor {
            Functor::Add(_) | Functor::Subtr(_) | Functor::Max(_) | Functor::Min(_) => {
                let prev = self.get(key, version.pred(), env)?;
                match builtin::apply_numeric(&functor, prev.value.as_ref()) {
                    Ok(v) => HandlerOutput::commit(v),
                    // A type mismatch is a logic error: abort this version.
                    Err(_) => HandlerOutput::abort(),
                }
            }
            Functor::User(user) => {
                // Gather the read set: push-cache hits and locally-owned keys
                // resolve immediately; whatever remains remote is fetched in
                // one `remote_get_many` call, which the engine groups by
                // owner into parallel batched round trips instead of one
                // blocking RPC per key.
                let mut reads = Reads::new();
                let mut remote: Vec<Key> = Vec::new();
                for rk in &user.read_set {
                    if let Some(hit) = self.push_cache.get(version, rk) {
                        self.stats.push_hits.incr();
                        reads.insert(rk.clone(), hit);
                    } else if self.owns(rk) {
                        reads.insert(rk.clone(), self.get(rk, version.pred(), env)?);
                    } else {
                        remote.push(rk.clone());
                    }
                }
                if !remote.is_empty() {
                    self.stats.remote_reads.add(remote.len() as u64);
                    let fetched = env.remote_get_many(&remote, version.pred())?;
                    for (rk, read) in remote.into_iter().zip(fetched) {
                        reads.insert(rk, read);
                    }
                }
                let input = ComputeInput {
                    key,
                    version,
                    reads: &reads,
                    args: &user.args,
                };
                match self.registry.get(user.handler) {
                    Ok(handler) => handler.compute(&input),
                    // An unregistered handler is a deployment error; abort the
                    // version rather than wedging the processor, but surface
                    // the error to the caller as well.
                    Err(e) => {
                        rec.finalize(Functor::Aborted);
                        return Err(e);
                    }
                }
            }
            _ => unreachable!("final functors filtered above"),
        };

        // Install deferred writes before publishing our own final form so
        // that the §IV-E watermark rule ("A computed up to ts implies B's
        // deferred writes at ts are present") holds.
        for (dkey, dfunctor) in &output.deferred_writes {
            assert!(
                dfunctor.is_final(),
                "deferred writes must be final forms, got {dfunctor} for {dkey:?}"
            );
            if self.owns(dkey) {
                self.store.put(dkey, version, dfunctor.clone());
                self.stats.deferred_installs.incr();
            } else {
                env.install_deferred(dkey, version, dfunctor.clone())?;
            }
        }

        if rec.finalize(output.outcome.into_functor()) {
            self.stats.computes.incr();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::Value;
    use aloha_functor::{HandlerId, Outcome, UserFunctor};
    use bytes_shim::Bytes;

    // `bytes` is not a direct dev-dependency of this crate; reuse the
    // re-exported type through aloha-functor's public API instead.
    mod bytes_shim {
        pub type Bytes = Vec<u8>;
    }

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_raw(v)
    }

    fn single_partition(registry: HandlerRegistry) -> Partition {
        Partition::new(PartitionId(0), 1, Arc::new(registry))
    }

    #[test]
    fn get_on_empty_partition_is_missing() {
        let p = single_partition(HandlerRegistry::new());
        let read = p.get(&Key::from("nope"), ts(100), &LocalOnlyEnv).unwrap();
        assert_eq!(read, VersionedRead::missing());
    }

    #[test]
    fn numeric_chain_computes_in_order() {
        let p = single_partition(HandlerRegistry::new());
        let k = Key::from("acct");
        p.install(&k, ts(10), Functor::value_i64(100)).unwrap();
        p.install(&k, ts(20), Functor::add(50)).unwrap();
        p.install(&k, ts(30), Functor::subtr(30)).unwrap();
        let read = p.get(&k, ts(99), &LocalOnlyEnv).unwrap();
        assert_eq!(read.value.unwrap().as_i64(), Some(120));
        assert_eq!(read.version, ts(30));
        assert!(p.watermark(&k) >= ts(30));
    }

    #[test]
    fn historical_reads_see_old_versions() {
        let p = single_partition(HandlerRegistry::new());
        let k = Key::from("acct");
        p.install(&k, ts(10), Functor::value_i64(100)).unwrap();
        p.install(&k, ts(20), Functor::add(1)).unwrap();
        let old = p.get(&k, ts(15), &LocalOnlyEnv).unwrap();
        assert_eq!(old.value.unwrap().as_i64(), Some(100));
        assert_eq!(old.version, ts(10));
    }

    #[test]
    fn aborted_versions_are_skipped() {
        let p = single_partition(HandlerRegistry::new());
        let k = Key::from("acct");
        p.install(&k, ts(10), Functor::value_i64(100)).unwrap();
        p.install(&k, ts(20), Functor::add(1)).unwrap();
        p.abort_version(&k, ts(20));
        let read = p.get(&k, ts(99), &LocalOnlyEnv).unwrap();
        assert_eq!(read.value.unwrap().as_i64(), Some(100));
        assert_eq!(read.version, ts(10));
    }

    #[test]
    fn abort_before_install_pre_aborts_version() {
        let p = single_partition(HandlerRegistry::new());
        let k = Key::from("acct");
        p.install(&k, ts(10), Functor::value_i64(7)).unwrap();
        p.abort_version(&k, ts(20)); // abort arrives first
        p.install(&k, ts(20), Functor::value_i64(999)).unwrap(); // late install ignored
        let read = p.get(&k, ts(99), &LocalOnlyEnv).unwrap();
        assert_eq!(read.value.unwrap().as_i64(), Some(7));
    }

    #[test]
    fn deleted_key_reads_as_none_but_reports_version() {
        let p = single_partition(HandlerRegistry::new());
        let k = Key::from("gone");
        p.install(&k, ts(10), Functor::value_i64(1)).unwrap();
        p.install(&k, ts(20), Functor::Deleted).unwrap();
        let read = p.get(&k, ts(99), &LocalOnlyEnv).unwrap();
        assert_eq!(read.version, ts(20));
        assert!(read.value.is_none());
        // Below the tombstone the old value is still visible.
        let old = p.get(&k, ts(15), &LocalOnlyEnv).unwrap();
        assert_eq!(old.value.unwrap().as_i64(), Some(1));
    }

    /// The Figure 5 scenario: T1 multi-writes A=150, B=100; T2 transfers 100
    /// from A to B via numeric functors; T3 conditionally transfers 100 but
    /// aborts because A's balance (50) is below the transfer amount.
    #[test]
    fn figure_five_conditional_transfer() {
        let mut registry = HandlerRegistry::new();
        let a = Key::from("account-a");
        let b = Key::from("account-b");
        // Handler 1: subtract arg from A if A >= arg, else abort.
        let a_for_handler = a.clone();
        registry.register(HandlerId(1), move |input: &ComputeInput<'_>| {
            let balance = input.reads.i64(&a_for_handler).unwrap_or(0);
            let amount = i64::from_be_bytes(input.args.try_into().unwrap());
            if balance < amount {
                HandlerOutput::abort()
            } else {
                HandlerOutput::commit(Value::from_i64(balance - amount))
            }
        });
        // Handler 2: add arg to B if A >= arg, else abort (reads A remotely
        // in the paper; locally here since this test is single-partition).
        let a_for_handler = a.clone();
        let b_for_handler = b.clone();
        registry.register(HandlerId(2), move |input: &ComputeInput<'_>| {
            let a_balance = input.reads.i64(&a_for_handler).unwrap_or(0);
            let b_balance = input.reads.i64(&b_for_handler).unwrap_or(0);
            let amount = i64::from_be_bytes(input.args.try_into().unwrap());
            if a_balance < amount {
                HandlerOutput::abort()
            } else {
                HandlerOutput::commit(Value::from_i64(b_balance + amount))
            }
        });
        let p = single_partition(registry);

        // T1 at version 10000.
        p.install(&a, ts(10_000), Functor::value_i64(150)).unwrap();
        p.install(&b, ts(10_000), Functor::value_i64(100)).unwrap();
        // T2 at version 15480: plain transfer using numeric functors.
        p.install(&a, ts(15_480), Functor::subtr(100)).unwrap();
        p.install(&b, ts(15_480), Functor::add(100)).unwrap();
        // T3 at version 19600: conditional transfer; must abort (A=50 < 100).
        let amount: Bytes = 100i64.to_be_bytes().to_vec();
        p.install(
            &a,
            ts(19_600),
            Functor::User(UserFunctor::new(
                HandlerId(1),
                vec![a.clone()],
                amount.clone(),
            )),
        )
        .unwrap();
        p.install(
            &b,
            ts(19_600),
            Functor::User(UserFunctor::new(
                HandlerId(2),
                vec![a.clone(), b.clone()],
                amount,
            )),
        )
        .unwrap();

        let read_a = p.get(&a, ts(99_999), &LocalOnlyEnv).unwrap();
        let read_b = p.get(&b, ts(99_999), &LocalOnlyEnv).unwrap();
        // T3 aborted on both keys: final visible state is T2's.
        assert_eq!(read_a.value.unwrap().as_i64(), Some(50));
        assert_eq!(read_a.version, ts(15_480));
        assert_eq!(read_b.value.unwrap().as_i64(), Some(200));
        assert_eq!(read_b.version, ts(15_480));
        // The T3 records themselves are finalized as ABORTED.
        let chain_a = p.store().chain(&a).unwrap();
        match chain_a.read_at(ts(19_600)).unwrap() {
            ChainRead::Live(rec) => assert_eq!(rec.load(), Functor::Aborted),
            ChainRead::Final(_, form) => assert!(form.is_aborted()),
        }
    }

    #[test]
    fn money_is_conserved_across_functor_transfers() {
        let p = single_partition(HandlerRegistry::new());
        let a = Key::from("a");
        let b = Key::from("b");
        p.install(&a, ts(1), Functor::value_i64(500)).unwrap();
        p.install(&b, ts(1), Functor::value_i64(500)).unwrap();
        for (i, amount) in [10i64, -20, 30, -40, 50].iter().enumerate() {
            let v = ts(10 + i as u64);
            p.install(&a, v, Functor::subtr(*amount)).unwrap();
            p.install(&b, v, Functor::add(*amount)).unwrap();
        }
        let total = p
            .get(&a, ts(999), &LocalOnlyEnv)
            .unwrap()
            .value
            .unwrap()
            .as_i64()
            .unwrap()
            + p.get(&b, ts(999), &LocalOnlyEnv)
                .unwrap()
                .value
                .unwrap()
                .as_i64()
                .unwrap();
        assert_eq!(total, 1000);
    }

    #[test]
    fn unknown_handler_aborts_version_and_reports_error() {
        let p = single_partition(HandlerRegistry::new());
        let k = Key::from("k");
        p.install(&k, ts(10), Functor::value_i64(5)).unwrap();
        p.install(
            &k,
            ts(20),
            Functor::User(UserFunctor::new(HandlerId(404), vec![], Vec::new())),
        )
        .unwrap();
        let err = p.compute(&k, ts(20), &LocalOnlyEnv).unwrap_err();
        assert!(matches!(err, Error::UnknownHandler(404)));
        // The bad version is aborted; the previous value remains readable.
        let read = p.get(&k, ts(99), &LocalOnlyEnv).unwrap();
        assert_eq!(read.value.unwrap().as_i64(), Some(5));
    }

    #[test]
    fn deferred_writes_install_at_same_version() {
        let mut registry = HandlerRegistry::new();
        let dependent = Key::from("order-row");
        let dep_for_handler = dependent.clone();
        registry.register(HandlerId(1), move |input: &ComputeInput<'_>| {
            let next_id = input.reads.i64(input.key).unwrap_or(0);
            HandlerOutput::commit(Value::from_i64(next_id + 1)).with_deferred(vec![(
                dep_for_handler.clone(),
                Functor::Value(Value::from_i64(next_id)),
            )])
        });
        let p = single_partition(registry);
        let determinate = Key::from("next-order-id");
        p.install(&determinate, ts(10), Functor::value_i64(100))
            .unwrap();
        p.install(
            &determinate,
            ts(20),
            Functor::User(UserFunctor::new(
                HandlerId(1),
                vec![determinate.clone()],
                Vec::new(),
            )),
        )
        .unwrap();
        // Register the §IV-E rule: the dependent row waits on the determinate key.
        let determinate_for_rule = determinate.clone();
        let dependent_for_rule = dependent.clone();
        p.add_dependency_rule(move |k| {
            (k == &dependent_for_rule).then(|| determinate_for_rule.clone())
        });

        // Reading the dependent key triggers computing the determinate one.
        let row = p.get(&dependent, ts(25), &LocalOnlyEnv).unwrap();
        assert_eq!(row.version, ts(20));
        assert_eq!(row.value.unwrap().as_i64(), Some(100));
        let next = p.get(&determinate, ts(25), &LocalOnlyEnv).unwrap();
        assert_eq!(next.value.unwrap().as_i64(), Some(101));
        assert_eq!(p.stats().deferred_installs(), 1);
    }

    #[test]
    fn push_cache_serves_reads_without_remote_access() {
        let mut registry = HandlerRegistry::new();
        let source = Key::from("src");
        let src_for_handler = source.clone();
        registry.register(HandlerId(1), move |input: &ComputeInput<'_>| {
            HandlerOutput::commit(Value::from_i64(
                input.reads.i64(&src_for_handler).unwrap_or(-1),
            ))
        });
        let p = single_partition(registry);
        let target = Key::from("dst");
        p.install(&target, ts(10), Functor::value_i64(0)).unwrap();
        // Pre-populate the push cache as a remote push would.
        p.push_cache().insert(
            ts(20),
            source.clone(),
            VersionedRead::found(ts(5), Value::from_i64(77)),
        );
        p.install(
            &target,
            ts(20),
            Functor::User(UserFunctor::new(HandlerId(1), vec![source], Vec::new())),
        )
        .unwrap();
        // `source` is not stored locally; without the push the LocalOnlyEnv
        // would error. With the cached push the compute succeeds.
        let read = p.get(&target, ts(99), &LocalOnlyEnv).unwrap();
        assert_eq!(read.value.unwrap().as_i64(), Some(77));
        assert_eq!(p.stats().push_hits(), 1);
    }

    #[test]
    fn concurrent_gets_agree_and_compute_once() {
        let p = Arc::new(single_partition(HandlerRegistry::new()));
        let k = Key::from("hot");
        p.install(&k, ts(1), Functor::value_i64(0)).unwrap();
        for v in 2..200u64 {
            p.install(&k, ts(v), Functor::add(1)).unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                let k = k.clone();
                std::thread::spawn(move || {
                    p.get(&k, ts(999), &LocalOnlyEnv)
                        .unwrap()
                        .value
                        .unwrap()
                        .as_i64()
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 198);
        }
        // Every record was finalized exactly once despite racing readers.
        assert_eq!(p.stats().computes(), 198);
    }

    #[test]
    fn install_rejects_foreign_keys() {
        let registry = Arc::new(HandlerRegistry::new());
        let p = Partition::new(PartitionId(0), 8, registry);
        // Find a key that partition 0 does not own.
        let foreign = (0..100u32)
            .map(|i| Key::from_parts(&[b"probe", &i.to_be_bytes()]))
            .find(|k| !p.owns(k))
            .expect("some probe key lands elsewhere");
        let err = p
            .install(&foreign, ts(1), Functor::value_i64(0))
            .unwrap_err();
        assert!(matches!(err, Error::NoSuchPartition(_)));
    }

    #[test]
    fn push_cache_clear_below_drops_settled_entries() {
        let cache = PushCache::new();
        cache.insert(ts(10), Key::from("a"), VersionedRead::missing());
        cache.insert(ts(20), Key::from("b"), VersionedRead::missing());
        cache.clear_below(ts(15));
        assert!(cache.get(ts(10), &Key::from("a")).is_none());
        assert!(cache.get(ts(20), &Key::from("b")).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn outcome_mapping_survives_partition_roundtrip() {
        // Delete outcome through a user handler becomes a tombstone.
        let mut registry = HandlerRegistry::new();
        registry.register(HandlerId(1), |_: &ComputeInput<'_>| HandlerOutput {
            outcome: Outcome::Delete,
            deferred_writes: vec![],
        });
        let p = single_partition(registry);
        let k = Key::from("victim");
        p.install(&k, ts(10), Functor::value_i64(1)).unwrap();
        p.install(
            &k,
            ts(20),
            Functor::User(UserFunctor::new(HandlerId(1), vec![], Vec::new())),
        )
        .unwrap();
        let read = p.get(&k, ts(99), &LocalOnlyEnv).unwrap();
        assert!(read.value.is_none());
        assert_eq!(read.version, ts(20));
    }
}
