//! A windowed closed-loop load driver.
//!
//! Mirrors the paper's measurement methodology (§V-A2): clients submit
//! *batches* of transaction requests ("ALOHA-DB submits a batch of
//! transaction requests in each RPC call, similarly to Calvin") and wait for
//! their completion, so neither system is bottlenecked on per-request
//! round-trips. Each driver thread keeps `window` transactions in flight;
//! offered load is controlled by `threads × window`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use aloha_common::metrics::{duration_micros, Histogram};
use aloha_common::Result;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A benchmark workload bound to a running system.
pub trait Workload: Send + Sync {
    /// In-flight transaction token.
    type Handle: Send;

    /// Generates and submits one transaction (non-blocking beyond the
    /// write-only/submission phase).
    ///
    /// # Errors
    ///
    /// Transport or shutdown failures.
    fn submit(&self, rng: &mut SmallRng) -> Result<Self::Handle>;

    /// Waits for full processing. Returns `true` if the transaction
    /// committed, `false` if it aborted.
    ///
    /// # Errors
    ///
    /// Transport or shutdown failures.
    fn wait(&self, handle: Self::Handle) -> Result<bool>;
}

/// Driver knobs.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Concurrent client threads.
    pub threads: usize,
    /// Transactions kept in flight per thread.
    pub window: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Warm-up duration before measurement starts.
    pub warmup: Duration,
    /// RNG seed base (thread *i* uses `seed + i`).
    pub seed: u64,
    /// Optional random pause of up to this duration between batches.
    ///
    /// A pure closed loop re-submits the moment the previous batch
    /// completes, which synchronizes clients to epoch boundaries and makes
    /// every transaction wait a *full* epoch. Latency-oriented experiments
    /// (Fig 11) set this to roughly the epoch duration so submissions are
    /// uniform in time, as with the paper's independent clients.
    pub pacing: Option<Duration>,
}

impl DriverConfig {
    /// A quick configuration for tests.
    pub fn quick() -> DriverConfig {
        DriverConfig {
            threads: 2,
            window: 8,
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(50),
            seed: 42,
            pacing: None,
        }
    }

    /// Sets the inter-batch pacing bound.
    pub fn with_pacing(mut self, pacing: Duration) -> DriverConfig {
        self.pacing = Some(pacing);
        self
    }
}

/// Aggregated driver-side measurements.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Transactions completed (committed + aborted) in the measured window.
    pub completed: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Submission/wait errors (should be zero outside shutdown races).
    pub errors: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_micros: f64,
    /// Median latency estimate (microseconds).
    pub p50_latency_micros: u64,
    /// Tail latency estimate (microseconds).
    pub p99_latency_micros: u64,
}

impl DriverReport {
    /// Throughput over the measured window, in transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs `workload` with `config.threads` windowed clients and reports
/// throughput and latency over the measured (post-warm-up) window.
pub fn run_windowed<W: Workload>(workload: &W, config: &DriverConfig) -> DriverReport {
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let histogram = Histogram::new();
    let committed = aloha_common::metrics::Counter::new();
    let aborted = aloha_common::metrics::Counter::new();
    let errors = aloha_common::metrics::Counter::new();

    let measured_elapsed = std::thread::scope(|scope| {
        for t in 0..config.threads {
            let workload = &workload;
            let measuring = &measuring;
            let stop = &stop;
            let histogram = &histogram;
            let committed = &committed;
            let aborted = &aborted;
            let errors = &errors;
            let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(t as u64));
            let window = config.window;
            let pacing = config.pacing;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(bound) = pacing {
                        // Decorrelate submissions from epoch boundaries.
                        let nanos = rng.gen_range(0..=bound.as_nanos() as u64);
                        std::thread::sleep(Duration::from_nanos(nanos));
                    }
                    let mut batch = Vec::with_capacity(window);
                    for _ in 0..window {
                        let started = Instant::now();
                        match workload.submit(&mut rng) {
                            Ok(handle) => batch.push((handle, started)),
                            Err(_) => {
                                if measuring.load(Ordering::Relaxed) {
                                    errors.incr();
                                }
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                            }
                        }
                    }
                    for (handle, started) in batch {
                        let result = workload.wait(handle);
                        if !measuring.load(Ordering::Relaxed) {
                            continue;
                        }
                        match result {
                            Ok(true) => {
                                committed.incr();
                                histogram.record(duration_micros(started.elapsed()));
                            }
                            Ok(false) => {
                                aborted.incr();
                                histogram.record(duration_micros(started.elapsed()));
                            }
                            Err(_) => errors.incr(),
                        }
                    }
                }
            });
        }
        std::thread::sleep(config.warmup);
        measuring.store(true, Ordering::Relaxed);
        let measure_start = Instant::now();
        std::thread::sleep(config.duration);
        measuring.store(false, Ordering::Relaxed);
        let elapsed = measure_start.elapsed();
        stop.store(true, Ordering::Relaxed);
        elapsed
    });

    DriverReport {
        completed: committed.get() + aborted.get(),
        committed: committed.get(),
        aborted: aborted.get(),
        errors: errors.get(),
        elapsed: measured_elapsed,
        mean_latency_micros: histogram.mean_micros(),
        p50_latency_micros: histogram.quantile_micros(0.5),
        p99_latency_micros: histogram.quantile_micros(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A synthetic workload that "commits" after a short sleep.
    struct FakeWorkload {
        submitted: AtomicU64,
    }

    impl Workload for FakeWorkload {
        type Handle = Instant;

        fn submit(&self, _rng: &mut SmallRng) -> Result<Instant> {
            self.submitted.fetch_add(1, Ordering::Relaxed);
            Ok(Instant::now())
        }

        fn wait(&self, handle: Instant) -> Result<bool> {
            let target = handle + Duration::from_micros(200);
            while Instant::now() < target {
                std::hint::spin_loop();
            }
            Ok(true)
        }
    }

    #[test]
    fn driver_measures_throughput_and_latency() {
        let w = FakeWorkload {
            submitted: AtomicU64::new(0),
        };
        let report = run_windowed(&w, &DriverConfig::quick());
        assert!(report.completed > 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.completed, report.committed);
        assert!(report.throughput_tps() > 0.0);
        assert!(
            report.mean_latency_micros >= 150.0,
            "{}",
            report.mean_latency_micros
        );
    }

    #[test]
    fn pacing_delays_but_still_completes() {
        let w = FakeWorkload {
            submitted: AtomicU64::new(0),
        };
        let config = DriverConfig::quick().with_pacing(Duration::from_micros(500));
        let report = run_windowed(&w, &config);
        assert!(
            report.completed > 0,
            "paced driver must still make progress"
        );
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn zero_elapsed_reports_zero_throughput() {
        let report = DriverReport {
            completed: 10,
            committed: 10,
            aborted: 0,
            errors: 0,
            elapsed: Duration::ZERO,
            mean_latency_micros: 0.0,
            p50_latency_micros: 0,
            p99_latency_micros: 0,
        };
        assert_eq!(report.throughput_tps(), 0.0);
    }
}
