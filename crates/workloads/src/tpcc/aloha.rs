//! TPC-C on ALOHA-DB: functor transforms, handlers, loader and workload
//! target.
//!
//! * **NewOrder** is the paper's showcase dependent transaction (§IV-E,
//!   §V-A2): the district's `next_o_id` key carries a *determinate functor*
//!   that reads the previous order id, emits the Order/NewOrder/OrderLine
//!   rows as deferred writes at the same version, and commits `next_o_id+1`.
//!   Each stock row gets its own key-level functor applying the TPC-C
//!   quantity rule. The 1 % invalid-item aborts are detected by an
//!   install-time item check on the stock partition; the coordinator then
//!   runs the second abort round.
//! * **Payment** is expressed entirely with numeric functors (`ADD` on
//!   `w_ytd`/`d_ytd`, `SUBTR` on the customer balance) plus a `VALUE` history
//!   row.

use std::sync::Arc;

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Error, Key, Result, ServerId, Value};
use aloha_core::{
    fn_program, Check, Cluster, ClusterBuilder, Database, ProgramId, TxnHandle, TxnOutcome, TxnPlan,
};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};
use rand::rngs::SmallRng;

use super::gen::{gen_new_order, gen_payment, NewOrderReq, PaymentReq, TxnMix};
use super::schema::{ItemRow, OrderLineRow, OrderRow, StockRow};
use super::TpccConfig;

/// NewOrder program id.
pub const NEW_ORDER: ProgramId = ProgramId(11);
/// Payment program id.
pub const PAYMENT: ProgramId = ProgramId(12);
/// Stock-update functor handler.
pub const H_STOCK_UPDATE: HandlerId = HandlerId(21);
/// District NewOrder determinate functor handler.
pub const H_DISTRICT_NEWORDER: HandlerId = HandlerId(22);

/// Registers TPC-C handlers, programs and the §IV-E dependency rule.
pub fn install(builder: &mut ClusterBuilder, cfg: &TpccConfig) {
    let cfg = Arc::new(cfg.clone());
    builder.add_dependency_rule(cfg.dependency_rule());

    // Stock update: read own row, apply the TPC-C quantity rule.
    builder.register_handler(H_STOCK_UPDATE, |input: &ComputeInput<'_>| {
        let mut r = Reader::new(input.args);
        let Ok(qty) = r.get_u32() else {
            return HandlerOutput::abort();
        };
        let Some(raw) = input.reads.value(input.key) else {
            // The stock row must exist (install checks item validity); a
            // missing row is a load bug — abort the version.
            return HandlerOutput::abort();
        };
        let Ok(mut stock) = StockRow::decode(raw) else {
            return HandlerOutput::abort();
        };
        stock.apply_order(qty as i64);
        HandlerOutput::commit(stock.encode())
    });

    // District determinate functor: assigns the order id and defers the
    // order-family row writes (§IV-E key-dependency method).
    let handler_cfg = Arc::clone(&cfg);
    builder.register_handler(H_DISTRICT_NEWORDER, move |input: &ComputeInput<'_>| {
        let Ok(req) = NewOrderReq::decode(input.args) else {
            return HandlerOutput::abort();
        };
        let Some(o_id) = input.reads.i64(input.key) else {
            return HandlerOutput::abort();
        };
        let cfg = &handler_cfg;
        let district_partition = input.key.partition(cfg.partitions).0;
        let mut deferred: Vec<(Key, Functor)> = Vec::with_capacity(req.lines.len() + 2);
        deferred.push((
            cfg.order_key(req.w, req.d, o_id),
            Functor::Value(
                OrderRow {
                    o_id,
                    d_id: req.d,
                    w_id: req.w,
                    c_id: req.c,
                    ol_cnt: req.lines.len() as u32,
                }
                .encode(),
            ),
        ));
        deferred.push((
            cfg.neworder_key(req.w, req.d, o_id),
            Functor::Value(Value::from_i64(o_id)),
        ));
        for (number, line) in req.lines.iter().enumerate() {
            let item_key = cfg.item_key(district_partition, line.i_id);
            // Invalid items abort at install time on the stock partition;
            // by the time this functor computes, every line is valid. The
            // abort below is defense in depth for load bugs.
            let Some(raw) = input.reads.value(&item_key) else {
                return HandlerOutput::abort();
            };
            let Ok(item) = ItemRow::decode(raw) else {
                return HandlerOutput::abort();
            };
            deferred.push((
                cfg.orderline_key(req.w, req.d, o_id, number as u32),
                Functor::Value(
                    OrderLineRow {
                        o_id,
                        number: number as u32,
                        i_id: line.i_id,
                        supply_w: line.supply_w,
                        qty: line.qty,
                        amount_cents: line.qty as i64 * item.price_cents,
                    }
                    .encode(),
                ),
            ));
        }
        HandlerOutput::commit(Value::from_i64(o_id + 1)).with_deferred(deferred)
    });

    // NewOrder transform: one determinate functor on the district plus one
    // stock functor per order line (§V-A2).
    let program_cfg = Arc::clone(&cfg);
    builder.register_program(
        NEW_ORDER,
        fn_program(move |ctx| {
            let req = NewOrderReq::decode(ctx.args)?;
            let cfg = &program_cfg;
            let dnoid = cfg.district_noid_key(req.w, req.d);
            let district_partition = dnoid.partition(cfg.partitions).0;
            let mut read_set = Vec::with_capacity(req.lines.len() + 1);
            read_set.push(dnoid.clone());
            for line in &req.lines {
                read_set.push(cfg.item_key(district_partition, line.i_id));
            }
            let mut plan = TxnPlan::new().write(
                dnoid,
                Functor::User(UserFunctor::new(
                    H_DISTRICT_NEWORDER,
                    read_set,
                    ctx.args.to_vec(),
                )),
            );
            for line in &req.lines {
                let stock_key = cfg.stock_key(line.supply_w, line.i_id);
                let stock_partition = stock_key.partition(cfg.partitions).0;
                let mut args = Writer::new();
                args.put_u32(line.qty);
                plan = plan.write_checked(
                    stock_key.clone(),
                    Functor::User(UserFunctor::new(
                        H_STOCK_UPDATE,
                        vec![stock_key],
                        args.into_bytes(),
                    )),
                    Check::KeyExists(cfg.item_key(stock_partition, line.i_id)),
                );
            }
            Ok(plan)
        }),
    );

    // Payment: pure numeric functors plus a history row.
    let payment_cfg = Arc::clone(&cfg);
    builder.register_program(
        PAYMENT,
        fn_program(move |ctx| {
            let cfg = &payment_cfg;
            if !cfg.supports_payment() {
                return Err(Error::Config(
                    "payment requires the ByWarehouse layout (scaled TPC-C drops w_ytd)".into(),
                ));
            }
            let req = PaymentReq::decode(ctx.args)?;
            let mut history = Writer::new();
            history
                .put_u32(req.w)
                .put_u32(req.d)
                .put_u32(req.c)
                .put_i64(req.amount_cents);
            Ok(TxnPlan::new()
                .write(cfg.wytd_key(req.w), Functor::add(req.amount_cents))
                .write(cfg.dytd_key(req.w, req.d), Functor::add(req.amount_cents))
                .write(
                    cfg.cbal_key(req.c_w, req.c_d, req.c),
                    Functor::subtr(req.amount_cents),
                )
                .write(
                    cfg.history_key(req.w, req.d, req.c, req.unique),
                    Functor::Value(Value::from(history.into_bytes())),
                ))
        }),
    );
}

/// Loads the TPC-C database into an ALOHA cluster.
pub fn load(cluster: &Cluster, cfg: &TpccConfig) {
    // Replicated item catalogue: one copy per partition.
    for p in 0..cfg.partitions {
        for i in 0..cfg.items {
            let row = ItemRow {
                i_id: i,
                name: format!("item-{i}"),
                price_cents: 100 + (i as i64 * 37) % 9_900,
            };
            cluster.load(cfg.item_key(p, i), row.encode());
        }
    }
    for w in 0..cfg.warehouses {
        if cfg.supports_payment() {
            cluster.load(cfg.wytd_key(w), Value::from_i64(0));
        }
        for i in 0..cfg.items {
            let stock = StockRow {
                i_id: i,
                w_id: w,
                quantity: 50 + (i as i64 % 50),
                ytd: 0,
                order_cnt: 0,
            };
            cluster.load(cfg.stock_key(w, i), stock.encode());
        }
        for d in 0..cfg.districts {
            cluster.load(
                cfg.district_noid_key(w, d),
                Value::from_i64(TpccConfig::INITIAL_NEXT_O_ID),
            );
            if cfg.supports_payment() {
                cluster.load(cfg.dytd_key(w, d), Value::from_i64(0));
            }
            for c in 0..cfg.customers_per_district {
                cluster.load(cfg.cbal_key(w, d, c), Value::from_i64(-1_000));
            }
        }
    }
}

/// The ALOHA-DB TPC-C workload target.
#[derive(Debug)]
pub struct AlohaTpcc {
    db: Database,
    cfg: Arc<TpccConfig>,
    mix: TxnMix,
    with_aborts: bool,
}

impl AlohaTpcc {
    /// Binds the workload to a database handle.
    ///
    /// `with_aborts` enables the TPC-C 1 % invalid-item abort requirement
    /// (which the paper's ALOHA-DB honors, unlike Calvin, §V-A2).
    pub fn new(db: Database, cfg: TpccConfig, mix: TxnMix, with_aborts: bool) -> AlohaTpcc {
        AlohaTpcc {
            db,
            cfg: Arc::new(cfg),
            mix,
            with_aborts,
        }
    }
}

impl crate::driver::Workload for AlohaTpcc {
    type Handle = TxnHandle;

    fn submit(&self, rng: &mut SmallRng) -> Result<TxnHandle> {
        match self.mix {
            TxnMix::NewOrderOnly => {
                let req = gen_new_order(rng, &self.cfg, self.with_aborts);
                // Coordinate from the home district's server (clients connect
                // to the FE nearest their data).
                let fe = ServerId(
                    self.cfg
                        .district_noid_key(req.w, req.d)
                        .partition(self.cfg.partitions)
                        .0,
                );
                self.db.execute_at(fe, NEW_ORDER, req.encode())
            }
            TxnMix::PaymentOnly => {
                let req = gen_payment(rng, &self.cfg);
                let fe = ServerId(self.cfg.partition_of_route(req.w));
                self.db.execute_at(fe, PAYMENT, req.encode())
            }
        }
    }

    fn wait(&self, handle: TxnHandle) -> Result<bool> {
        Ok(handle.wait_processed()? == TxnOutcome::Committed)
    }
}
