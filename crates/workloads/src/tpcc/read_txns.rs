//! The remaining TPC-C transaction types, implemented for ALOHA-DB as
//! extensions beyond the paper's NewOrder/Payment evaluation:
//!
//! * **OrderStatus** — read-only: a customer's balance and their most recent
//!   order with its lines. Runs as a §III-B *delayed latest-version read*:
//!   a timestamp is assigned in the current epoch and the reads execute
//!   against that historical snapshot once the epoch completes.
//! * **StockLevel** — read-only: how many of a district's recently ordered
//!   items have stock below a threshold. Also a delayed snapshot read.
//! * **Delivery** — read-write and *dependent* (§IV-E): the oldest
//!   undelivered order of each district is only known at computing time, so
//!   the district's delivery cursor is the determinate key; its functor
//!   reads the cursor and emits the customer-balance credit as a deferred
//!   write at the same version.
//!
//! OrderStatus and StockLevel are client-side snapshot procedures (they
//! issue reads, not functors); Delivery is a registered one-shot program.

use std::sync::Arc;

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Error, Key, Result, Value};
use aloha_core::{fn_program, ClusterBuilder, Database, ProgramId, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};

use super::schema::{tag, OrderLineRow, OrderRow};
use super::TpccConfig;

/// Delivery program id.
pub const DELIVERY: ProgramId = ProgramId(14);
/// Delivery determinate-functor handler.
pub const H_DELIVERY: HandlerId = HandlerId(23);

impl TpccConfig {
    /// The district's delivery cursor: the next order id to deliver.
    /// Determinate key of the Delivery transaction.
    pub fn delivery_cursor_key(&self, w: u32, d: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::DISTRICT_INFO],
                b"dlv",
                &w.to_be_bytes(),
                &d.to_be_bytes(),
            ],
        )
    }
}

/// Result of an OrderStatus inquiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderStatus {
    /// The customer's balance in cents.
    pub balance_cents: i64,
    /// The most recent order, if the customer has any.
    pub last_order: Option<OrderRow>,
    /// Its order lines.
    pub lines: Vec<OrderLineRow>,
}

/// Runs the OrderStatus read-only transaction: a consistent snapshot of the
/// customer's balance and their latest order. The snapshot timestamp is
/// assigned in the current epoch and the reads run once that epoch settles
/// (`Database::read_latest` implements the §III-B delay).
///
/// The scan for "the customer's most recent order" walks order ids downward
/// from the district's `next_o_id`; with key-value storage this is the
/// standard secondary-index-free formulation.
///
/// # Errors
///
/// Transport/shutdown failures.
pub fn order_status(
    db: &Database,
    cfg: &TpccConfig,
    w: u32,
    d: u32,
    c: u32,
) -> Result<OrderStatus> {
    let reads = db.read_latest(&[cfg.cbal_key(w, d, c), cfg.district_noid_key(w, d)])?;
    let balance_cents = reads[0].as_ref().and_then(Value::as_i64).unwrap_or(0);
    let next_o_id = reads[1]
        .as_ref()
        .and_then(Value::as_i64)
        .unwrap_or(TpccConfig::INITIAL_NEXT_O_ID);

    // Walk recent orders newest-first until one belongs to this customer.
    let mut last_order = None;
    let mut o_id = next_o_id - 1;
    let floor = (next_o_id - 64).max(TpccConfig::INITIAL_NEXT_O_ID - 1);
    while o_id > floor {
        if let Some(raw) = db.read_latest(&[cfg.order_key(w, d, o_id)])?[0].as_ref() {
            let order = OrderRow::decode(raw)?;
            if order.c_id == c {
                last_order = Some(order);
                break;
            }
        }
        o_id -= 1;
    }
    let mut lines = Vec::new();
    if let Some(order) = &last_order {
        for number in 0..order.ol_cnt {
            if let Some(raw) =
                db.read_latest(&[cfg.orderline_key(w, d, order.o_id, number)])?[0].as_ref()
            {
                lines.push(OrderLineRow::decode(raw)?);
            }
        }
    }
    Ok(OrderStatus {
        balance_cents,
        last_order,
        lines,
    })
}

/// Runs the StockLevel read-only transaction: of the items in the district's
/// last `recent_orders` orders, how many have stock strictly below
/// `threshold`. A single consistent snapshot covers the district counter,
/// the order lines and the stock rows — the kind of multi-partition
/// analytic read ECC serves without touching any write path.
///
/// # Errors
///
/// Transport/shutdown failures.
pub fn stock_level(
    db: &Database,
    cfg: &TpccConfig,
    w: u32,
    d: u32,
    recent_orders: i64,
    threshold: i64,
) -> Result<usize> {
    let next_o_id = db.read_latest(&[cfg.district_noid_key(w, d)])?[0]
        .as_ref()
        .and_then(Value::as_i64)
        .unwrap_or(TpccConfig::INITIAL_NEXT_O_ID);
    let mut item_supply: std::collections::HashSet<(u32, u32)> = Default::default();
    let lo = (next_o_id - recent_orders).max(TpccConfig::INITIAL_NEXT_O_ID);
    for o_id in lo..next_o_id {
        let Some(raw) = db.read_latest(&[cfg.order_key(w, d, o_id)])?[0]
            .as_ref()
            .cloned()
        else {
            continue;
        };
        let order = OrderRow::decode(&raw)?;
        for number in 0..order.ol_cnt {
            if let Some(ol_raw) =
                db.read_latest(&[cfg.orderline_key(w, d, o_id, number)])?[0].as_ref()
            {
                let ol = OrderLineRow::decode(ol_raw)?;
                item_supply.insert((ol.supply_w, ol.i_id));
            }
        }
    }
    let mut low = 0usize;
    for (supply_w, i_id) in item_supply {
        if let Some(raw) = db.read_latest(&[cfg.stock_key(supply_w, i_id)])?[0].as_ref() {
            let stock = super::schema::StockRow::decode(raw)?;
            if stock.quantity < threshold {
                low += 1;
            }
        }
    }
    Ok(low)
}

/// Argument blob for Delivery: warehouse and district.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryReq {
    /// Warehouse.
    pub w: u32,
    /// District to deliver in.
    pub d: u32,
}

impl DeliveryReq {
    /// Encodes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut wr = Writer::new();
        wr.put_u32(self.w).put_u32(self.d);
        wr.into_bytes()
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Codec errors on malformed payloads.
    pub fn decode(args: &[u8]) -> Result<DeliveryReq> {
        let mut r = Reader::new(args);
        Ok(DeliveryReq {
            w: r.get_u32()?,
            d: r.get_u32()?,
        })
    }
}

/// Registers the Delivery transaction. Call *in addition to*
/// [`super::aloha::install`]; the loader must also seed the delivery cursor
/// via [`load_delivery_cursors`].
pub fn install_delivery(builder: &mut ClusterBuilder, cfg: &TpccConfig) {
    let cfg = Arc::new(cfg.clone());
    let handler_cfg = Arc::clone(&cfg);
    builder.register_handler(H_DELIVERY, move |input: &ComputeInput<'_>| {
        let Ok(req) = DeliveryReq::decode(input.args) else {
            return HandlerOutput::abort();
        };
        let cfg = &handler_cfg;
        let cursor = input
            .reads
            .i64(input.key)
            .unwrap_or(TpccConfig::INITIAL_NEXT_O_ID);
        // The oldest undelivered order (if any): only known here, in the
        // computing phase — the defining trait of a dependent transaction.
        let order_key = cfg.order_key(req.w, req.d, cursor);
        let Some(raw) = input.reads.value(&order_key) else {
            // Nothing to deliver: commit the cursor unchanged ("skipped
            // delivery" in TPC-C terms).
            return HandlerOutput::commit(Value::from_i64(cursor));
        };
        let Ok(order) = OrderRow::decode(raw) else {
            return HandlerOutput::abort();
        };
        // Sum the order's line amounts to credit the customer.
        let mut amount = 0i64;
        for number in 0..order.ol_cnt {
            let ol_key = cfg.orderline_key(req.w, req.d, cursor, number);
            if let Some(ol_raw) = input.reads.value(&ol_key) {
                if let Ok(ol) = OrderLineRow::decode(ol_raw) {
                    amount += ol.amount_cents;
                }
            }
        }
        let balance_key = cfg.cbal_key(req.w, req.d, order.c_id);
        let prior = input.reads.i64(&balance_key).unwrap_or(0);
        HandlerOutput::commit(Value::from_i64(cursor + 1)).with_deferred(vec![
            // Credit the customer at this version (deferred write).
            (balance_key, Functor::Value(Value::from_i64(prior + amount))),
            // Remove the NewOrder row: the order is no longer "new".
            (cfg.neworder_key(req.w, req.d, cursor), Functor::Deleted),
        ])
    });

    let program_cfg = Arc::clone(&cfg);
    builder.register_program(
        DELIVERY,
        fn_program(move |ctx| {
            let req = DeliveryReq::decode(ctx.args)?;
            let cfg = &program_cfg;
            if !cfg.supports_payment() {
                return Err(Error::Config(
                    "delivery uses customer balances, which the scaled layout omits".into(),
                ));
            }
            let cursor_key = cfg.delivery_cursor_key(req.w, req.d);
            // The functor must read the cursor, the candidate order and its
            // lines, and the customer's balance. Orders/lines/balances are
            // co-located with the cursor (same order-family route), and the
            // read set must cover whatever the handler may touch: the read
            // gathering resolves exact keys lazily via a snapshot read of the
            // cursor during transform.
            let snapshot_cursor = ctx
                .reader
                .read(&cursor_key)?
                .value
                .as_ref()
                .and_then(Value::as_i64)
                .unwrap_or(TpccConfig::INITIAL_NEXT_O_ID);
            let mut read_set = vec![cursor_key.clone()];
            // The settled snapshot may trail the computing-phase state by the
            // in-flight epochs; cover a window of candidate orders so the
            // handler finds its inputs in the gathered reads.
            for o_id in snapshot_cursor..snapshot_cursor + 4 {
                read_set.push(cfg.order_key(req.w, req.d, o_id));
                for number in 0..16u32 {
                    read_set.push(cfg.orderline_key(req.w, req.d, o_id, number));
                }
            }
            for c in 0..cfg.customers_per_district {
                read_set.push(cfg.cbal_key(req.w, req.d, c));
            }
            Ok(TxnPlan::new().write(
                cursor_key,
                Functor::User(UserFunctor::new(H_DELIVERY, read_set, ctx.args.to_vec())),
            ))
        }),
    );
}

/// Seeds the delivery cursors (call after [`super::aloha::load`]).
pub fn load_delivery_cursors(cluster: &aloha_core::Cluster, cfg: &TpccConfig) {
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts {
            cluster.load(
                cfg.delivery_cursor_key(w, d),
                Value::from_i64(TpccConfig::INITIAL_NEXT_O_ID),
            );
        }
    }
}
