//! TPC-C table schemas: key builders and row codecs.
//!
//! Each table gets a one-byte tag; hot mutable columns that the benchmark
//! transactions update through numeric functors (`w_ytd`, `d_ytd`,
//! `c_balance`, `d_next_o_id`) are stored as dedicated i64 keys, while the
//! static row payloads live under their own keys. This mirrors common
//! column-splitting practice in key-value-backed TPC-C implementations and
//! lets ALOHA-DB express Payment entirely with `ADD`/`SUBTR` functors.

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Key, Result, Value};

use super::TpccConfig;

/// Table tags (first key part).
pub mod tag {
    /// Item catalogue (replicated per partition).
    pub const ITEM: u8 = 1;
    /// Stock rows.
    pub const STOCK: u8 = 2;
    /// District `next_o_id` counter (determinate key of NewOrder).
    pub const DISTRICT_NOID: u8 = 3;
    /// District static info.
    pub const DISTRICT_INFO: u8 = 4;
    /// Warehouse `w_ytd` counter.
    pub const WAREHOUSE_YTD: u8 = 5;
    /// Customer balance counter.
    pub const CUSTOMER_BAL: u8 = 6;
    /// Customer static info.
    pub const CUSTOMER_INFO: u8 = 7;
    /// Order rows (dependent keys).
    pub const ORDER: u8 = 8;
    /// NewOrder rows (dependent keys).
    pub const NEW_ORDER: u8 = 9;
    /// OrderLine rows (dependent keys).
    pub const ORDER_LINE: u8 = 10;
    /// Payment history rows.
    pub const HISTORY: u8 = 11;
    /// Warehouse static info.
    pub const WAREHOUSE_INFO: u8 = 12;
}

impl TpccConfig {
    /// Replicated item row for partition index `partition`.
    pub fn item_key(&self, partition: u16, i_id: u32) -> Key {
        Key::with_route(partition as u32, &[&[tag::ITEM], &i_id.to_be_bytes()])
    }

    /// Stock row of item `i_id` supplied by warehouse `supply_w`.
    pub fn stock_key(&self, supply_w: u32, i_id: u32) -> Key {
        Key::with_route(
            self.stock_route(supply_w, i_id),
            &[&[tag::STOCK], &supply_w.to_be_bytes(), &i_id.to_be_bytes()],
        )
    }

    /// District next-order-id counter (the NewOrder determinate key).
    pub fn district_noid_key(&self, w: u32, d: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[&[tag::DISTRICT_NOID], &w.to_be_bytes(), &d.to_be_bytes()],
        )
    }

    /// District static info row.
    pub fn district_info_key(&self, w: u32, d: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[&[tag::DISTRICT_INFO], &w.to_be_bytes(), &d.to_be_bytes()],
        )
    }

    /// District year-to-date counter (Payment).
    pub fn dytd_key(&self, w: u32, d: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::DISTRICT_INFO],
                b"ytd",
                &w.to_be_bytes(),
                &d.to_be_bytes(),
            ],
        )
    }

    /// Warehouse year-to-date counter (Payment; `ByWarehouse` only).
    pub fn wytd_key(&self, w: u32) -> Key {
        Key::with_route(w, &[&[tag::WAREHOUSE_YTD], &w.to_be_bytes()])
    }

    /// Warehouse static info row.
    pub fn warehouse_info_key(&self, w: u32) -> Key {
        Key::with_route(w, &[&[tag::WAREHOUSE_INFO], &w.to_be_bytes()])
    }

    /// Customer balance counter.
    pub fn cbal_key(&self, w: u32, d: u32, c: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::CUSTOMER_BAL],
                &w.to_be_bytes(),
                &d.to_be_bytes(),
                &c.to_be_bytes(),
            ],
        )
    }

    /// Customer static info row.
    pub fn customer_info_key(&self, w: u32, d: u32, c: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::CUSTOMER_INFO],
                &w.to_be_bytes(),
                &d.to_be_bytes(),
                &c.to_be_bytes(),
            ],
        )
    }

    /// Order row (dependent key: the order id is assigned by the determinate
    /// functor).
    pub fn order_key(&self, w: u32, d: u32, o_id: i64) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::ORDER],
                &w.to_be_bytes(),
                &d.to_be_bytes(),
                &o_id.to_be_bytes(),
            ],
        )
    }

    /// NewOrder row (dependent key).
    pub fn neworder_key(&self, w: u32, d: u32, o_id: i64) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::NEW_ORDER],
                &w.to_be_bytes(),
                &d.to_be_bytes(),
                &o_id.to_be_bytes(),
            ],
        )
    }

    /// OrderLine row (dependent key).
    pub fn orderline_key(&self, w: u32, d: u32, o_id: i64, number: u32) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::ORDER_LINE],
                &w.to_be_bytes(),
                &d.to_be_bytes(),
                &o_id.to_be_bytes(),
                &number.to_be_bytes(),
            ],
        )
    }

    /// History row; `unique` disambiguates (the transaction timestamp).
    pub fn history_key(&self, w: u32, d: u32, c: u32, unique: u64) -> Key {
        Key::with_route(
            self.order_family_route(w, d),
            &[
                &[tag::HISTORY],
                &w.to_be_bytes(),
                &d.to_be_bytes(),
                &c.to_be_bytes(),
                &unique.to_be_bytes(),
            ],
        )
    }

    /// The §IV-E dependency rule for this layout: order-family rows are
    /// dependent keys governed by their district's `next_o_id` determinate
    /// key.
    pub fn dependency_rule(&self) -> impl Fn(&Key) -> Option<Key> + Send + Sync + 'static {
        let cfg = self.clone();
        move |key: &Key| {
            let parts = key.parts()?;
            let t = *parts.first()?.first()?;
            if !matches!(t, tag::ORDER | tag::NEW_ORDER | tag::ORDER_LINE) {
                return None;
            }
            let w = u32::from_be_bytes(parts.get(1)?.as_ref().try_into().ok()?);
            let d = u32::from_be_bytes(parts.get(2)?.as_ref().try_into().ok()?);
            Some(cfg.district_noid_key(w, d))
        }
    }
}

/// Item catalogue row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemRow {
    /// Item id.
    pub i_id: u32,
    /// Item name.
    pub name: String,
    /// Price in cents.
    pub price_cents: i64,
}

impl ItemRow {
    /// Encodes the row into a value.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_u32(self.i_id)
            .put_str(&self.name)
            .put_i64(self.price_cents);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<ItemRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(ItemRow {
            i_id: r.get_u32()?,
            name: r.get_str()?.to_string(),
            price_cents: r.get_i64()?,
        })
    }
}

/// Stock row: the columns NewOrder updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StockRow {
    /// Item id.
    pub i_id: u32,
    /// Supplying warehouse.
    pub w_id: u32,
    /// Quantity on hand.
    pub quantity: i64,
    /// Year-to-date units sold.
    pub ytd: i64,
    /// Number of orders touching this stock.
    pub order_cnt: i64,
}

impl StockRow {
    /// Applies the TPC-C NewOrder stock update rule for `qty` units.
    pub fn apply_order(&mut self, qty: i64) {
        if self.quantity - qty >= 10 {
            self.quantity -= qty;
        } else {
            self.quantity += 91 - qty;
        }
        self.ytd += qty;
        self.order_cnt += 1;
    }

    /// Encodes the row.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_u32(self.i_id)
            .put_u32(self.w_id)
            .put_i64(self.quantity)
            .put_i64(self.ytd)
            .put_i64(self.order_cnt);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<StockRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(StockRow {
            i_id: r.get_u32()?,
            w_id: r.get_u32()?,
            quantity: r.get_i64()?,
            ytd: r.get_i64()?,
            order_cnt: r.get_i64()?,
        })
    }
}

/// Order header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderRow {
    /// Order id.
    pub o_id: i64,
    /// District.
    pub d_id: u32,
    /// Warehouse.
    pub w_id: u32,
    /// Ordering customer.
    pub c_id: u32,
    /// Number of order lines.
    pub ol_cnt: u32,
}

impl OrderRow {
    /// Encodes the row.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_i64(self.o_id)
            .put_u32(self.d_id)
            .put_u32(self.w_id)
            .put_u32(self.c_id)
            .put_u32(self.ol_cnt);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<OrderRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(OrderRow {
            o_id: r.get_i64()?,
            d_id: r.get_u32()?,
            w_id: r.get_u32()?,
            c_id: r.get_u32()?,
            ol_cnt: r.get_u32()?,
        })
    }
}

/// Order line row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderLineRow {
    /// Order id.
    pub o_id: i64,
    /// Line number within the order.
    pub number: u32,
    /// Ordered item.
    pub i_id: u32,
    /// Supplying warehouse.
    pub supply_w: u32,
    /// Quantity.
    pub qty: u32,
    /// Line amount in cents (= qty × price).
    pub amount_cents: i64,
}

impl OrderLineRow {
    /// Encodes the row.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_i64(self.o_id)
            .put_u32(self.number)
            .put_u32(self.i_id)
            .put_u32(self.supply_w)
            .put_u32(self.qty)
            .put_i64(self.amount_cents);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<OrderLineRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(OrderLineRow {
            o_id: r.get_i64()?,
            number: r.get_u32()?,
            i_id: r.get_u32()?,
            supply_w: r.get_u32()?,
            qty: r.get_u32()?,
            amount_cents: r.get_i64()?,
        })
    }
}

/// Customer static row (loaded once; Payment updates only the balance key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomerRow {
    /// Customer id.
    pub c_id: u32,
    /// Last name (used by TPC-C name lookups; kept for schema completeness).
    pub last_name: String,
    /// Credit flag.
    pub good_credit: bool,
}

impl CustomerRow {
    /// Encodes the row.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_u32(self.c_id)
            .put_str(&self.last_name)
            .put_u8(self.good_credit as u8);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<CustomerRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(CustomerRow {
            c_id: r.get_u32()?,
            last_name: r.get_str()?.to_string(),
            good_credit: r.get_u8()? != 0,
        })
    }
}

/// District static row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistrictInfoRow {
    /// District id.
    pub d_id: u32,
    /// Warehouse id.
    pub w_id: u32,
    /// Sales tax in basis points.
    pub tax_bp: u32,
}

impl DistrictInfoRow {
    /// Encodes the row.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_u32(self.d_id).put_u32(self.w_id).put_u32(self.tax_bp);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<DistrictInfoRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(DistrictInfoRow {
            d_id: r.get_u32()?,
            w_id: r.get_u32()?,
            tax_bp: r.get_u32()?,
        })
    }
}

/// Warehouse static row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarehouseRow {
    /// Warehouse id.
    pub w_id: u32,
    /// Sales tax in basis points.
    pub tax_bp: u32,
}

impl WarehouseRow {
    /// Encodes the row.
    pub fn encode(&self) -> Value {
        let mut w = Writer::new();
        w.put_u32(self.w_id).put_u32(self.tax_bp);
        Value::from(w.into_bytes())
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(value: &Value) -> Result<WarehouseRow> {
        let mut r = Reader::new(value.as_bytes());
        Ok(WarehouseRow {
            w_id: r.get_u32()?,
            tax_bp: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::PartitionMode;

    fn cfg() -> TpccConfig {
        TpccConfig::by_warehouse(4, 1)
    }

    #[test]
    fn warehouse_keys_colocate_by_warehouse() {
        let cfg = cfg();
        let n = cfg.partitions;
        for w in 0..4u32 {
            let p = cfg.district_noid_key(w, 3).partition(n);
            assert_eq!(cfg.wytd_key(w).partition(n), p);
            assert_eq!(cfg.stock_key(w, 77).partition(n), p);
            assert_eq!(cfg.order_key(w, 3, 5000).partition(n), p);
            assert_eq!(cfg.cbal_key(w, 3, 9).partition(n), p);
        }
    }

    #[test]
    fn scaled_keys_spread_by_item_and_district() {
        let cfg = TpccConfig::scaled(4, 10);
        assert_eq!(cfg.mode, PartitionMode::ByItemDistrict);
        let n = cfg.partitions;
        // Stock of items 0..4 lands on four different partitions.
        let parts: std::collections::HashSet<_> = (0..4u32)
            .map(|i| cfg.stock_key(0, i).partition(n))
            .collect();
        assert_eq!(parts.len(), 4);
        // District rows spread by district.
        let dparts: std::collections::HashSet<_> = (0..4u32)
            .map(|d| cfg.district_noid_key(0, d).partition(n))
            .collect();
        assert_eq!(dparts.len(), 4);
    }

    #[test]
    fn dependency_rule_maps_order_family_to_district() {
        let cfg = cfg();
        let rule = cfg.dependency_rule();
        let dnoid = cfg.district_noid_key(2, 5);
        assert_eq!(rule(&cfg.order_key(2, 5, 3001)), Some(dnoid.clone()));
        assert_eq!(rule(&cfg.neworder_key(2, 5, 3001)), Some(dnoid.clone()));
        assert_eq!(rule(&cfg.orderline_key(2, 5, 3001, 4)), Some(dnoid.clone()));
        assert_eq!(rule(&cfg.stock_key(2, 5)), None);
        assert_eq!(rule(&dnoid), None);
    }

    #[test]
    fn rows_round_trip() {
        let item = ItemRow {
            i_id: 7,
            name: "widget".into(),
            price_cents: 1299,
        };
        assert_eq!(ItemRow::decode(&item.encode()).unwrap(), item);
        let stock = StockRow {
            i_id: 7,
            w_id: 1,
            quantity: 50,
            ytd: 10,
            order_cnt: 3,
        };
        assert_eq!(StockRow::decode(&stock.encode()).unwrap(), stock);
        let order = OrderRow {
            o_id: 3001,
            d_id: 1,
            w_id: 2,
            c_id: 3,
            ol_cnt: 5,
        };
        assert_eq!(OrderRow::decode(&order.encode()).unwrap(), order);
        let ol = OrderLineRow {
            o_id: 3001,
            number: 1,
            i_id: 7,
            supply_w: 2,
            qty: 3,
            amount_cents: 3897,
        };
        assert_eq!(OrderLineRow::decode(&ol.encode()).unwrap(), ol);
        let cust = CustomerRow {
            c_id: 3,
            last_name: "BARBARBAR".into(),
            good_credit: true,
        };
        assert_eq!(CustomerRow::decode(&cust.encode()).unwrap(), cust);
        let dist = DistrictInfoRow {
            d_id: 1,
            w_id: 2,
            tax_bp: 850,
        };
        assert_eq!(DistrictInfoRow::decode(&dist.encode()).unwrap(), dist);
        let wh = WarehouseRow {
            w_id: 2,
            tax_bp: 777,
        };
        assert_eq!(WarehouseRow::decode(&wh.encode()).unwrap(), wh);
    }

    #[test]
    fn stock_update_rule_matches_tpcc() {
        let mut s = StockRow {
            i_id: 1,
            w_id: 1,
            quantity: 50,
            ytd: 0,
            order_cnt: 0,
        };
        s.apply_order(5);
        assert_eq!(s.quantity, 45);
        // Near-empty stock is replenished by 91.
        let mut low = StockRow {
            i_id: 1,
            w_id: 1,
            quantity: 12,
            ytd: 0,
            order_cnt: 0,
        };
        low.apply_order(5);
        assert_eq!(low.quantity, 12 + 91 - 5);
        assert_eq!(low.ytd, 5);
        assert_eq!(low.order_cnt, 1);
    }

    #[test]
    fn item_copies_exist_per_partition() {
        let cfg = cfg();
        for p in 0..cfg.partitions {
            assert_eq!(cfg.item_key(p, 42).partition(cfg.partitions).0, p);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ItemRow::decode(&Value::new(vec![1, 2])).is_err());
        assert!(StockRow::decode(&Value::new(vec![])).is_err());
    }
}
