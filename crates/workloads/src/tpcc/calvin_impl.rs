//! TPC-C on the Calvin baseline.
//!
//! The Calvin NewOrder pre-assigns the order id at the sequencer (possible
//! because Calvin never aborts, §V-A2) so the full write set — including the
//! Order/NewOrder/OrderLine row keys — is known before execution, satisfying
//! Calvin's known-access-set restriction. Invalid items are silently skipped:
//! "Calvin's implementation does not support aborted transactions because of
//! its deterministic design".

use std::sync::Arc;

use aloha_common::{Key, Result, ServerId, Value};
use calvin::{
    CalvinClusterBuilder, CalvinDatabase, CalvinHandle, CalvinPlan, CalvinProgram, ProgramId,
};
use rand::rngs::SmallRng;

use super::gen::{
    gen_new_order, gen_payment, NewOrderReq, OidAssigner, PaymentReq, TxnMix, INVALID_ITEM,
};
use super::schema::{ItemRow, OrderLineRow, OrderRow, StockRow};
use super::TpccConfig;

/// NewOrder program id (Calvin registry).
pub const NEW_ORDER: ProgramId = ProgramId(11);
/// Payment program id (Calvin registry).
pub const PAYMENT: ProgramId = ProgramId(12);

struct NewOrderCalvin {
    cfg: Arc<TpccConfig>,
}

impl CalvinProgram for NewOrderCalvin {
    fn plan(&self, args: &[u8]) -> CalvinPlan {
        let Ok(req) = NewOrderReq::decode(args) else {
            return CalvinPlan::default();
        };
        let o_id = req
            .o_id
            .expect("calvin neworder requires a pre-assigned order id");
        let cfg = &self.cfg;
        let dnoid = cfg.district_noid_key(req.w, req.d);
        let mut read_set = vec![dnoid.clone()];
        let mut write_set = vec![dnoid];
        for line in &req.lines {
            let stock = cfg.stock_key(line.supply_w, line.i_id);
            let stock_partition = stock.partition(cfg.partitions).0;
            read_set.push(cfg.item_key(stock_partition, line.i_id));
            read_set.push(stock.clone());
            write_set.push(stock);
        }
        write_set.push(cfg.order_key(req.w, req.d, o_id));
        write_set.push(cfg.neworder_key(req.w, req.d, o_id));
        for number in 0..req.lines.len() as u32 {
            write_set.push(cfg.orderline_key(req.w, req.d, o_id, number));
        }
        CalvinPlan {
            read_set,
            write_set,
        }
    }

    fn execute(
        &self,
        args: &[u8],
        reads: &std::collections::HashMap<Key, Option<Value>>,
        writes: &mut Vec<(Key, Value)>,
    ) {
        let Ok(req) = NewOrderReq::decode(args) else {
            return;
        };
        let o_id = req.o_id.expect("pre-assigned order id");
        let cfg = &self.cfg;
        let mut valid_lines = 0u32;
        for (number, line) in req.lines.iter().enumerate() {
            if line.i_id == INVALID_ITEM {
                continue; // Calvin cannot abort; skip the bad line (§V-A2)
            }
            let stock_key = cfg.stock_key(line.supply_w, line.i_id);
            let stock_partition = stock_key.partition(cfg.partitions).0;
            let Some(Some(stock_raw)) = reads.get(&stock_key) else {
                continue;
            };
            let Ok(mut stock) = StockRow::decode(stock_raw) else {
                continue;
            };
            stock.apply_order(line.qty as i64);
            writes.push((stock_key, stock.encode()));
            let price = reads
                .get(&cfg.item_key(stock_partition, line.i_id))
                .and_then(|v| v.as_ref())
                .and_then(|v| ItemRow::decode(v).ok())
                .map_or(0, |item| item.price_cents);
            writes.push((
                cfg.orderline_key(req.w, req.d, o_id, number as u32),
                OrderLineRow {
                    o_id,
                    number: number as u32,
                    i_id: line.i_id,
                    supply_w: line.supply_w,
                    qty: line.qty,
                    amount_cents: line.qty as i64 * price,
                }
                .encode(),
            ));
            valid_lines += 1;
        }
        writes.push((
            cfg.order_key(req.w, req.d, o_id),
            OrderRow {
                o_id,
                d_id: req.d,
                w_id: req.w,
                c_id: req.c,
                ol_cnt: valid_lines,
            }
            .encode(),
        ));
        writes.push((cfg.neworder_key(req.w, req.d, o_id), Value::from_i64(o_id)));
        // Order ids are pre-assigned in submission order but executed in
        // deterministic lock order, which may differ; the counter advances to
        // the highest assigned id regardless of interleaving.
        let dnoid = cfg.district_noid_key(req.w, req.d);
        let current = reads
            .get(&dnoid)
            .and_then(|v| v.as_ref())
            .and_then(Value::as_i64)
            .unwrap_or(TpccConfig::INITIAL_NEXT_O_ID);
        writes.push((dnoid, Value::from_i64(current.max(o_id + 1))));
    }

    fn name(&self) -> &str {
        "tpcc-neworder"
    }
}

struct PaymentCalvin {
    cfg: Arc<TpccConfig>,
}

impl CalvinProgram for PaymentCalvin {
    fn plan(&self, args: &[u8]) -> CalvinPlan {
        let Ok(req) = PaymentReq::decode(args) else {
            return CalvinPlan::default();
        };
        let cfg = &self.cfg;
        let keys = vec![
            cfg.wytd_key(req.w),
            cfg.dytd_key(req.w, req.d),
            cfg.cbal_key(req.c_w, req.c_d, req.c),
        ];
        let mut write_set = keys.clone();
        write_set.push(cfg.history_key(req.w, req.d, req.c, req.unique));
        CalvinPlan {
            read_set: keys,
            write_set,
        }
    }

    fn execute(
        &self,
        args: &[u8],
        reads: &std::collections::HashMap<Key, Option<Value>>,
        writes: &mut Vec<(Key, Value)>,
    ) {
        let Ok(req) = PaymentReq::decode(args) else {
            return;
        };
        let cfg = &self.cfg;
        let get = |k: &Key| {
            reads
                .get(k)
                .and_then(|v| v.as_ref())
                .and_then(Value::as_i64)
                .unwrap_or(0)
        };
        let wytd = cfg.wytd_key(req.w);
        let dytd = cfg.dytd_key(req.w, req.d);
        let cbal = cfg.cbal_key(req.c_w, req.c_d, req.c);
        writes.push((wytd.clone(), Value::from_i64(get(&wytd) + req.amount_cents)));
        writes.push((dytd.clone(), Value::from_i64(get(&dytd) + req.amount_cents)));
        writes.push((cbal.clone(), Value::from_i64(get(&cbal) - req.amount_cents)));
        let mut history = aloha_common::codec::Writer::new();
        history
            .put_u32(req.w)
            .put_u32(req.d)
            .put_u32(req.c)
            .put_i64(req.amount_cents);
        writes.push((
            cfg.history_key(req.w, req.d, req.c, req.unique),
            Value::from(history.into_bytes()),
        ));
    }

    fn name(&self) -> &str {
        "tpcc-payment"
    }
}

/// Registers the TPC-C stored procedures on a Calvin cluster builder.
pub fn install(builder: &mut CalvinClusterBuilder, cfg: &TpccConfig) {
    let cfg = Arc::new(cfg.clone());
    builder.register_program(
        NEW_ORDER,
        NewOrderCalvin {
            cfg: Arc::clone(&cfg),
        },
    );
    builder.register_program(PAYMENT, PaymentCalvin { cfg });
}

/// Loads the TPC-C database into a Calvin cluster (same rows as the ALOHA
/// loader).
pub fn load(cluster: &calvin::CalvinCluster, cfg: &TpccConfig) {
    for p in 0..cfg.partitions {
        for i in 0..cfg.items {
            let row = ItemRow {
                i_id: i,
                name: format!("item-{i}"),
                price_cents: 100 + (i as i64 * 37) % 9_900,
            };
            cluster.load(cfg.item_key(p, i), row.encode());
        }
    }
    for w in 0..cfg.warehouses {
        if cfg.supports_payment() {
            cluster.load(cfg.wytd_key(w), Value::from_i64(0));
        }
        for i in 0..cfg.items {
            let stock = StockRow {
                i_id: i,
                w_id: w,
                quantity: 50 + (i as i64 % 50),
                ytd: 0,
                order_cnt: 0,
            };
            cluster.load(cfg.stock_key(w, i), stock.encode());
        }
        for d in 0..cfg.districts {
            cluster.load(
                cfg.district_noid_key(w, d),
                Value::from_i64(TpccConfig::INITIAL_NEXT_O_ID),
            );
            if cfg.supports_payment() {
                cluster.load(cfg.dytd_key(w, d), Value::from_i64(0));
            }
            for c in 0..cfg.customers_per_district {
                cluster.load(cfg.cbal_key(w, d, c), Value::from_i64(-1_000));
            }
        }
    }
}

/// The Calvin TPC-C workload target.
#[derive(Debug)]
pub struct CalvinTpcc {
    db: CalvinDatabase,
    cfg: Arc<TpccConfig>,
    mix: TxnMix,
    oids: OidAssigner,
}

impl CalvinTpcc {
    /// Binds the workload to a Calvin database handle.
    pub fn new(db: CalvinDatabase, cfg: TpccConfig, mix: TxnMix) -> CalvinTpcc {
        let oids = OidAssigner::new(&cfg);
        CalvinTpcc {
            db,
            cfg: Arc::new(cfg),
            mix,
            oids,
        }
    }
}

impl crate::driver::Workload for CalvinTpcc {
    type Handle = CalvinHandle;

    fn submit(&self, rng: &mut SmallRng) -> Result<CalvinHandle> {
        match self.mix {
            TxnMix::NewOrderOnly => {
                // Calvin never aborts, so invalid items are never generated;
                // order ids are pre-assigned by the sequencer side.
                let mut req = gen_new_order(rng, &self.cfg, false);
                req.o_id = Some(self.oids.assign(req.w, req.d));
                let origin = ServerId(
                    self.cfg
                        .district_noid_key(req.w, req.d)
                        .partition(self.cfg.partitions)
                        .0,
                );
                self.db.execute_at(origin, NEW_ORDER, req.encode())
            }
            TxnMix::PaymentOnly => {
                let req = gen_payment(rng, &self.cfg);
                let origin = ServerId(self.cfg.partition_of_route(req.w));
                self.db.execute_at(origin, PAYMENT, req.encode())
            }
        }
    }

    fn wait(&self, handle: CalvinHandle) -> Result<bool> {
        handle.wait()?;
        Ok(true) // deterministic execution never aborts
    }
}
