//! TPC-C request generation, following the Calvin papers' conventions: every
//! generated transaction is *distributed* — a NewOrder always sources one
//! order line from a warehouse on a different server, and a Payment always
//! pays for a customer of a remote warehouse (§V-A1).

use std::sync::atomic::{AtomicI64, Ordering};

use aloha_common::codec::{Reader, Writer};
use aloha_common::Result;
use rand::rngs::SmallRng;
use rand::Rng;

use super::{PartitionMode, TpccConfig};

/// Sentinel item id that exists in no partition: triggers the 1 % NewOrder
/// abort requirement via the install-time item check.
pub const INVALID_ITEM: u32 = u32::MAX;

/// Which transaction type a workload target submits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnMix {
    /// Only NewOrder transactions.
    NewOrderOnly,
    /// Only Payment transactions (`ByWarehouse` only).
    PaymentOnly,
}

/// One requested order line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderLineReq {
    /// Ordered item.
    pub i_id: u32,
    /// Supplying warehouse.
    pub supply_w: u32,
    /// Quantity (1–10).
    pub qty: u32,
}

/// A NewOrder request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewOrderReq {
    /// Home warehouse.
    pub w: u32,
    /// District.
    pub d: u32,
    /// Customer.
    pub c: u32,
    /// Order lines (5–15).
    pub lines: Vec<OrderLineReq>,
    /// Pre-assigned order id (Calvin only; ALOHA-DB assigns it dynamically
    /// in the determinate functor, §V-A2).
    pub o_id: Option<i64>,
}

impl NewOrderReq {
    /// Encodes the request as an argument blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.w)
            .put_u32(self.d)
            .put_u32(self.c)
            .put_i64(self.o_id.unwrap_or(-1));
        w.put_u32(self.lines.len() as u32);
        for line in &self.lines {
            w.put_u32(line.i_id)
                .put_u32(line.supply_w)
                .put_u32(line.qty);
        }
        w.into_bytes()
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(args: &[u8]) -> Result<NewOrderReq> {
        let mut r = Reader::new(args);
        let w = r.get_u32()?;
        let d = r.get_u32()?;
        let c = r.get_u32()?;
        let o_raw = r.get_i64()?;
        let n = r.get_u32()?;
        let mut lines = Vec::with_capacity(n as usize);
        for _ in 0..n {
            lines.push(OrderLineReq {
                i_id: r.get_u32()?,
                supply_w: r.get_u32()?,
                qty: r.get_u32()?,
            });
        }
        Ok(NewOrderReq {
            w,
            d,
            c,
            lines,
            o_id: (o_raw >= 0).then_some(o_raw),
        })
    }

    /// Whether the request references the invalid item (must abort).
    pub fn has_invalid_item(&self) -> bool {
        self.lines.iter().any(|l| l.i_id == INVALID_ITEM)
    }
}

/// A Payment request (`ByWarehouse` only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaymentReq {
    /// Warehouse receiving the payment.
    pub w: u32,
    /// District receiving the payment.
    pub d: u32,
    /// The paying customer's warehouse (remote, per Calvin's generator).
    pub c_w: u32,
    /// The paying customer's district.
    pub c_d: u32,
    /// The paying customer.
    pub c: u32,
    /// Amount in cents.
    pub amount_cents: i64,
    /// Uniquifier for the history row key.
    pub unique: u64,
}

impl PaymentReq {
    /// Encodes the request as an argument blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.w)
            .put_u32(self.d)
            .put_u32(self.c_w)
            .put_u32(self.c_d)
            .put_u32(self.c)
            .put_i64(self.amount_cents)
            .put_u64(self.unique);
        w.into_bytes()
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed payloads.
    pub fn decode(args: &[u8]) -> Result<PaymentReq> {
        let mut r = Reader::new(args);
        Ok(PaymentReq {
            w: r.get_u32()?,
            d: r.get_u32()?,
            c_w: r.get_u32()?,
            c_d: r.get_u32()?,
            c: r.get_u32()?,
            amount_cents: r.get_i64()?,
            unique: r.get_u64()?,
        })
    }
}

/// TPC-C NURand non-uniform random: `((random(0,A) | random(x,y)) + C) %
/// (y - x + 1) + x` (TPC-C §2.1.6). Skews customer and item selection toward
/// hot rows as the standard requires.
pub fn nurand(rng: &mut SmallRng, a: u32, x: u32, y: u32) -> u32 {
    // C is a per-run constant; a fixed odd value satisfies §2.1.6.1's
    // validity conditions for our scaled-down key ranges.
    const C: u32 = 123;
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + C) % (y - x + 1)) + x
}

/// Picks a customer id with the standard NURand(1023) skew.
pub fn nurand_customer(rng: &mut SmallRng, customers: u32) -> u32 {
    if customers <= 1 {
        return 0;
    }
    nurand(rng, 1023.min(customers - 1), 0, customers - 1)
}

/// Picks an item id with the standard NURand(8191) skew.
pub fn nurand_item(rng: &mut SmallRng, items: u32) -> u32 {
    if items <= 1 {
        return 0;
    }
    nurand(rng, 8191.min(items - 1), 0, items - 1)
}

/// Picks a warehouse on a different *server* than `w` (Calvin's distributed
/// transaction rule). Falls back to `w` when impossible (single server or
/// single warehouse).
fn remote_warehouse(rng: &mut SmallRng, cfg: &TpccConfig, w: u32) -> u32 {
    if cfg.partitions <= 1 || cfg.warehouses <= 1 {
        return w;
    }
    let home_server = cfg.partition_of_route(w);
    for _ in 0..64 {
        let candidate = rng.gen_range(0..cfg.warehouses);
        if cfg.partition_of_route(candidate) != home_server {
            return candidate;
        }
    }
    w
}

/// Generates one NewOrder request. `with_aborts` enables the 1 % invalid
/// item requirement.
pub fn gen_new_order(rng: &mut SmallRng, cfg: &TpccConfig, with_aborts: bool) -> NewOrderReq {
    let w = match cfg.mode {
        PartitionMode::ByWarehouse => rng.gen_range(0..cfg.warehouses),
        PartitionMode::ByItemDistrict => 0,
    };
    let d = rng.gen_range(0..cfg.districts);
    let c = nurand_customer(rng, cfg.customers_per_district);
    let ol_cnt = rng.gen_range(5..=15usize);
    let mut lines = Vec::with_capacity(ol_cnt);
    let mut used = std::collections::HashSet::new();
    while lines.len() < ol_cnt {
        let i_id = nurand_item(rng, cfg.items);
        if !used.insert(i_id) {
            continue;
        }
        lines.push(OrderLineReq {
            i_id,
            supply_w: w,
            qty: rng.gen_range(1..=10),
        });
    }
    if cfg.mode == PartitionMode::ByWarehouse {
        // One line is always supplied by a warehouse on another server.
        let remote_line = rng.gen_range(0..lines.len());
        lines[remote_line].supply_w = remote_warehouse(rng, cfg, w);
    }
    if with_aborts && rng.gen_bool(cfg.invalid_item_fraction) {
        lines[0].i_id = INVALID_ITEM;
    }
    NewOrderReq {
        w,
        d,
        c,
        lines,
        o_id: None,
    }
}

/// Generates one Payment request; the paying customer always belongs to a
/// warehouse on a different server.
pub fn gen_payment(rng: &mut SmallRng, cfg: &TpccConfig) -> PaymentReq {
    debug_assert!(
        cfg.supports_payment(),
        "payment requires the ByWarehouse layout"
    );
    let w = rng.gen_range(0..cfg.warehouses);
    let d = rng.gen_range(0..cfg.districts);
    let c_w = remote_warehouse(rng, cfg, w);
    PaymentReq {
        w,
        d,
        c_w,
        c_d: rng.gen_range(0..cfg.districts),
        c: nurand_customer(rng, cfg.customers_per_district),
        amount_cents: rng.gen_range(100..=500_000),
        unique: rng.gen(),
    }
}

/// Pre-assigns order ids for Calvin, which cannot abort and therefore
/// assigns ids at the sequencer (§V-A2). One atomic counter per district.
#[derive(Debug)]
pub struct OidAssigner {
    counters: Vec<AtomicI64>,
    districts: u32,
}

impl OidAssigner {
    /// Creates counters for every (warehouse, district) pair.
    pub fn new(cfg: &TpccConfig) -> OidAssigner {
        let total = (cfg.warehouses * cfg.districts) as usize;
        OidAssigner {
            counters: (0..total)
                .map(|_| AtomicI64::new(TpccConfig::INITIAL_NEXT_O_ID))
                .collect(),
            districts: cfg.districts,
        }
    }

    /// Assigns the next order id of (w, d).
    pub fn assign(&self, w: u32, d: u32) -> i64 {
        self.counters[(w * self.districts + d) as usize].fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn new_order_round_trips() {
        let cfg = TpccConfig::by_warehouse(4, 2);
        let req = gen_new_order(&mut rng(), &cfg, false);
        let decoded = NewOrderReq::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn payment_round_trips() {
        let cfg = TpccConfig::by_warehouse(4, 2);
        let req = gen_payment(&mut rng(), &cfg);
        assert_eq!(PaymentReq::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn new_order_is_always_distributed_by_warehouse() {
        let cfg = TpccConfig::by_warehouse(4, 2);
        let mut r = rng();
        for _ in 0..100 {
            let req = gen_new_order(&mut r, &cfg, false);
            let home = cfg.partition_of_route(req.w);
            assert!(
                req.lines
                    .iter()
                    .any(|l| cfg.partition_of_route(l.supply_w) != home),
                "every NewOrder must touch a second server"
            );
        }
    }

    #[test]
    fn new_order_lines_have_valid_shape() {
        let cfg = TpccConfig::by_warehouse(2, 1);
        let mut r = rng();
        for _ in 0..50 {
            let req = gen_new_order(&mut r, &cfg, false);
            assert!((5..=15).contains(&req.lines.len()));
            let mut ids: Vec<u32> = req.lines.iter().map(|l| l.i_id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), req.lines.len(), "items must be distinct");
            assert!(req.lines.iter().all(|l| (1..=10).contains(&l.qty)));
        }
    }

    #[test]
    fn abort_fraction_appears() {
        let cfg = TpccConfig::by_warehouse(2, 1).with_invalid_fraction(0.5);
        let mut r = rng();
        let invalid = (0..200)
            .filter(|_| gen_new_order(&mut r, &cfg, true).has_invalid_item())
            .count();
        assert!((50..150).contains(&invalid), "≈50% expected, got {invalid}");
    }

    #[test]
    fn no_aborts_when_disabled() {
        let cfg = TpccConfig::by_warehouse(2, 1).with_invalid_fraction(0.5);
        let mut r = rng();
        assert!((0..100).all(|_| !gen_new_order(&mut r, &cfg, false).has_invalid_item()));
    }

    #[test]
    fn payment_customer_is_remote() {
        let cfg = TpccConfig::by_warehouse(4, 2);
        let mut r = rng();
        for _ in 0..50 {
            let req = gen_payment(&mut r, &cfg);
            assert_ne!(
                cfg.partition_of_route(req.w),
                cfg.partition_of_route(req.c_w),
                "payment customer must live on another server"
            );
        }
    }

    #[test]
    fn oid_assigner_is_dense_and_unique() {
        let cfg = TpccConfig::by_warehouse(2, 1);
        let assigner = OidAssigner::new(&cfg);
        let a = assigner.assign(0, 0);
        let b = assigner.assign(0, 0);
        let other = assigner.assign(1, 0);
        assert_eq!(a, TpccConfig::INITIAL_NEXT_O_ID);
        assert_eq!(b, a + 1);
        assert_eq!(other, TpccConfig::INITIAL_NEXT_O_ID);
    }

    #[test]
    fn nurand_stays_in_range_and_skews() {
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            let v = nurand(&mut r, 1023, 0, 99);
            assert!(v < 100);
            counts[v as usize] += 1;
        }
        // Non-uniform: the most popular decile should clearly beat the least
        // popular one.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let low: usize = sorted[..10].iter().sum();
        let high: usize = sorted[90..].iter().sum();
        assert!(high > low * 2, "NURand should skew: high={high} low={low}");
    }

    #[test]
    fn nurand_handles_tiny_domains() {
        let mut r = rng();
        assert_eq!(nurand_customer(&mut r, 1), 0);
        assert_eq!(nurand_item(&mut r, 1), 0);
        for _ in 0..100 {
            assert!(nurand_customer(&mut r, 3) < 3);
            assert!(nurand_item(&mut r, 7) < 7);
        }
    }

    #[test]
    fn scaled_new_order_uses_single_warehouse() {
        let cfg = TpccConfig::scaled(4, 2);
        let mut r = rng();
        for _ in 0..20 {
            let req = gen_new_order(&mut r, &cfg, false);
            assert_eq!(req.w, 0);
            assert!(req.d < cfg.districts);
        }
    }
}
