//! TPC-C and Scaled TPC-C (§V-A1).
//!
//! Two partitioning layouts are implemented:
//!
//! * **Partition by warehouse** (`TPC-C`): every key of warehouse *w* carries
//!   routing tag *w*, so a host stores `warehouses_per_host` complete
//!   warehouses — the layout used in the Calvin papers. Distributed NewOrder
//!   transactions always source one order line from a warehouse on another
//!   server, exactly as in Calvin's generator.
//! * **Partition by item/district** (`Scaled TPC-C`, from Rococo): the whole
//!   database is one huge warehouse; stock rows are routed by item id and
//!   district rows by district id, so a NewOrder touches as many partitions
//!   as it has distinct item routes. The `w_ytd` column is dropped, so
//!   Payment is not available in this mode.
//!
//! The item table is read-only and replicated to every partition (one routed
//! copy per partition index), the standard practice for TPC-C item lookups.

pub mod aloha;
pub mod calvin_impl;
pub mod gen;
pub mod read_txns;
pub mod schema;

pub use gen::{NewOrderReq, OidAssigner, OrderLineReq, PaymentReq, TxnMix};
pub use read_txns::{order_status, stock_level, DeliveryReq, OrderStatus};
pub use schema::{
    CustomerRow, DistrictInfoRow, ItemRow, OrderLineRow, OrderRow, StockRow, WarehouseRow,
};

/// How the database is spread over partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Conventional TPC-C: all data of a warehouse on one partition.
    ByWarehouse,
    /// Scaled TPC-C: one giant warehouse partitioned by item and district.
    ByItemDistrict,
}

/// Scale and layout parameters for a TPC-C database.
///
/// The defaults are scaled down from the standard (100k items, 3k customers
/// per district) so CI-sized runs stay fast; the figure harnesses raise them.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Partitioning layout.
    pub mode: PartitionMode,
    /// Number of partitions (= servers).
    pub partitions: u16,
    /// Total warehouses (`ByWarehouse`) — always 1 in `ByItemDistrict`.
    pub warehouses: u32,
    /// Districts per warehouse (`ByWarehouse`, fixed 10 in standard TPC-C)
    /// or total districts (`ByItemDistrict`).
    pub districts: u32,
    /// Items in the catalogue.
    pub items: u32,
    /// Customers per district.
    pub customers_per_district: u32,
    /// Fraction of NewOrder transactions that reference an invalid item and
    /// must abort (TPC-C requires 1 %).
    pub invalid_item_fraction: f64,
}

impl TpccConfig {
    /// Conventional TPC-C with `warehouses_per_host` warehouses per server.
    pub fn by_warehouse(partitions: u16, warehouses_per_host: u32) -> TpccConfig {
        TpccConfig {
            mode: PartitionMode::ByWarehouse,
            partitions,
            warehouses: warehouses_per_host * partitions as u32,
            districts: 10,
            items: 1_000,
            customers_per_district: 100,
            invalid_item_fraction: 0.01,
        }
    }

    /// Scaled TPC-C with `districts_per_host` districts per server.
    pub fn scaled(partitions: u16, districts_per_host: u32) -> TpccConfig {
        TpccConfig {
            mode: PartitionMode::ByItemDistrict,
            partitions,
            warehouses: 1,
            districts: districts_per_host * partitions as u32,
            items: 1_000,
            customers_per_district: 100,
            invalid_item_fraction: 0.01,
        }
    }

    /// Overrides the item count.
    pub fn with_items(mut self, items: u32) -> TpccConfig {
        self.items = items;
        self
    }

    /// Overrides the customers per district.
    pub fn with_customers(mut self, customers: u32) -> TpccConfig {
        self.customers_per_district = customers;
        self
    }

    /// Overrides the invalid-item (abort) fraction.
    pub fn with_invalid_fraction(mut self, fraction: f64) -> TpccConfig {
        self.invalid_item_fraction = fraction;
        self
    }

    /// Routing tag for all order-family keys of (warehouse, district) — the
    /// same partition that stores the district row, so the deferred writes of
    /// the NewOrder determinate functor are local installs.
    pub fn order_family_route(&self, w: u32, d: u32) -> u32 {
        match self.mode {
            PartitionMode::ByWarehouse => w,
            PartitionMode::ByItemDistrict => d,
        }
    }

    /// Routing tag for a stock row.
    pub fn stock_route(&self, supply_w: u32, i_id: u32) -> u32 {
        match self.mode {
            PartitionMode::ByWarehouse => supply_w,
            PartitionMode::ByItemDistrict => i_id,
        }
    }

    /// Partition index a route maps to.
    pub fn partition_of_route(&self, route: u32) -> u16 {
        (route % self.partitions as u32) as u16
    }

    /// Whether Payment transactions are supported (the scaled layout drops
    /// `w_ytd`, §V-A1).
    pub fn supports_payment(&self) -> bool {
        self.mode == PartitionMode::ByWarehouse
    }

    /// First valid order id (TPC-C databases are loaded with 3000 orders).
    pub const INITIAL_NEXT_O_ID: i64 = 3001;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_warehouse_scales_with_hosts() {
        let cfg = TpccConfig::by_warehouse(4, 10);
        assert_eq!(cfg.warehouses, 40);
        assert_eq!(cfg.districts, 10);
        assert!(cfg.supports_payment());
    }

    #[test]
    fn scaled_uses_single_warehouse() {
        let cfg = TpccConfig::scaled(4, 10);
        assert_eq!(cfg.warehouses, 1);
        assert_eq!(cfg.districts, 40);
        assert!(!cfg.supports_payment());
    }

    #[test]
    fn routes_follow_mode() {
        let bw = TpccConfig::by_warehouse(4, 1);
        assert_eq!(bw.order_family_route(3, 7), 3);
        assert_eq!(bw.stock_route(2, 999), 2);
        let sc = TpccConfig::scaled(4, 1);
        assert_eq!(sc.order_family_route(0, 7), 7);
        assert_eq!(sc.stock_route(0, 999), 999);
    }
}
