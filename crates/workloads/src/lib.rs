//! Benchmark workloads for the ALOHA-DB reproduction (§V-A1).
//!
//! Three workloads drive the evaluation:
//!
//! * **TPC-C** ([`tpcc`]) — NewOrder and Payment transactions over the
//!   conventional partition-by-warehouse layout, as in the Calvin papers.
//! * **Scaled TPC-C** — the Rococo-style variant that treats the database as
//!   one large warehouse partitioned by item and district, stressing
//!   distributed transactions.
//! * **YCSB-like microbenchmark** ([`ycsb`]) — Calvin's read-modify-write
//!   microbenchmark with a *contention index* knob: each transaction updates
//!   10 keys across two partitions, touching exactly one hot key per
//!   participant partition; CI = 1/(hot keys per partition).
//!
//! Every workload is implemented twice — once against the ALOHA-DB engine
//! (`aloha-core`) and once against the Calvin baseline — behind the common
//! [`driver::Workload`] interface, so the figure harnesses in `aloha-bench`
//! can sweep both systems identically.

pub mod driver;
pub mod tpcc;
pub mod ycsb;

pub use driver::{run_windowed, DriverConfig, DriverReport, Workload};
