//! The YCSB-like microbenchmark from the Calvin evaluations (§V-A1).
//!
//! Each partition holds `keys_per_partition` records whose first `hot_keys`
//! are "hot". A transaction reads 10 keys and increments each by one,
//! touching exactly two partitions and exactly one hot key per participant
//! partition. The *contention index* CI = 1/`hot_keys` sets how contended
//! the hot keys are: CI = 0.1 means 10 hot keys per partition, CI = 0.0001
//! means 10 000.

use std::sync::Arc;

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Key, Result, ServerId, Value};
use aloha_core::{fn_program, ClusterBuilder, Database, TxnHandle, TxnOutcome, TxnPlan};
use aloha_functor::Functor;
use calvin::{CalvinClusterBuilder, CalvinDatabase, CalvinHandle, CalvinPlan};
use rand::rngs::SmallRng;
use rand::Rng;

/// Table tag for microbenchmark keys.
const YCSB_TAG: u8 = 20;

/// ALOHA program id.
pub const YCSB_ALOHA: aloha_core::ProgramId = aloha_core::ProgramId(13);
/// Calvin program id.
pub const YCSB_CALVIN: calvin::ProgramId = calvin::ProgramId(13);

/// Microbenchmark parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of partitions (= servers).
    pub partitions: u16,
    /// Records per partition (paper: 1 M; default scaled down for CI runs).
    pub keys_per_partition: u32,
    /// Hot keys per partition; the contention index is `1 / hot_keys`.
    pub hot_keys: u32,
    /// Keys accessed per transaction (paper: 10).
    pub keys_per_txn: usize,
    /// Partitions touched per transaction (paper: 2).
    pub partitions_per_txn: usize,
}

impl YcsbConfig {
    /// A configuration with the paper's transaction shape and the given
    /// contention index.
    ///
    /// # Panics
    ///
    /// Panics if `contention_index` is not in `(0, 1]`.
    pub fn with_contention_index(partitions: u16, contention_index: f64) -> YcsbConfig {
        assert!(
            contention_index > 0.0 && contention_index <= 1.0,
            "contention index must be in (0, 1]"
        );
        let hot_keys = (1.0 / contention_index).round().max(1.0) as u32;
        YcsbConfig {
            partitions,
            keys_per_partition: 100_000.max(hot_keys * 2),
            hot_keys,
            keys_per_txn: 10,
            partitions_per_txn: 2,
        }
    }

    /// Overrides the record count per partition.
    pub fn with_keys_per_partition(mut self, keys: u32) -> YcsbConfig {
        self.keys_per_partition = keys.max(self.hot_keys * 2);
        self
    }

    /// The contention index CI = 1 / hot keys.
    pub fn contention_index(&self) -> f64 {
        1.0 / self.hot_keys as f64
    }

    /// The key for record `idx` of partition `p`.
    pub fn key(&self, p: u16, idx: u32) -> Key {
        Key::with_route(p as u32, &[&[YCSB_TAG], &idx.to_be_bytes()])
    }
}

/// Generates the key set of one transaction: `partitions_per_txn` distinct
/// partitions; on each, one hot key plus an equal share of cold keys.
pub fn gen_txn_keys(rng: &mut SmallRng, cfg: &YcsbConfig) -> Vec<Key> {
    let touched = cfg.partitions_per_txn.min(cfg.partitions as usize);
    let mut parts: Vec<u16> = Vec::with_capacity(touched);
    while parts.len() < touched {
        let p = rng.gen_range(0..cfg.partitions);
        if !parts.contains(&p) {
            parts.push(p);
        }
    }
    let per_part = cfg.keys_per_txn / touched;
    let mut keys = Vec::with_capacity(cfg.keys_per_txn);
    for &p in &parts {
        // Exactly one hot key on each participant partition.
        keys.push(cfg.key(p, rng.gen_range(0..cfg.hot_keys)));
        let mut cold_used = std::collections::HashSet::new();
        while cold_used.len() < per_part - 1 {
            let idx = rng.gen_range(cfg.hot_keys..cfg.keys_per_partition);
            if cold_used.insert(idx) {
                keys.push(cfg.key(p, idx));
            }
        }
    }
    keys
}

/// A zipfian rank sampler over `0..n`, YCSB's request distribution
/// (Gray et al.'s closed-form inverse, the same construction the YCSB
/// client uses). Rank 0 is the hottest key.
///
/// # Examples
///
/// ```
/// use aloha_workloads::ycsb::Zipf;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(10_000, 0.99);
/// let mut rng = SmallRng::seed_from_u64(7);
/// assert!(zipf.sample(&mut rng) < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// A sampler over `0..n` with skew `theta` (YCSB default: 0.99).
    ///
    /// # Panics
    ///
    /// Panics unless `n > 0` and `theta` is in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipf skew must be in (0, 1), got {theta}"
        );
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = 1.0 + 1.0 / 2f64.powf(theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Draws one rank in `0..n`, hottest ranks most likely.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64) * (self.eta.mul_add(u, 1.0 - self.eta)).powf(self.alpha);
        (rank as u64).min(self.n - 1)
    }
}

/// Generates one transaction's key set with zipfian-ranked indices: the
/// paper's transaction shape (`partitions_per_txn` distinct partitions, an
/// equal share of distinct keys on each) but with every index drawn from
/// `zipf` instead of the hot/cold split — the request distribution of the
/// read-heavy YCSB mix.
pub fn gen_zipf_keys(rng: &mut SmallRng, cfg: &YcsbConfig, zipf: &Zipf) -> Vec<Key> {
    let touched = cfg.partitions_per_txn.min(cfg.partitions as usize);
    let mut parts: Vec<u16> = Vec::with_capacity(touched);
    while parts.len() < touched {
        let p = rng.gen_range(0..cfg.partitions);
        if !parts.contains(&p) {
            parts.push(p);
        }
    }
    let per_part = cfg.keys_per_txn / touched;
    let mut keys = Vec::with_capacity(cfg.keys_per_txn);
    for &p in &parts {
        let mut used = std::collections::HashSet::new();
        while used.len() < per_part {
            let idx = (zipf.sample(rng) as u32) % cfg.keys_per_partition;
            if used.insert(idx) {
                keys.push(cfg.key(p, idx));
            }
        }
    }
    keys
}

/// Encodes a transaction's key set as program args (the format
/// [`install_aloha`]'s program decodes). Public so multi-process drivers
/// can submit the same transactions through a [`aloha_core::Node`].
pub fn encode_txn_args(keys: &[Key]) -> Vec<u8> {
    encode_keys(keys)
}

fn encode_keys(keys: &[Key]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(keys.len() as u32);
    for key in keys {
        w.put_bytes(key.as_bytes());
    }
    w.into_bytes()
}

fn decode_keys(args: &[u8]) -> Result<Vec<Key>> {
    let mut r = Reader::new(args);
    let n = r.get_u32()?;
    (0..n).map(|_| Ok(Key::from(r.get_bytes()?))).collect()
}

/// Registers the microbenchmark program on an ALOHA cluster builder. Each
/// key becomes an `ADD(1)` functor — the read-modify-write collapses into a
/// single self-reading functor, needing no remote reads at all.
pub fn install_aloha(builder: &mut ClusterBuilder) {
    builder.register_program(
        YCSB_ALOHA,
        fn_program(|ctx| {
            let keys = decode_keys(ctx.args)?;
            let mut plan = TxnPlan::new();
            for key in keys {
                plan = plan.write(key, Functor::add(1));
            }
            Ok(plan)
        }),
    );
}

/// Registers the microbenchmark program on one node of a multi-process
/// ALOHA deployment (same program as [`install_aloha`]; every node of a
/// deployment must register it).
pub fn install_aloha_node(builder: &mut aloha_core::NodeBuilder) {
    builder.register_program(
        YCSB_ALOHA,
        fn_program(|ctx| {
            let keys = decode_keys(ctx.args)?;
            let mut plan = TxnPlan::new();
            for key in keys {
                plan = plan.write(key, Functor::add(1));
            }
            Ok(plan)
        }),
    );
}

/// Registers the microbenchmark program on a Calvin cluster builder:
/// read set = write set = the 10 keys; execute adds one to each.
pub fn install_calvin(builder: &mut CalvinClusterBuilder) {
    builder.register_program(
        YCSB_CALVIN,
        calvin::fn_program(
            |args| {
                let keys = decode_keys(args).unwrap_or_default();
                CalvinPlan {
                    read_set: keys.clone(),
                    write_set: keys,
                }
            },
            |args, reads, writes| {
                for key in decode_keys(args).unwrap_or_default() {
                    let old = reads
                        .get(&key)
                        .and_then(|v| v.as_ref())
                        .and_then(Value::as_i64)
                        .unwrap_or(0);
                    writes.push((key, Value::from_i64(old + 1)));
                }
            },
        ),
    );
}

/// Loads all records (initialized to zero) into an ALOHA cluster.
pub fn load_aloha(cluster: &aloha_core::Cluster, cfg: &YcsbConfig) {
    for p in 0..cfg.partitions {
        for idx in 0..cfg.keys_per_partition {
            cluster.load(cfg.key(p, idx), Value::from_i64(0));
        }
    }
}

/// Loads the records owned by one node of a multi-process deployment
/// (each node filters to its own partition). Returns rows loaded here.
pub fn load_aloha_node(node: &aloha_core::Node, cfg: &YcsbConfig) -> usize {
    let mut loaded = 0;
    for p in 0..cfg.partitions {
        for idx in 0..cfg.keys_per_partition {
            if node.load(cfg.key(p, idx), Value::from_i64(0)) {
                loaded += 1;
            }
        }
    }
    loaded
}

/// Every key of the microbenchmark's key space, for final-state reads.
pub fn all_keys(cfg: &YcsbConfig) -> Vec<Key> {
    let mut keys = Vec::with_capacity(cfg.partitions as usize * cfg.keys_per_partition as usize);
    for p in 0..cfg.partitions {
        for idx in 0..cfg.keys_per_partition {
            keys.push(cfg.key(p, idx));
        }
    }
    keys
}

/// Loads all records into a Calvin cluster.
pub fn load_calvin(cluster: &calvin::CalvinCluster, cfg: &YcsbConfig) {
    for p in 0..cfg.partitions {
        for idx in 0..cfg.keys_per_partition {
            cluster.load(cfg.key(p, idx), Value::from_i64(0));
        }
    }
}

/// The ALOHA microbenchmark workload target.
#[derive(Debug)]
pub struct AlohaYcsb {
    db: Database,
    cfg: Arc<YcsbConfig>,
}

impl AlohaYcsb {
    /// Binds the workload to a database handle.
    pub fn new(db: Database, cfg: YcsbConfig) -> AlohaYcsb {
        AlohaYcsb {
            db,
            cfg: Arc::new(cfg),
        }
    }
}

impl crate::driver::Workload for AlohaYcsb {
    type Handle = TxnHandle;

    fn submit(&self, rng: &mut SmallRng) -> Result<TxnHandle> {
        let keys = gen_txn_keys(rng, &self.cfg);
        // Coordinate from the first participant partition.
        let fe = ServerId(keys[0].partition(self.cfg.partitions).0);
        self.db.execute_at(fe, YCSB_ALOHA, encode_keys(&keys))
    }

    fn wait(&self, handle: TxnHandle) -> Result<bool> {
        Ok(handle.wait_processed()? == TxnOutcome::Committed)
    }
}

/// The Calvin microbenchmark workload target.
#[derive(Debug)]
pub struct CalvinYcsb {
    db: CalvinDatabase,
    cfg: Arc<YcsbConfig>,
}

impl CalvinYcsb {
    /// Binds the workload to a Calvin database handle.
    pub fn new(db: CalvinDatabase, cfg: YcsbConfig) -> CalvinYcsb {
        CalvinYcsb {
            db,
            cfg: Arc::new(cfg),
        }
    }
}

impl crate::driver::Workload for CalvinYcsb {
    type Handle = CalvinHandle;

    fn submit(&self, rng: &mut SmallRng) -> Result<CalvinHandle> {
        let keys = gen_txn_keys(rng, &self.cfg);
        let origin = ServerId(keys[0].partition(self.cfg.partitions).0);
        self.db.execute_at(origin, YCSB_CALVIN, encode_keys(&keys))
    }

    fn wait(&self, handle: CalvinHandle) -> Result<bool> {
        handle.wait()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> YcsbConfig {
        YcsbConfig::with_contention_index(4, 0.01).with_keys_per_partition(1_000)
    }

    #[test]
    fn contention_index_round_trips() {
        let c = YcsbConfig::with_contention_index(4, 0.01);
        assert_eq!(c.hot_keys, 100);
        assert!((c.contention_index() - 0.01).abs() < 1e-12);
        let extreme = YcsbConfig::with_contention_index(4, 0.1);
        assert_eq!(extreme.hot_keys, 10);
    }

    #[test]
    fn txn_touches_exactly_two_partitions_with_one_hot_key_each() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let keys = gen_txn_keys(&mut rng, &cfg);
            assert_eq!(keys.len(), cfg.keys_per_txn);
            let partitions: std::collections::HashSet<_> =
                keys.iter().map(|k| k.partition(cfg.partitions)).collect();
            assert_eq!(partitions.len(), 2);
            // One hot key per partition: hot keys have idx < hot_keys.
            for p in &partitions {
                let hot = keys
                    .iter()
                    .filter(|k| k.partition(cfg.partitions) == *p)
                    .filter(|k| {
                        let parts = k.parts().unwrap();
                        u32::from_be_bytes(parts[1].try_into().unwrap()) < cfg.hot_keys
                    })
                    .count();
                assert_eq!(hot, 1, "exactly one hot key per participant");
            }
        }
    }

    #[test]
    fn keys_round_trip_through_args() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(9);
        let keys = gen_txn_keys(&mut rng, &cfg);
        assert_eq!(decode_keys(&encode_keys(&keys)).unwrap(), keys);
    }

    #[test]
    #[should_panic(expected = "contention index")]
    fn zero_contention_index_panics() {
        let _ = YcsbConfig::with_contention_index(2, 0.0);
    }

    #[test]
    fn zipf_is_skewed_and_in_bounds() {
        let zipf = Zipf::new(1_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..20_000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 1_000);
            counts[rank as usize] += 1;
        }
        // Rank 0 must dominate: with theta 0.99 over 1k keys it draws
        // roughly an eighth of all requests.
        assert!(
            counts[0] > 1_000,
            "hottest rank undersampled: {}",
            counts[0]
        );
        assert!(
            counts[0] > 20 * counts[500].max(1),
            "distribution not skewed: head {} vs median {}",
            counts[0],
            counts[500]
        );
    }

    #[test]
    fn zipf_keys_keep_the_paper_transaction_shape() {
        let cfg = cfg();
        let zipf = Zipf::new(cfg.keys_per_partition as u64, 0.99);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let keys = gen_zipf_keys(&mut rng, &cfg, &zipf);
            assert_eq!(keys.len(), cfg.keys_per_txn);
            let partitions: std::collections::HashSet<_> =
                keys.iter().map(|k| k.partition(cfg.partitions)).collect();
            assert_eq!(partitions.len(), cfg.partitions_per_txn);
            // Keys are distinct within each partition.
            let distinct: std::collections::HashSet<_> = keys.iter().collect();
            assert_eq!(distinct.len(), keys.len());
        }
    }

    #[test]
    fn single_partition_cluster_degrades_gracefully() {
        let cfg = YcsbConfig::with_contention_index(1, 0.1).with_keys_per_partition(100);
        let mut rng = SmallRng::seed_from_u64(1);
        let keys = gen_txn_keys(&mut rng, &cfg);
        assert_eq!(keys.len(), cfg.keys_per_txn);
        assert!(keys.iter().all(|k| k.partition(1).0 == 0));
    }
}
