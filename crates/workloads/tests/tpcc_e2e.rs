//! End-to-end workload tests: TPC-C and YCSB on both systems, checking
//! database consistency invariants after the run.

use std::time::Duration;

use aloha_common::Value;
use aloha_core::{Cluster, ClusterConfig, TxnOutcome};
use aloha_workloads::driver::{run_windowed, DriverConfig, Workload};
use aloha_workloads::tpcc::{self, gen, TpccConfig, TxnMix};
use aloha_workloads::ycsb;
use calvin::{CalvinCluster, CalvinConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_tpcc(partitions: u16) -> TpccConfig {
    TpccConfig::by_warehouse(partitions, 1)
        .with_items(100)
        .with_customers(10)
}

fn aloha_cluster(cfg: &TpccConfig) -> Cluster {
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions).with_epoch_duration(Duration::from_millis(3)),
    );
    tpcc::aloha::install(&mut builder, cfg);
    let cluster = builder.start().unwrap();
    tpcc::aloha::load(&cluster, cfg);
    cluster
}

#[test]
fn aloha_new_order_assigns_sequential_order_ids() {
    let cfg = small_tpcc(2);
    let cluster = aloha_cluster(&cfg);
    let db = cluster.database();
    let mut rng = SmallRng::seed_from_u64(11);

    // Submit a burst of NewOrders, all to warehouse 0 / district 0.
    let mut handles = Vec::new();
    for _ in 0..20 {
        let mut req = gen::gen_new_order(&mut rng, &cfg, false);
        req.w = 0;
        req.d = 0;
        handles.push(db.execute(tpcc::aloha::NEW_ORDER, req.encode()).unwrap());
    }
    let mut committed = 0;
    for h in handles {
        if h.wait_processed().unwrap() == TxnOutcome::Committed {
            committed += 1;
        }
    }
    assert_eq!(committed, 20);

    // next_o_id advanced by exactly the committed count.
    let noid = db.read_latest(&[cfg.district_noid_key(0, 0)]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(noid, TpccConfig::INITIAL_NEXT_O_ID + 20);

    // Every order row exists (dependent keys were installed by deferred
    // writes) with sequential ids.
    for o in 0..20i64 {
        let o_id = TpccConfig::INITIAL_NEXT_O_ID + o;
        let row = db.read_latest(&[cfg.order_key(0, 0, o_id)]).unwrap()[0].clone();
        let order = tpcc::OrderRow::decode(row.as_ref().expect("order row must exist")).unwrap();
        assert_eq!(order.o_id, o_id);
        assert!((5..=15).contains(&(order.ol_cnt as usize)));
        // Its order lines exist too, with consistent amounts.
        for number in 0..order.ol_cnt {
            let ol_val = db
                .read_latest(&[cfg.orderline_key(0, 0, o_id, number)])
                .unwrap()[0]
                .clone()
                .expect("order line must exist");
            let ol = tpcc::OrderLineRow::decode(&ol_val).unwrap();
            assert_eq!(ol.o_id, o_id);
            assert!(ol.amount_cents > 0);
        }
    }
    cluster.shutdown();
}

#[test]
fn aloha_new_order_invalid_items_abort_and_roll_back() {
    let cfg = small_tpcc(2).with_invalid_fraction(1.0); // every txn aborts
    let cluster = aloha_cluster(&cfg);
    let db = cluster.database();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut handles = Vec::new();
    for _ in 0..10 {
        let mut req = gen::gen_new_order(&mut rng, &cfg, true);
        req.w = 0;
        req.d = 0;
        assert!(req.has_invalid_item());
        handles.push(db.execute(tpcc::aloha::NEW_ORDER, req.encode()).unwrap());
    }
    for h in handles {
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Aborted);
    }
    // The district counter must be untouched: aborted versions are skipped.
    let noid = db.read_latest(&[cfg.district_noid_key(0, 0)]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(noid, TpccConfig::INITIAL_NEXT_O_ID);
    // And no order rows leaked.
    let row = db
        .read_latest(&[cfg.order_key(0, 0, TpccConfig::INITIAL_NEXT_O_ID)])
        .unwrap()[0]
        .clone();
    assert!(row.is_none(), "aborted NewOrder must not create order rows");
    cluster.shutdown();
}

#[test]
fn aloha_payment_conserves_totals() {
    let cfg = small_tpcc(2);
    let cluster = aloha_cluster(&cfg);
    let db = cluster.database();
    let mut rng = SmallRng::seed_from_u64(17);
    let mut handles = Vec::new();
    let mut total = 0i64;
    let mut reqs = Vec::new();
    for _ in 0..15 {
        let req = gen::gen_payment(&mut rng, &cfg);
        total += req.amount_cents;
        handles.push(db.execute(tpcc::aloha::PAYMENT, req.encode()).unwrap());
        reqs.push(req);
    }
    for h in handles {
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    }
    // Sum of warehouse YTDs equals the total paid.
    let wytd_keys: Vec<_> = (0..cfg.warehouses).map(|w| cfg.wytd_key(w)).collect();
    let wytds = db.read_latest(&wytd_keys).unwrap();
    let wsum: i64 = wytds
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(wsum, total);
    // Customer balances decreased by the same total (started at -1000 each).
    let mut expected_balance_delta = 0i64;
    for req in &reqs {
        expected_balance_delta += req.amount_cents;
        let bal = db
            .read_latest(&[cfg.cbal_key(req.c_w, req.c_d, req.c)])
            .unwrap()[0]
            .as_ref()
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(bal < -1_000, "balance must have decreased");
    }
    assert!(expected_balance_delta > 0);
    cluster.shutdown();
}

#[test]
fn aloha_scaled_tpcc_spreads_across_partitions() {
    let cfg = TpccConfig::scaled(3, 2).with_items(99).with_customers(10);
    let cluster = aloha_cluster(&cfg);
    let db = cluster.database();
    let mut rng = SmallRng::seed_from_u64(23);
    let mut handles = Vec::new();
    for _ in 0..15 {
        let req = gen::gen_new_order(&mut rng, &cfg, false);
        handles.push(db.execute(tpcc::aloha::NEW_ORDER, req.encode()).unwrap());
    }
    for h in handles {
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    }
    // All district counters sum to initial + committed.
    let keys: Vec<_> = (0..cfg.districts)
        .map(|d| cfg.district_noid_key(0, d))
        .collect();
    let noids = db.read_latest(&keys).unwrap();
    let sum: i64 = noids
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(
        sum,
        cfg.districts as i64 * TpccConfig::INITIAL_NEXT_O_ID + 15
    );
    cluster.shutdown();
}

#[test]
fn calvin_new_order_matches_district_counters() {
    let cfg = small_tpcc(2);
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions).with_batch_duration(Duration::from_millis(3)),
    );
    tpcc::calvin_impl::install(&mut builder, &cfg);
    let cluster = builder.start().unwrap();
    tpcc::calvin_impl::load(&cluster, &cfg);
    let db = cluster.database();
    let target = tpcc::calvin_impl::CalvinTpcc::new(db, cfg.clone(), TxnMix::NewOrderOnly);
    let mut rng = SmallRng::seed_from_u64(31);
    let mut handles = Vec::new();
    for _ in 0..20 {
        handles.push(target.submit(&mut rng).unwrap());
    }
    for h in handles {
        assert!(target.wait(h).unwrap());
    }
    // Total orders created across districts equals 20.
    let mut created = 0i64;
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts {
            let noid = cluster
                .read(&cfg.district_noid_key(w, d))
                .unwrap()
                .as_i64()
                .unwrap();
            created += noid - TpccConfig::INITIAL_NEXT_O_ID;
        }
    }
    assert_eq!(created, 20);
    cluster.shutdown();
}

#[test]
fn ycsb_increments_are_exact_on_both_systems() {
    let ycfg = ycsb::YcsbConfig::with_contention_index(2, 0.1).with_keys_per_partition(200);

    // ALOHA.
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(3)));
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().unwrap();
    ycsb::load_aloha(&cluster, &ycfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), ycfg.clone());
    let mut rng = SmallRng::seed_from_u64(41);
    let mut handles = Vec::new();
    for _ in 0..30 {
        handles.push(target.submit(&mut rng).unwrap());
    }
    // The audit below reads through a *fresh* session handle, so it must
    // carry the writers' observation across: without a floor, snapshot reads
    // may legitimately serve from a compute frontier that predates the last
    // waited commits (stale-but-consistent). `note_observed` pins the floor
    // at the newest write so the audit is exact.
    let observed = handles.iter().map(|h| h.timestamp()).max().unwrap();
    for h in handles {
        assert!(target.wait(h).unwrap());
    }
    let mut sum = 0i64;
    let db = cluster.database();
    db.note_observed(observed);
    for p in 0..ycfg.partitions {
        let keys: Vec<_> = (0..ycfg.keys_per_partition)
            .map(|i| ycfg.key(p, i))
            .collect();
        for chunk in keys.chunks(500) {
            for v in db.read_latest(chunk).unwrap() {
                sum += v.as_ref().and_then(Value::as_i64).unwrap_or(0);
            }
        }
    }
    assert_eq!(
        sum as usize,
        30 * ycfg.keys_per_txn,
        "every increment applied exactly once"
    );
    cluster.shutdown();

    // Calvin.
    let mut builder =
        CalvinCluster::builder(CalvinConfig::new(2).with_batch_duration(Duration::from_millis(3)));
    ycsb::install_calvin(&mut builder);
    let ccluster = builder.start().unwrap();
    ycsb::load_calvin(&ccluster, &ycfg);
    let ctarget = ycsb::CalvinYcsb::new(ccluster.database(), ycfg.clone());
    let mut handles = Vec::new();
    for _ in 0..30 {
        handles.push(ctarget.submit(&mut rng).unwrap());
    }
    for h in handles {
        assert!(ctarget.wait(h).unwrap());
    }
    let mut csum = 0i64;
    for p in 0..ycfg.partitions {
        for i in 0..ycfg.keys_per_partition {
            csum += ccluster
                .read(&ycfg.key(p, i))
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
        }
    }
    assert_eq!(csum as usize, 30 * ycfg.keys_per_txn);
    ccluster.shutdown();
}

#[test]
fn driver_runs_aloha_tpcc_under_load() {
    let cfg = small_tpcc(2);
    let cluster = aloha_cluster(&cfg);
    let target = tpcc::aloha::AlohaTpcc::new(cluster.database(), cfg, TxnMix::NewOrderOnly, true);
    let report = run_windowed(
        &target,
        &DriverConfig {
            threads: 2,
            window: 8,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(100),
            seed: 1,
            pacing: None,
        },
    );
    assert!(report.completed > 0, "driver must complete transactions");
    assert_eq!(report.errors, 0);
    assert!(report.throughput_tps() > 0.0);
    // With 1% invalid items a small abort share is expected but not certain
    // in a short run; committed must dominate.
    assert!(report.committed > report.aborted);
    cluster.shutdown();
}

#[test]
fn driver_runs_calvin_tpcc_under_load() {
    let cfg = small_tpcc(2);
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions).with_batch_duration(Duration::from_millis(3)),
    );
    tpcc::calvin_impl::install(&mut builder, &cfg);
    let cluster = builder.start().unwrap();
    tpcc::calvin_impl::load(&cluster, &cfg);
    let target =
        tpcc::calvin_impl::CalvinTpcc::new(cluster.database(), cfg.clone(), TxnMix::NewOrderOnly);
    let report = run_windowed(
        &target,
        &DriverConfig {
            threads: 2,
            window: 8,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(100),
            seed: 2,
            pacing: None,
        },
    );
    assert!(report.completed > 0);
    assert_eq!(report.errors, 0);
    assert_eq!(report.aborted, 0, "calvin never aborts");
    cluster.shutdown();
}
