//! The extension TPC-C transactions: OrderStatus, StockLevel (delayed
//! read-only) and Delivery (dependent read-write).

use std::time::Duration;

use aloha_core::{Cluster, ClusterConfig, Database, TxnOutcome};
use aloha_workloads::tpcc::{self, gen, read_txns, DeliveryReq, TpccConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build(cfg: &TpccConfig) -> Cluster {
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions).with_epoch_duration(Duration::from_millis(3)),
    );
    tpcc::aloha::install(&mut builder, cfg);
    read_txns::install_delivery(&mut builder, cfg);
    let cluster = builder.start().unwrap();
    tpcc::aloha::load(&cluster, cfg);
    read_txns::load_delivery_cursors(&cluster, cfg);
    cluster
}

// Orders are placed through the caller's own database handle so the
// caller's session floor covers the commits: reads issued afterwards
// through the same handle are guaranteed to observe them, instead of a
// stale-but-consistent snapshot from a fresh session.
fn place_orders(db: &Database, cfg: &TpccConfig, count: usize, w: u32, d: u32) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut customers = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..count {
        let mut req = gen::gen_new_order(&mut rng, cfg, false);
        req.w = w;
        req.d = d;
        customers.push(req.c);
        handles.push(db.execute(tpcc::aloha::NEW_ORDER, req.encode()).unwrap());
    }
    for h in handles {
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    }
    customers
}

#[test]
fn order_status_finds_latest_order_of_customer() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(50)
        .with_customers(5);
    let cluster = build(&cfg);
    let db = cluster.database();
    let customers = place_orders(&db, &cfg, 8, 0, 0);
    let target = *customers.last().unwrap();
    let status = read_txns::order_status(&db, &cfg, 0, 0, target).unwrap();
    let order = status.last_order.expect("customer just ordered");
    assert_eq!(order.c_id, target);
    // The latest order of this customer is the last one they placed.
    let expected_o_id = TpccConfig::INITIAL_NEXT_O_ID
        + customers.iter().rposition(|&c| c == target).unwrap() as i64;
    assert_eq!(order.o_id, expected_o_id);
    assert_eq!(status.lines.len(), order.ol_cnt as usize);
    assert!(status.lines.iter().all(|l| l.o_id == order.o_id));
    cluster.shutdown();
}

#[test]
fn order_status_for_idle_customer_is_empty() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(50)
        .with_customers(8);
    let cluster = build(&cfg);
    let db = cluster.database();
    let status = read_txns::order_status(&db, &cfg, 0, 3, 7).unwrap();
    assert!(status.last_order.is_none());
    assert!(status.lines.is_empty());
    assert_eq!(status.balance_cents, -1_000, "loaded balance");
    cluster.shutdown();
}

#[test]
fn stock_level_counts_low_stock_items() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(40)
        .with_customers(5);
    let cluster = build(&cfg);
    let db = cluster.database();
    place_orders(&db, &cfg, 5, 0, 0);
    // Threshold above every possible quantity: everything ordered is "low".
    let all = read_txns::stock_level(&db, &cfg, 0, 0, 5, 1_000).unwrap();
    assert!(all > 0);
    // Threshold below every possible quantity: nothing is low.
    let none = read_txns::stock_level(&db, &cfg, 0, 0, 5, 0).unwrap();
    assert_eq!(none, 0);
    cluster.shutdown();
}

#[test]
fn delivery_advances_cursor_and_credits_customer() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(50)
        .with_customers(5);
    let cluster = build(&cfg);
    let db = cluster.database();
    let customers = place_orders(&db, &cfg, 3, 0, 0);

    // Balance of the first order's customer before delivery.
    let first_customer = customers[0];
    let before = db
        .read_latest(&[cfg.cbal_key(0, 0, first_customer)])
        .unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    // The first order's total.
    let status = read_txns::order_status(&db, &cfg, 0, 0, first_customer).unwrap();
    let _ = status;

    let h = db
        .execute(read_txns::DELIVERY, DeliveryReq { w: 0, d: 0 }.encode())
        .unwrap();
    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);

    // Cursor advanced past the first order.
    let cursor = db.read_latest(&[cfg.delivery_cursor_key(0, 0)]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(cursor, TpccConfig::INITIAL_NEXT_O_ID + 1);
    // The NewOrder row of the delivered order is gone.
    let no_row = db
        .read_latest(&[cfg.neworder_key(0, 0, TpccConfig::INITIAL_NEXT_O_ID)])
        .unwrap()[0]
        .clone();
    assert!(
        no_row.is_none(),
        "delivered order must leave the new-order table"
    );
    // The customer got credited with the order total.
    let after = db
        .read_latest(&[cfg.cbal_key(0, 0, first_customer)])
        .unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    let lines_total: i64 = {
        let order_raw = db
            .read_latest(&[cfg.order_key(0, 0, TpccConfig::INITIAL_NEXT_O_ID)])
            .unwrap()[0]
            .clone()
            .unwrap();
        let order = tpcc::OrderRow::decode(&order_raw).unwrap();
        (0..order.ol_cnt)
            .map(|n| {
                let raw = db
                    .read_latest(&[cfg.orderline_key(0, 0, order.o_id, n)])
                    .unwrap()[0]
                    .clone()
                    .unwrap();
                tpcc::OrderLineRow::decode(&raw).unwrap().amount_cents
            })
            .sum()
    };
    assert_eq!(after, before + lines_total);
    cluster.shutdown();
}

#[test]
fn delivery_on_empty_district_is_a_skipped_delivery() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(30)
        .with_customers(5);
    let cluster = build(&cfg);
    let db = cluster.database();
    let h = db
        .execute(read_txns::DELIVERY, DeliveryReq { w: 0, d: 9 }.encode())
        .unwrap();
    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    let cursor = db.read_latest(&[cfg.delivery_cursor_key(0, 9)]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(
        cursor,
        TpccConfig::INITIAL_NEXT_O_ID,
        "nothing delivered: cursor unchanged"
    );
    cluster.shutdown();
}

#[test]
fn sequential_deliveries_drain_the_new_order_queue() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(40)
        .with_customers(4);
    let cluster = build(&cfg);
    let db = cluster.database();
    place_orders(&db, &cfg, 3, 0, 0);
    for _ in 0..3 {
        db.execute(read_txns::DELIVERY, DeliveryReq { w: 0, d: 0 }.encode())
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    for o in 0..3i64 {
        let row = db
            .read_latest(&[cfg.neworder_key(0, 0, TpccConfig::INITIAL_NEXT_O_ID + o)])
            .unwrap()[0]
            .clone();
        assert!(row.is_none(), "order {o} must be delivered");
    }
    let cursor = db.read_latest(&[cfg.delivery_cursor_key(0, 0)]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(cursor, TpccConfig::INITIAL_NEXT_O_ID + 3);
    cluster.shutdown();
}
