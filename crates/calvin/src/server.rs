//! One Calvin server: sequencer, scheduler (single-threaded lock manager)
//! and execution workers.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::metrics::{
    duration_micros, Counter, Histogram, HistogramSnapshot, LifecycleTracer, Stage, TxnTrace,
    STAGE_COUNT,
};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{HistoryLog, Key, Result, ServerId, Value};
use aloha_control::Pacer;
use aloha_net::{reply_pair, Addr, Endpoint, Executor, ReplyHandle, Transport};
use aloha_storage::DurableLog;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::durability::{CalvinWal, CalvinWalRecord};
use crate::exchange::{PendingCompletions, ReadExchange};
use crate::lock::{LockManager, LockMode};
use crate::msg::{CalvinMsg, CalvinTxn, GlobalTxnId};
use crate::program::{CalvinRegistry, ProgramId};
use crate::store::CalvinStore;

/// Per-server record of the merged deterministic order: every scheduler logs
/// the full global transaction order (not just the transactions it
/// participates in), so any server's log replays the whole workload.
pub type CalvinHistory = HistoryLog<CalvinTxn>;

/// How many sealed rounds each sequencer re-broadcasts while fault injection
/// is active. Schedulers merge rounds strictly in order, so one dropped batch
/// stalls every later round on that scheduler until a re-broadcast arrives;
/// the ring must therefore out-last the longest injected disruption
/// (32 rounds ≈ 32 × batch_duration).
const SEALED_ROUNDS_RING: usize = 32;

/// How many finished executions each server remembers for re-broadcast. A
/// peer whose `ReadResults`/`TxnDone` was dropped recovers from the next
/// sequencer tick's re-send.
const RECENT_EXECS_RING: usize = 128;

/// One finished execution, kept for re-broadcast under fault injection.
struct RecentExec {
    txn: GlobalTxnId,
    others: Vec<ServerId>,
    values: Vec<(Key, Option<Value>)>,
}

/// Per-server Calvin metrics on the same six-stage schema as the ALOHA
/// engine, so figures can compare the engines stage-for-stage:
/// `transform` = planning the stored procedure, `timestamp_grant` =
/// sequencing wait (submit → deterministic merge), `functor_install` = lock
/// wait, `epoch_close` = the read-exchange barrier, `functor_computing` =
/// procedure execution, `commit` = origin-side completion wait.
#[derive(Debug, Default)]
pub struct CalvinStats {
    tracer: LifecycleTracer,
    latency: Histogram,
    completed: Counter,
    scheduled: Counter,
}

impl CalvinStats {
    /// The lifecycle tracer: per-stage histograms plus recent traces.
    pub fn tracer(&self) -> &LifecycleTracer {
        &self.tracer
    }

    /// End-to-end latency (submit → all participants done).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Transactions completed with this server as origin.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Transactions this partition participated in.
    pub fn scheduled(&self) -> u64 {
        self.scheduled.get()
    }

    /// Mergeable raw histograms: the six stages in [`Stage::ALL`] order plus
    /// end-to-end latency last (same layout as the ALOHA engine's).
    pub fn raw_histograms(&self) -> [HistogramSnapshot; STAGE_COUNT + 1] {
        let stages = self.tracer.stage_snapshots();
        std::array::from_fn(|i| {
            if i < STAGE_COUNT {
                stages[i].clone()
            } else {
                self.latency.snapshot()
            }
        })
    }

    /// Exports this server's metrics as one node of the unified stats tree.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("completed", self.completed());
        node.set_counter("scheduled", self.scheduled());
        for (stage, snap) in Stage::ALL.iter().zip(self.tracer.stage_snapshots()) {
            node.set_stage(stage.name(), StageStats::from(&snap));
        }
        node.set_stage("e2e", StageStats::from(&self.latency.snapshot()));
        node
    }

    /// Clears all metrics.
    pub fn reset(&self) {
        self.tracer.reset();
        self.latency.reset();
        self.completed.reset();
        self.scheduled.reset();
    }
}

/// Events driving the single scheduler thread.
pub(crate) enum SchedulerEvent {
    Batch {
        from: ServerId,
        round: u64,
        txns: Vec<CalvinTxn>,
    },
    Done {
        local_seq: u64,
    },
}

/// A transaction dispatched to an execution worker.
pub(crate) struct ExecTask {
    local_seq: u64,
    txn: CalvinTxn,
    lock_requested_at: Instant,
}

/// One Calvin server process.
pub struct CalvinServer {
    id: ServerId,
    total: u16,
    store: CalvinStore,
    registry: Arc<CalvinRegistry>,
    net: Arc<dyn Transport<CalvinMsg>>,
    exchange: ReadExchange,
    completions: PendingCompletions,
    submissions: Mutex<Vec<CalvinTxn>>,
    next_seq: AtomicU64,
    sched_tx: Sender<SchedulerEvent>,
    exec_tx: Sender<ExecTask>,
    /// Bounded executor whose blocking lane runs distributed transactions
    /// (they park on peer read broadcasts), aligned with the ALOHA engine's
    /// data-plane executor.
    exec: Executor,
    stats: CalvinStats,
    shutdown: AtomicBool,
    rpc_timeout: Duration,
    /// Sealed (round, batch) pairs re-broadcast every tick under faults.
    sealed_rounds: Mutex<VecDeque<(u64, Vec<CalvinTxn>)>>,
    /// Finished executions re-broadcast every tick under faults.
    recent_execs: Mutex<VecDeque<RecentExec>>,
    /// The merged global order, recorded when history recording is on.
    history: Option<Arc<CalvinHistory>>,
    /// Durable log (`None` on an in-memory-only cluster). Seal records go
    /// through it at sequencer ticks, Put records at worker write-back.
    log: Option<Arc<DurableLog>>,
    /// First round this incarnation seals and merges. `0` on a fresh
    /// server; recovered-round + 1 after a restart (earlier rounds are
    /// already reflected in the replayed store and must not re-execute).
    start_round: u64,
    /// Highest round observed in any peer's `Batch`. A restarted sequencer
    /// burst-seals up to this frontier so peer schedulers stalled on this
    /// server's missing rounds unblock within one tick.
    max_peer_round: AtomicU64,
    /// Highest round this server sealed; the checkpoint coordinate.
    last_sealed_round: AtomicU64,
}

impl std::fmt::Debug for CalvinServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinServer")
            .field("id", &self.id)
            .finish()
    }
}

impl CalvinServer {
    pub(crate) fn new(
        id: ServerId,
        total: u16,
        registry: Arc<CalvinRegistry>,
        net: Arc<dyn Transport<CalvinMsg>>,
        exec: Executor,
        history: Option<Arc<CalvinHistory>>,
        wal: Option<CalvinWal>,
    ) -> (
        Arc<CalvinServer>,
        Receiver<SchedulerEvent>,
        Receiver<ExecTask>,
    ) {
        let (sched_tx, sched_rx) = crossbeam::channel::unbounded();
        let (exec_tx, exec_rx) = crossbeam::channel::unbounded();
        let (log, start_round, start_seq, ring, store) = match wal {
            Some(w) => (Some(w.log), w.start_round, w.start_seq, w.ring, w.store),
            None => (None, 0, 0, Vec::new(), CalvinStore::new()),
        };
        let server = Arc::new(CalvinServer {
            id,
            total,
            store,
            registry,
            net,
            exchange: ReadExchange::new(),
            completions: PendingCompletions::new(),
            submissions: Mutex::new(Vec::new()),
            // Resuming past every persisted sequence keeps GlobalTxnIds
            // unique across incarnations: peers have retired the pre-crash
            // ids and silently drop messages that reuse them.
            next_seq: AtomicU64::new(start_seq),
            sched_tx,
            exec_tx,
            exec,
            stats: CalvinStats::default(),
            shutdown: AtomicBool::new(false),
            rpc_timeout: Duration::from_secs(30),
            sealed_rounds: Mutex::new(ring.into()),
            recent_execs: Mutex::new(VecDeque::new()),
            history,
            log,
            start_round,
            max_peer_round: AtomicU64::new(0),
            last_sealed_round: AtomicU64::new(start_round.saturating_sub(1)),
        });
        (server, sched_rx, exec_rx)
    }

    /// Whether loss-recovery re-broadcasts are active: under fault
    /// injection, and on durable clusters (a restarted server depends on
    /// its peers' ring re-broadcasts to recover the rounds it missed while
    /// down, and on its own to unstall peers waiting on its rounds).
    fn resend_enabled(&self) -> bool {
        self.log.is_some() || self.net.fault_plan().is_some()
    }

    /// This server's record of the merged global order (present when history
    /// recording is on).
    pub fn history(&self) -> Option<&Arc<CalvinHistory>> {
        self.history.as_ref()
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// This server's partition store.
    pub fn store(&self) -> &CalvinStore {
        &self.store
    }

    /// This server's durable log, when durability is configured.
    pub fn durable_log(&self) -> Option<&Arc<DurableLog>> {
        self.log.as_ref()
    }

    /// Highest round this server has sealed.
    pub fn last_sealed_round(&self) -> u64 {
        self.last_sealed_round.load(Ordering::Relaxed)
    }

    /// The next local submission sequence number (the checkpoint persists
    /// it so a restart never reuses a `GlobalTxnId`).
    pub(crate) fn next_seq_watermark(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// First round this incarnation seals (non-zero after a restart).
    pub(crate) fn start_round(&self) -> u64 {
        self.start_round
    }

    /// Highest round observed from any peer sequencer.
    pub(crate) fn max_peer_round(&self) -> u64 {
        self.max_peer_round.load(Ordering::Relaxed)
    }

    /// This server's metrics.
    pub fn stats(&self) -> &CalvinStats {
        &self.stats
    }

    /// This server's bounded transaction executor.
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// Instantaneous transaction backlog on this server: submissions waiting
    /// to be sealed, scheduler events not yet merged, and dispatched tasks
    /// not yet picked up by a worker. This is the pressure signal the
    /// control plane's pacer samples.
    pub fn backlog_len(&self) -> u64 {
        self.submissions.lock().len() as u64
            + self.sched_tx.len() as u64
            + self.exec_tx.len() as u64
    }

    /// The server owning `key`.
    pub fn owner_of(&self, key: &Key) -> ServerId {
        ServerId(key.partition(self.total).0)
    }

    pub(crate) fn mark_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.exchange.poison();
        self.completions.fail_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Submits a transaction to this server's sequencer. The returned handle
    /// resolves when every participant finished executing.
    ///
    /// # Errors
    ///
    /// Returns [`aloha_common::Error::UnknownProgram`] for unregistered
    /// programs.
    pub fn submit(self: &Arc<Self>, program: ProgramId, args: &[u8]) -> Result<CalvinSubmission> {
        let plan_started = Instant::now();
        let plan = self.registry.get(program)?.plan(args);
        self.stats
            .tracer
            .record_stage(Stage::Transform, duration_micros(plan_started.elapsed()));
        let participants = self.participants_of(&plan);
        let id = GlobalTxnId {
            origin: self.id,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        let (slot, handle) = reply_pair();
        self.completions.register(id, participants.len(), slot);
        let submitted_at = Instant::now();
        self.submissions.lock().push(CalvinTxn {
            id,
            program,
            args: args.to_vec(),
            submitted_at,
        });
        Ok(CalvinSubmission {
            server: Arc::clone(self),
            handle,
            submitted_at,
        })
    }

    fn participants_of(&self, plan: &crate::program::CalvinPlan) -> Vec<ServerId> {
        let mut participants: Vec<ServerId> = plan.all_keys().map(|k| self.owner_of(k)).collect();
        participants.sort();
        participants.dedup();
        participants
    }

    /// Sequencer tick: seals the current batch for `round` and broadcasts it
    /// to every scheduler (including this server's own).
    ///
    /// Under fault injection the whole ring of recently sealed rounds is
    /// re-broadcast each tick (schedulers drop batches for rounds they
    /// already merged), and so are recently finished executions — together
    /// these recover any dropped `Batch`, `ReadResults` or `TxnDone` within
    /// one tick of the fault clearing.
    pub(crate) fn seal_batch(&self, round: u64) {
        let txns = std::mem::take(&mut *self.submissions.lock());
        // Persist the sealed round before anyone hears about it, then group
        // commit: the batch is Calvin's epoch, so one flush/fsync per round
        // mirrors the ALOHA engine's epoch group commit.
        if let Some(log) = &self.log {
            let record = CalvinWalRecord::Seal {
                round,
                txns: txns.clone(),
            };
            let _ = log.append(record.version(), &record.encode());
            let _ = log.commit();
        }
        self.last_sealed_round.fetch_max(round, Ordering::Relaxed);
        if !self.resend_enabled() {
            for i in 0..self.total {
                let msg = CalvinMsg::Batch {
                    from: self.id,
                    round,
                    txns: txns.clone(),
                };
                let _ = self.net.send(Addr::Server(ServerId(i)), msg);
            }
            return;
        }
        let ring: Vec<(u64, Vec<CalvinTxn>)> = {
            let mut sealed = self.sealed_rounds.lock();
            sealed.push_back((round, txns));
            if sealed.len() > SEALED_ROUNDS_RING {
                sealed.pop_front();
            }
            sealed.iter().cloned().collect()
        };
        for (r, t) in &ring {
            for i in 0..self.total {
                let msg = CalvinMsg::Batch {
                    from: self.id,
                    round: *r,
                    txns: t.clone(),
                };
                let _ = self.net.send(Addr::Server(ServerId(i)), msg);
            }
        }
        self.resend_recent_execs();
    }

    /// Re-sends `ReadResults` and `TxnDone` for recently finished
    /// executions. Receivers dedup (exchange per peer, completions per
    /// participant) and drop messages for retired transactions, so
    /// re-sending is always safe.
    fn resend_recent_execs(&self) {
        let recents = self.recent_execs.lock();
        for exec in recents.iter() {
            for &peer in &exec.others {
                let _ = self.net.send(
                    Addr::Server(peer),
                    CalvinMsg::ReadResults {
                        txn: exec.txn,
                        from: self.id,
                        values: exec.values.clone(),
                    },
                );
            }
            if exec.txn.origin != self.id {
                let _ = self.net.send(
                    Addr::Server(exec.txn.origin),
                    CalvinMsg::TxnDone {
                        txn: exec.txn,
                        from: self.id,
                    },
                );
            }
        }
    }

    /// Remembers a finished execution for fault-recovery re-broadcast.
    fn remember_exec(&self, exec: RecentExec) {
        let mut recents = self.recent_execs.lock();
        recents.push_back(exec);
        if recents.len() > RECENT_EXECS_RING {
            recents.pop_front();
        }
    }
}

/// A submitted Calvin transaction; resolves on full completion.
#[derive(Debug)]
pub struct CalvinSubmission {
    server: Arc<CalvinServer>,
    handle: ReplyHandle<()>,
    submitted_at: Instant,
}

impl CalvinSubmission {
    /// Blocks until every participant executed the transaction.
    ///
    /// # Errors
    ///
    /// Fails if the cluster shut down before completion.
    pub fn wait(self) -> Result<()> {
        let wait_started = Instant::now();
        self.handle.wait_timeout(self.server.rpc_timeout)?;
        let total_micros = duration_micros(self.submitted_at.elapsed());
        let commit_micros = duration_micros(wait_started.elapsed());
        self.server.stats.latency.record(total_micros);
        self.server.stats.completed.incr();
        self.server
            .stats
            .tracer
            .record_stage(Stage::Commit, commit_micros);
        // The origin's trace carries the stages it observes directly; the
        // scheduler/worker stages are recorded by whichever participant runs
        // them (aggregate histograms only), mirroring the ALOHA engine's
        // FE/BE split.
        let mut stage_micros = [0u64; STAGE_COUNT];
        stage_micros[Stage::Commit.index()] = commit_micros;
        self.server.stats.tracer.record_trace(TxnTrace {
            stage_micros,
            total_micros,
            committed: true,
        });
        Ok(())
    }
}

/// Dispatcher thread: routes transport messages.
pub(crate) fn run_dispatcher(server: Arc<CalvinServer>, endpoint: Endpoint<CalvinMsg>) {
    while let Ok(msg) = endpoint.recv() {
        match msg {
            CalvinMsg::Batch { from, round, txns } => {
                if from != server.id {
                    server.max_peer_round.fetch_max(round, Ordering::Relaxed);
                }
                let _ = server
                    .sched_tx
                    .send(SchedulerEvent::Batch { from, round, txns });
            }
            CalvinMsg::ReadResults { txn, from, values } => {
                server.exchange.deliver(txn, from, values);
            }
            CalvinMsg::TxnDone { txn, from } => {
                server.completions.done(txn, from);
            }
            CalvinMsg::Shutdown => break,
        }
    }
}

/// Sequencer thread: seals a batch every round, asking the pacer for each
/// round's duration first (a [`aloha_control::FixedPacer`] reproduces the
/// paper's constant 20 ms batches; an adaptive pacer steers the duration
/// from live backlog pressure).
pub(crate) fn run_sequencer(server: Arc<CalvinServer>, mut pacer: Box<dyn Pacer>) {
    let mut round = server.start_round();
    while !server.is_shutdown() {
        std::thread::sleep(pacer.next_duration());
        let seal_started = Instant::now();
        // Burst catch-up: peers kept sealing while this server was down, and
        // every scheduler in the cluster stalls until this server's batches
        // for those rounds exist. Sealing one round per tick would leave the
        // whole pipeline a dead-window behind forever; sealing up to the
        // observed peer frontier in one burst closes the gap immediately
        // (the burst rounds are empty — fresh submissions ride the last).
        let frontier = server.max_peer_round();
        while round < frontier && !server.is_shutdown() {
            server.seal_batch(round);
            round += 1;
        }
        server.seal_batch(round);
        // Sealing + broadcasting is the sequencer's switch overhead.
        pacer.observe_switch(seal_started.elapsed());
        round += 1;
    }
}

/// State of one transaction while it owns or awaits locks.
struct ActiveTxn {
    txn: CalvinTxn,
    lock_keys: Vec<(Key, LockMode)>,
    pending_locks: usize,
    lock_requested_at: Instant,
}

/// Scheduler thread: merges batches deterministically and drives the
/// single-threaded lock manager.
pub(crate) fn run_scheduler(server: Arc<CalvinServer>, events: Receiver<SchedulerEvent>) {
    let mut locks = LockManager::new();
    let mut rounds: HashMap<u64, HashMap<ServerId, Vec<CalvinTxn>>> = HashMap::new();
    // A restarted scheduler must not re-merge rounds the replayed store
    // already reflects: re-executing them would double-apply writes and
    // block on read broadcasts no peer will re-send.
    let mut next_round = server.start_round();
    let mut next_local_seq = 0u64;
    let mut active: HashMap<u64, ActiveTxn> = HashMap::new();

    while let Some(event) =
        aloha_net::recv_while(&events, Duration::from_millis(50), || !server.is_shutdown())
    {
        match event {
            SchedulerEvent::Batch { from, round, txns } => {
                // Already-merged rounds re-arrive as fault-layer duplicates
                // and recovery re-broadcasts; dropping them keeps the rounds
                // map from accumulating stale entries.
                if round < next_round {
                    continue;
                }
                rounds.entry(round).or_default().insert(from, txns);
                // Merge every complete round in order.
                while rounds
                    .get(&next_round)
                    .is_some_and(|r| r.len() == server.total as usize)
                {
                    let mut batches = rounds.remove(&next_round).expect("checked above");
                    for origin in 0..server.total {
                        let Some(txns) = batches.remove(&ServerId(origin)) else {
                            continue;
                        };
                        for txn in txns {
                            // Record the merged global order before the
                            // participant filter: every server's history
                            // holds the full deterministic schedule.
                            if let Some(log) = &server.history {
                                log.record(txn.clone());
                            }
                            schedule_txn(
                                &server,
                                &mut locks,
                                &mut active,
                                &mut next_local_seq,
                                txn,
                            );
                        }
                    }
                    next_round += 1;
                }
            }
            SchedulerEvent::Done { local_seq } => {
                let Some(entry) = active.remove(&local_seq) else {
                    continue;
                };
                for (key, _) in &entry.lock_keys {
                    for granted in locks.release(local_seq, key) {
                        if let Some(waiter) = active.get_mut(&granted) {
                            waiter.pending_locks -= 1;
                            if waiter.pending_locks == 0 {
                                dispatch(&server, granted, waiter);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Requests a merged transaction's local locks; dispatches it if all granted.
fn schedule_txn(
    server: &Arc<CalvinServer>,
    locks: &mut LockManager,
    active: &mut HashMap<u64, ActiveTxn>,
    next_local_seq: &mut u64,
    txn: CalvinTxn,
) {
    let plan = match server.registry.get(txn.program) {
        Ok(p) => p.plan(&txn.args),
        Err(_) => return, // unknown program: sequenced by a misconfigured peer
    };
    // Local lock set: keys this partition owns; write mode wins duplicates.
    let mut modes: HashMap<Key, LockMode> = HashMap::new();
    for key in &plan.read_set {
        if server.owner_of(key) == server.id {
            modes.entry(key.clone()).or_insert(LockMode::Read);
        }
    }
    for key in &plan.write_set {
        if server.owner_of(key) == server.id {
            modes.insert(key.clone(), LockMode::Write);
        }
    }
    if modes.is_empty() {
        return; // not a participant
    }
    server.stats.scheduled.incr();
    // Submit → deterministic merge: Calvin's analogue of the timestamp grant
    // (the sequencer round assigns the transaction's serialization slot).
    server.stats.tracer.record_stage(
        Stage::TimestampGrant,
        duration_micros(txn.submitted_at.elapsed()),
    );

    let local_seq = *next_local_seq;
    *next_local_seq += 1;
    let lock_keys: Vec<(Key, LockMode)> = modes.into_iter().collect();
    let mut pending = 0usize;
    for (key, mode) in &lock_keys {
        if !locks.acquire(local_seq, key, *mode) {
            pending += 1;
        }
    }
    let entry = ActiveTxn {
        txn,
        lock_keys,
        pending_locks: pending,
        lock_requested_at: Instant::now(),
    };
    let ready = entry.pending_locks == 0;
    active.insert(local_seq, entry);
    if ready {
        let entry = active.get(&local_seq).expect("just inserted");
        dispatch(server, local_seq, entry);
    }
}

fn dispatch(server: &Arc<CalvinServer>, local_seq: u64, entry: &ActiveTxn) {
    let _ = server.exec_tx.send(ExecTask {
        local_seq,
        txn: entry.txn.clone(),
        lock_requested_at: entry.lock_requested_at,
    });
}

/// Execution worker thread: redundant execution with read broadcast.
///
/// Single-partition transactions run inline. Distributed transactions block
/// on the peers' read broadcasts, and the set of granted-but-blocked
/// transactions is unbounded (it depends on lock-grant interleaving across
/// partitions), so running them on this pool could deadlock it; they go to
/// the executor's blocking lane instead, whose claim-ticket spillover
/// guarantees a blocked submission never waits behind a blocked worker —
/// the bounded version of the dedicated-thread-per-blocking-read approach
/// Calvin implementations use.
pub(crate) fn run_worker(server: Arc<CalvinServer>, tasks: Receiver<ExecTask>) {
    while let Some(task) =
        aloha_net::recv_while(&tasks, Duration::from_millis(50), || !server.is_shutdown())
    {
        if is_distributed(&server, &task) {
            let s = Arc::clone(&server);
            server.exec.submit_blocking(move || execute_txn(&s, task));
        } else {
            execute_txn(&server, task);
        }
    }
}

fn is_distributed(server: &Arc<CalvinServer>, task: &ExecTask) -> bool {
    let Ok(program) = server.registry.get(task.txn.program) else {
        return false;
    };
    let plan = program.plan(&task.txn.args);
    let distributed = plan.all_keys().any(|k| server.owner_of(k) != server.id);
    distributed
}

fn execute_txn(server: &Arc<CalvinServer>, task: ExecTask) {
    let Ok(program) = server.registry.get(task.txn.program) else {
        return;
    };
    // Lock request → all locks granted and dispatched: Calvin's analogue of
    // the functor-install stage (making the writes' slots durable in order).
    server.stats.tracer.record_stage(
        Stage::FunctorInstall,
        duration_micros(task.lock_requested_at.elapsed()),
    );
    let plan = program.plan(&task.txn.args);
    let participants = {
        let mut p: Vec<ServerId> = plan.all_keys().map(|k| server.owner_of(k)).collect();
        p.sort();
        p.dedup();
        p
    };

    // Read the local portion of the read set and broadcast it to the other
    // participants (each of which redundantly executes the procedure).
    let mut local_values: Vec<(Key, Option<Value>)> = Vec::new();
    for key in &plan.read_set {
        if server.owner_of(key) == server.id {
            local_values.push((key.clone(), server.store.get(key)));
        }
    }
    let others: Vec<ServerId> = participants
        .iter()
        .copied()
        .filter(|&p| p != server.id)
        .collect();
    let broadcast_reads = |srv: &CalvinServer| {
        for &peer in &others {
            let _ = srv.net.send(
                Addr::Server(peer),
                CalvinMsg::ReadResults {
                    txn: task.txn.id,
                    from: srv.id,
                    values: local_values.clone(),
                },
            );
        }
    };
    let exchange_started = Instant::now();
    broadcast_reads(server);
    // Under fault injection the broadcast may be dropped on any link, so
    // wait in short slices and re-broadcast between them (the exchange keeps
    // partial deliveries across timeouts and dedups per peer). On a reliable
    // transport a single full-timeout wait is used unchanged.
    let slice = if server.resend_enabled() {
        Duration::from_millis(10).min(server.rpc_timeout)
    } else {
        server.rpc_timeout
    };
    let mut waited = Duration::ZERO;
    let remote_values = loop {
        match server.exchange.wait(task.txn.id, others.len(), slice) {
            Some(v) => break Some(v),
            None => {
                waited += slice;
                if waited >= server.rpc_timeout || server.is_shutdown() {
                    break None;
                }
                broadcast_reads(server);
            }
        }
    };
    let remote_values = match remote_values {
        Some(v) => v,
        None => {
            // Shutdown or a lost peer: release locks and bail out.
            server.exchange.abandon(task.txn.id);
            let _ = server.sched_tx.send(SchedulerEvent::Done {
                local_seq: task.local_seq,
            });
            return;
        }
    };
    let mut reads: HashMap<Key, Option<Value>> = HashMap::new();
    for (k, v) in local_values.iter().cloned().chain(remote_values) {
        reads.insert(k, v);
    }
    // The read-exchange barrier (waiting for every participant's reads) is
    // Calvin's analogue of waiting for the epoch to close.
    server.stats.tracer.record_stage(
        Stage::EpochClose,
        duration_micros(exchange_started.elapsed()),
    );

    // Execute the stored procedure (redundantly, as every participant does)
    // and apply only the local writes.
    let exec_started = Instant::now();
    let mut writes = Vec::new();
    program.execute(&task.txn.args, &reads, &mut writes);
    // Write-back happens while this transaction still holds its write
    // locks, so appending the Put records here (one atomic batch) keeps
    // per-key log order equal to per-key lock order — replay is then a
    // last-write-wins sweep. A closed log (this server being killed) drops
    // the batch whole, never half of it.
    let mut frames = Vec::new();
    for (key, value) in writes {
        if server.owner_of(&key) == server.id {
            if server.log.is_some() {
                let record = CalvinWalRecord::Put {
                    key: key.clone(),
                    value: value.clone(),
                };
                frames.push((record.version(), record.encode()));
            }
            server.store.put(key, value);
        }
    }
    if let Some(log) = &server.log {
        if !frames.is_empty() {
            let _ = log.append_batch(&frames);
        }
    }
    server.stats.tracer.record_stage(
        Stage::FunctorComputing,
        duration_micros(exec_started.elapsed()),
    );

    let _ = server.sched_tx.send(SchedulerEvent::Done {
        local_seq: task.local_seq,
    });
    if task.txn.id.origin == server.id {
        server.completions.done(task.txn.id, server.id);
    } else {
        let _ = server.net.send(
            Addr::Server(task.txn.id.origin),
            CalvinMsg::TxnDone {
                txn: task.txn.id,
                from: server.id,
            },
        );
    }
    if server.resend_enabled() {
        // An asymmetric drop may have cost a *peer* this execution's
        // broadcasts even though we finished; keep the execution around so
        // the sequencer tick re-sends it until it ages out of the ring.
        server.remember_exec(RecentExec {
            txn: task.txn.id,
            others,
            values: local_values,
        });
    }
}
