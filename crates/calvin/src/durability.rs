//! Durable-log parity for the Calvin baseline (§III-A analogue).
//!
//! The ALOHA engine logs installed functors; Calvin's recovery unit is
//! different because its determinism lives in the *sequencing layer*: a
//! server that persists (a) every batch it sealed and (b) every local
//! write-back can rebuild both its partition state and its sequencer
//! position. Two record kinds therefore go through the shared
//! [`aloha_storage::DurableLog`]:
//!
//! * [`CalvinWalRecord::Seal`] — appended when the sequencer seals a round,
//!   before the batch is broadcast, and group-committed once per round (the
//!   batch is Calvin's epoch). A restarted sequencer resumes at the highest
//!   persisted round + 1 and re-broadcasts the recovered ring so peer
//!   schedulers stalled on this server's rounds unblock.
//! * [`CalvinWalRecord::Put`] — appended at worker write-back while the
//!   transaction still holds its write locks, so per-key log order equals
//!   per-key lock order and replay is a last-write-wins sweep.
//!
//! Seal records carry `round + 1` as their log version and checkpoints are
//! installed at the same coordinate, so checkpoint truncation retires
//! exactly the segments whose rounds the snapshot covers. Puts carry
//! version 0: their coverage is decided by the quiescent checkpoint
//! discipline (see [`crate::cluster::CalvinCluster::checkpoint`]), not by a
//! per-record watermark — Calvin's single-version store has no timestamp to
//! key one on.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Error, Key, Result, Value};
use aloha_storage::{DurableLog, RecoveredLog};

use crate::msg::{CalvinTxn, GlobalTxnId};
use crate::program::ProgramId;
use crate::store::CalvinStore;

/// Record tag bytes (first byte of every payload).
const TAG_SEAL: u8 = 1;
const TAG_PUT: u8 = 2;

/// How many recovered sealed rounds a restarted server keeps for
/// re-broadcast; matches the in-memory ring so a restart recovers the same
/// window a fault-injection re-send would.
const RECOVERED_RING: usize = 32;

/// One durable log record of the Calvin engine.
#[derive(Debug, Clone)]
pub enum CalvinWalRecord {
    /// A sealed sequencing round and the transactions it contained.
    Seal {
        /// The round number.
        round: u64,
        /// The batch sealed for that round.
        txns: Vec<CalvinTxn>,
    },
    /// One local write-back, logged under the transaction's write lock.
    Put {
        /// The written key.
        key: Key,
        /// The written value.
        value: Value,
    },
}

impl CalvinWalRecord {
    /// The log version coordinate this record is appended under.
    pub fn version(&self) -> u64 {
        match self {
            // +1 keeps round 0 distinguishable from the version-0 puts.
            CalvinWalRecord::Seal { round, .. } => round + 1,
            CalvinWalRecord::Put { .. } => 0,
        }
    }

    /// Encodes the record payload (version travels in the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            CalvinWalRecord::Seal { round, txns } => {
                w.put_u8(TAG_SEAL)
                    .put_u64(*round)
                    .put_u32(txns.len() as u32);
                for txn in txns {
                    w.put_u16(txn.id.origin.0)
                        .put_u64(txn.id.seq)
                        .put_u32(txn.program.0)
                        .put_bytes(&txn.args);
                }
            }
            CalvinWalRecord::Put { key, value } => {
                w.put_u8(TAG_PUT)
                    .put_bytes(key.as_bytes())
                    .put_bytes(value.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes one record payload.
    ///
    /// Replayed transactions get a fresh `submitted_at` — the original
    /// instant died with the process, and only latency accounting reads it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] for truncated or unknown payloads.
    pub fn decode(payload: &[u8]) -> Result<CalvinWalRecord> {
        let mut r = Reader::new(payload);
        match r.get_u8()? {
            TAG_SEAL => {
                let round = r.get_u64()?;
                let count = r.get_u32()? as usize;
                let mut txns = Vec::with_capacity(count);
                for _ in 0..count {
                    let origin = aloha_common::ServerId(r.get_u16()?);
                    let seq = r.get_u64()?;
                    let program = ProgramId(r.get_u32()?);
                    let args = r.get_bytes()?.to_vec();
                    txns.push(CalvinTxn {
                        id: GlobalTxnId { origin, seq },
                        program,
                        args,
                        submitted_at: Instant::now(),
                    });
                }
                Ok(CalvinWalRecord::Seal { round, txns })
            }
            TAG_PUT => {
                let key = Key::new(r.get_bytes()?.to_vec());
                let value = Value::new(r.get_bytes()?.to_vec());
                Ok(CalvinWalRecord::Put { key, value })
            }
            tag => Err(Error::Codec(format!("unknown calvin wal record tag {tag}"))),
        }
    }
}

/// Encodes a Calvin checkpoint blob: the resume round (every round *below*
/// it is covered — i.e. last sealed round + 1), the next local submission
/// sequence number, and the full store dump. The round and sequence ride
/// inside the blob so a restarted server can resume both coordinates even
/// when truncation removed every Seal record — reusing a sequence number
/// would collide with [`crate::msg::GlobalTxnId`]s the peers have already
/// retired, and they would silently drop the new transaction's exchange
/// and completion messages.
pub fn encode_checkpoint(round: u64, next_seq: u64, store: &CalvinStore) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(round).put_u64(next_seq);
    let entries = store.dump();
    w.put_u32(entries.len() as u32);
    for (key, value) in &entries {
        w.put_bytes(key.as_bytes()).put_bytes(value.as_bytes());
    }
    w.into_bytes()
}

/// A decoded checkpoint blob: `(resume_round, next_seq, store entries)`.
pub type CheckpointContents = (u64, u64, Vec<(Key, Value)>);

/// Decodes a checkpoint blob into [`CheckpointContents`].
///
/// # Errors
///
/// Returns [`Error::Codec`] for truncated blobs.
pub fn decode_checkpoint(blob: &[u8]) -> Result<CheckpointContents> {
    let mut r = Reader::new(blob);
    let round = r.get_u64()?;
    let next_seq = r.get_u64()?;
    let count = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = Key::new(r.get_bytes()?.to_vec());
        let value = Value::new(r.get_bytes()?.to_vec());
        entries.push((key, value));
    }
    Ok((round, next_seq, entries))
}

/// One recovered sealed round: `(round, batch)`, ring material for
/// post-restart re-broadcast.
pub(crate) type SealedRound = (u64, Vec<CalvinTxn>);

/// Everything a Calvin server needs from its recovered log, produced by
/// [`replay`] and consumed at server construction.
pub(crate) struct CalvinWal {
    /// The reopened log (fresh live segment; recovered bytes untouched).
    pub log: Arc<DurableLog>,
    /// First round the restarted sequencer seals (highest persisted + 1).
    pub start_round: u64,
    /// First local submission sequence number this incarnation assigns
    /// (past every persisted own-origin sequence, so no
    /// [`crate::msg::GlobalTxnId`] is ever reused).
    pub start_seq: u64,
    /// Recovered sealed rounds, oldest first, seeded into the re-broadcast
    /// ring so stalled peer schedulers unblock after the restart.
    pub ring: Vec<SealedRound>,
    /// The partition store rebuilt from checkpoint + Put replay.
    pub store: CalvinStore,
}

/// What a Calvin recovery pass did, surfaced by
/// [`crate::cluster::CalvinCluster::restart_server`].
#[derive(Debug, Clone)]
pub struct CalvinRecoveryReport {
    /// First round *not* covered by the restored checkpoint (0 when none
    /// existed).
    pub checkpoint_round: u64,
    /// Round the restarted sequencer resumes at.
    pub resume_round: u64,
    /// Local submission sequence the restarted server resumes at (no
    /// pre-crash `GlobalTxnId` is reused — peers have retired those ids and
    /// would drop the new transaction's messages).
    pub resume_seq: u64,
    /// Put records replayed onto the restored store.
    pub replayed_puts: usize,
    /// Whether recovery stopped at a torn final segment (the expected crash
    /// artifact; the valid prefix was applied).
    pub torn_tail: bool,
}

/// Rebuilds a partition store and sequencer state from a recovered log.
///
/// Applies the checkpoint dump first, then every surviving Put in log order
/// (per-key log order equals lock order, so a last-write-wins sweep lands on
/// the pre-crash state), and collects the Seal trail for the resume round
/// and the re-broadcast ring.
///
/// # Errors
///
/// Refuses [`aloha_storage::LogDamage::Corrupt`] logs with [`Error::Io`]
/// (a torn tail on the final segment is tolerated), and propagates codec
/// errors from checkpoint or record payloads.
pub(crate) fn replay(
    id: aloha_common::ServerId,
    store: &CalvinStore,
    recovered: &RecoveredLog,
) -> Result<(CalvinRecoveryReport, Vec<SealedRound>)> {
    if let Some(damage @ aloha_storage::LogDamage::Corrupt { .. }) = &recovered.damage {
        return Err(Error::Io(format!("wal recovery refused: {damage}")));
    }
    let mut checkpoint_round = 0;
    let mut next_seq = 0;
    if let Some((_, blob)) = &recovered.checkpoint {
        let (round, seq, entries) = decode_checkpoint(blob)?;
        checkpoint_round = round;
        next_seq = seq;
        for (key, value) in entries {
            store.put(key, value);
        }
    }
    let mut replayed_puts = 0;
    let mut max_round = checkpoint_round;
    let mut ring: VecDeque<SealedRound> = VecDeque::new();
    for (_, payload) in &recovered.records {
        match CalvinWalRecord::decode(payload)? {
            CalvinWalRecord::Put { key, value } => {
                store.put(key, value);
                replayed_puts += 1;
            }
            CalvinWalRecord::Seal { round, txns } => {
                max_round = max_round.max(round + 1);
                // Under the quiescent crash model every assigned sequence
                // number was sealed, so the Seal trail bounds them all.
                for txn in &txns {
                    if txn.id.origin == id {
                        next_seq = next_seq.max(txn.id.seq + 1);
                    }
                }
                ring.push_back((round, txns));
                if ring.len() > RECOVERED_RING {
                    ring.pop_front();
                }
            }
        }
    }
    let report = CalvinRecoveryReport {
        checkpoint_round,
        resume_round: max_round,
        resume_seq: next_seq,
        replayed_puts,
        torn_tail: recovered.damage.is_some(),
    };
    Ok((report, ring.into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(origin: u16, seq: u64, args: &[u8]) -> CalvinTxn {
        CalvinTxn {
            id: GlobalTxnId {
                origin: aloha_common::ServerId(origin),
                seq,
            },
            program: ProgramId(7),
            args: args.to_vec(),
            submitted_at: Instant::now(),
        }
    }

    #[test]
    fn seal_record_round_trips() {
        let rec = CalvinWalRecord::Seal {
            round: 42,
            txns: vec![txn(1, 9, b"abc"), txn(0, 3, b"")],
        };
        let decoded = CalvinWalRecord::decode(&rec.encode()).unwrap();
        match decoded {
            CalvinWalRecord::Seal { round, txns } => {
                assert_eq!(round, 42);
                assert_eq!(txns.len(), 2);
                assert_eq!(txns[0].id.seq, 9);
                assert_eq!(txns[0].args, b"abc");
                assert_eq!(txns[1].id.origin.0, 0);
            }
            other => panic!("expected seal, got {other:?}"),
        }
        assert_eq!(rec.version(), 43);
    }

    #[test]
    fn put_record_round_trips() {
        let rec = CalvinWalRecord::Put {
            key: Key::from("k"),
            value: Value::from_i64(5),
        };
        assert_eq!(rec.version(), 0);
        match CalvinWalRecord::decode(&rec.encode()).unwrap() {
            CalvinWalRecord::Put { key, value } => {
                assert_eq!(key, Key::from("k"));
                assert_eq!(value.as_i64(), Some(5));
            }
            other => panic!("expected put, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_is_a_codec_error_not_a_panic() {
        assert!(CalvinWalRecord::decode(&[0xEE]).is_err());
        assert!(CalvinWalRecord::decode(&[]).is_err());
    }

    #[test]
    fn checkpoint_blob_round_trips() {
        let store = CalvinStore::new();
        store.put(Key::from("a"), Value::from_i64(1));
        store.put(Key::from("b"), Value::from_i64(2));
        let blob = encode_checkpoint(17, 23, &store);
        let (round, next_seq, entries) = decode_checkpoint(&blob).unwrap();
        assert_eq!(round, 17);
        assert_eq!(next_seq, 23);
        assert_eq!(entries.len(), 2);
        // Dump is sorted, so the blob (and any byte-compare of it) is
        // deterministic.
        assert_eq!(entries[0].0, Key::from("a"));
        assert_eq!(blob, encode_checkpoint(17, 23, &store));
    }
}
