//! Rendezvous state for redundant execution: read-value exchange between
//! participants, and completion tracking at the origin server.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use aloha_common::{Key, ServerId, Value};
use aloha_net::ReplySlot;
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use crate::msg::GlobalTxnId;

/// How many finished transactions each tracker remembers, so that late
/// duplicate deliveries (fault-layer retransmissions and re-broadcasts) do
/// not resurrect state for transactions that already completed. Bounded so
/// long runs do not grow without limit; a duplicate older than the window is
/// harmless anyway — it creates a stale entry that times out.
const RETIRED_WINDOW: usize = 1024;

/// Bounded memory of recently finished transaction ids.
#[derive(Debug, Default)]
struct RetiredSet {
    order: VecDeque<GlobalTxnId>,
    members: HashSet<GlobalTxnId>,
}

impl RetiredSet {
    fn insert(&mut self, txn: GlobalTxnId) {
        if self.members.insert(txn) {
            self.order.push_back(txn);
            if self.order.len() > RETIRED_WINDOW {
                if let Some(old) = self.order.pop_front() {
                    self.members.remove(&old);
                }
            }
        }
    }

    fn contains(&self, txn: &GlobalTxnId) -> bool {
        self.members.contains(txn)
    }
}

/// Collects the read-set values broadcast by the other participants of a
/// transaction; executor threads block until all expected peers reported.
///
/// Each waiter registers a private one-shot wakeup channel, so a delivery
/// wakes exactly the thread that needs it — with hundreds of concurrent
/// distributed transactions a shared condvar would cause a thundering herd.
#[derive(Debug, Default)]
pub struct ReadExchange {
    state: Mutex<ExchangeState>,
}

#[derive(Debug, Default)]
struct ExchangeState {
    entries: HashMap<GlobalTxnId, ExchangeEntry>,
    retired: RetiredSet,
    poisoned: bool,
}

#[derive(Debug, Default)]
struct ExchangeEntry {
    received_from: Vec<ServerId>,
    values: Vec<(Key, Option<Value>)>,
    expected: Option<usize>,
    wake: Option<Sender<()>>,
}

impl ExchangeEntry {
    fn is_complete(&self) -> bool {
        self.expected.is_some_and(|e| self.received_from.len() >= e)
    }
}

impl ReadExchange {
    /// Creates an empty exchange.
    pub fn new() -> ReadExchange {
        ReadExchange::default()
    }

    /// Records a peer's broadcast (idempotent per peer; late broadcasts for
    /// already-finished transactions are dropped).
    pub fn deliver(&self, txn: GlobalTxnId, from: ServerId, values: Vec<(Key, Option<Value>)>) {
        let mut state = self.state.lock();
        if state.retired.contains(&txn) {
            return;
        }
        let entry = state.entries.entry(txn).or_default();
        if !entry.received_from.contains(&from) {
            entry.received_from.push(from);
            entry.values.extend(values);
        }
        if entry.is_complete() {
            if let Some(wake) = entry.wake.take() {
                let _ = wake.send(());
            }
        }
    }

    /// Blocks until broadcasts from `expected` peers arrived, then removes
    /// and returns all collected values. Returns `None` on timeout or
    /// shutdown; partial state survives a timeout, so the caller can
    /// re-broadcast its own values and wait again ([`ReadExchange::abandon`]
    /// cleans up when it gives up for good).
    pub fn wait(
        &self,
        txn: GlobalTxnId,
        expected: usize,
        timeout: Duration,
    ) -> Option<Vec<(Key, Option<Value>)>> {
        let rx = {
            let mut state = self.state.lock();
            if state.poisoned {
                state.entries.remove(&txn);
                return None;
            }
            let entry = state.entries.entry(txn).or_default();
            entry.expected = Some(expected);
            if entry.is_complete() || expected == 0 {
                let entry = state.entries.remove(&txn).unwrap_or_default();
                state.retired.insert(txn);
                return Some(entry.values);
            }
            let (tx, rx) = bounded(1);
            entry.wake = Some(tx);
            rx
        };
        let woken = rx.recv_timeout(timeout).is_ok();
        let mut state = self.state.lock();
        if woken && !state.poisoned {
            state.retired.insert(txn);
            state.entries.remove(&txn).map(|e| e.values)
        } else {
            // Keep whatever arrived; just drop the stale wakeup channel.
            if let Some(entry) = state.entries.get_mut(&txn) {
                entry.wake = None;
            }
            None
        }
    }

    /// Drops a transaction's partial exchange state after the caller gave up
    /// waiting, and retires the id so late broadcasts are ignored.
    pub fn abandon(&self, txn: GlobalTxnId) {
        let mut state = self.state.lock();
        state.entries.remove(&txn);
        state.retired.insert(txn);
    }

    /// Number of transactions with outstanding exchange state.
    pub fn outstanding(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Wakes every waiter with a `None` result; used at shutdown so worker
    /// threads do not block joins on the full RPC timeout.
    pub fn poison(&self) {
        let mut state = self.state.lock();
        state.poisoned = true;
        for entry in state.entries.values_mut() {
            // Dropping the sender makes the waiter's recv fail immediately.
            entry.wake.take();
        }
    }
}

/// Tracks client completions at the origin server: a transaction's reply is
/// fulfilled when every participant reported `TxnDone`.
#[derive(Debug, Default)]
pub struct PendingCompletions {
    state: Mutex<CompletionState>,
}

#[derive(Debug, Default)]
struct CompletionState {
    pending: HashMap<GlobalTxnId, Pending>,
    retired: RetiredSet,
}

#[derive(Debug, Default)]
struct Pending {
    /// Expected participant count, known once `register` ran.
    expected: Option<usize>,
    /// Participants that reported `TxnDone` (may race ahead of `register`).
    /// Deduplicated per server: the fault layer can duplicate reports, and
    /// re-broadcast recovery resends them deliberately.
    done_from: Vec<ServerId>,
    reply: Option<ReplySlot<()>>,
}

impl Pending {
    fn is_complete(&self) -> bool {
        self.expected.is_some_and(|e| self.done_from.len() >= e) && self.reply.is_some()
    }
}

impl PendingCompletions {
    /// Creates an empty tracker.
    pub fn new() -> PendingCompletions {
        PendingCompletions::default()
    }

    fn resolve_if_complete(state: &mut CompletionState, txn: GlobalTxnId) {
        if state.pending.get(&txn).is_some_and(Pending::is_complete) {
            if let Some(reply) = state.pending.remove(&txn).and_then(|p| p.reply) {
                reply.send(());
                state.retired.insert(txn);
            }
        }
    }

    /// Registers a submitted transaction with its participant count.
    pub fn register(&self, txn: GlobalTxnId, participants: usize, reply: ReplySlot<()>) {
        let mut state = self.state.lock();
        let entry = state.pending.entry(txn).or_default();
        entry.expected = Some(participants);
        entry.reply = Some(reply);
        Self::resolve_if_complete(&mut state, txn);
    }

    /// Records one participant's completion report (idempotent per
    /// participant); fulfills the reply when all participants reported.
    pub fn done(&self, txn: GlobalTxnId, from: ServerId) {
        let mut state = self.state.lock();
        if state.retired.contains(&txn) {
            return;
        }
        let entry = state.pending.entry(txn).or_default();
        if !entry.done_from.contains(&from) {
            entry.done_from.push(from);
        }
        Self::resolve_if_complete(&mut state, txn);
    }

    /// Outstanding transactions (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Drops every pending reply (waiters observe a disconnect); used at
    /// shutdown.
    pub fn fail_all(&self) {
        self.state.lock().pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_net::reply_pair;

    fn txn(seq: u64) -> GlobalTxnId {
        GlobalTxnId {
            origin: ServerId(0),
            seq,
        }
    }

    #[test]
    fn exchange_collects_from_all_peers() {
        let ex = ReadExchange::new();
        ex.deliver(
            txn(1),
            ServerId(1),
            vec![(Key::from("a"), Some(Value::from_i64(1)))],
        );
        ex.deliver(txn(1), ServerId(2), vec![(Key::from("b"), None)]);
        let values = ex.wait(txn(1), 2, Duration::from_millis(100)).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(ex.outstanding(), 0);
    }

    #[test]
    fn exchange_wait_blocks_until_delivery() {
        use std::sync::Arc;
        let ex = Arc::new(ReadExchange::new());
        let ex2 = Arc::clone(&ex);
        let waiter = std::thread::spawn(move || ex2.wait(txn(5), 1, Duration::from_secs(1)));
        std::thread::sleep(Duration::from_millis(5));
        ex.deliver(txn(5), ServerId(3), vec![]);
        assert!(waiter.join().unwrap().is_some());
    }

    #[test]
    fn exchange_timeout_preserves_partial_state() {
        let ex = ReadExchange::new();
        ex.deliver(txn(9), ServerId(1), vec![(Key::from("a"), None)]);
        assert!(ex.wait(txn(9), 2, Duration::from_millis(10)).is_none());
        // The early delivery survives the timeout; one more peer completes it.
        assert_eq!(ex.outstanding(), 1);
        ex.deliver(txn(9), ServerId(2), vec![(Key::from("b"), None)]);
        let values = ex.wait(txn(9), 2, Duration::from_millis(10)).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(ex.outstanding(), 0);
    }

    #[test]
    fn exchange_abandon_cleans_up_and_retires() {
        let ex = ReadExchange::new();
        ex.deliver(txn(9), ServerId(1), vec![(Key::from("a"), None)]);
        assert!(ex.wait(txn(9), 2, Duration::from_millis(5)).is_none());
        ex.abandon(txn(9));
        assert_eq!(ex.outstanding(), 0);
        // Late re-broadcasts for the abandoned transaction leave no state.
        ex.deliver(txn(9), ServerId(2), vec![(Key::from("b"), None)]);
        assert_eq!(ex.outstanding(), 0);
    }

    #[test]
    fn exchange_ignores_duplicate_peer_broadcasts() {
        let ex = ReadExchange::new();
        ex.deliver(txn(1), ServerId(1), vec![(Key::from("a"), None)]);
        ex.deliver(txn(1), ServerId(1), vec![(Key::from("a"), None)]);
        let values = ex.wait(txn(1), 1, Duration::from_millis(50)).unwrap();
        assert_eq!(
            values.len(),
            1,
            "duplicate broadcast must not double values"
        );
    }

    #[test]
    fn exchange_drops_late_broadcasts_after_completion() {
        let ex = ReadExchange::new();
        ex.deliver(txn(4), ServerId(1), vec![(Key::from("a"), None)]);
        assert!(ex.wait(txn(4), 1, Duration::from_millis(50)).is_some());
        // A fault-layer duplicate arriving after completion must not leak.
        ex.deliver(txn(4), ServerId(1), vec![(Key::from("a"), None)]);
        assert_eq!(ex.outstanding(), 0);
    }

    #[test]
    fn zero_expected_peers_returns_immediately() {
        let ex = ReadExchange::new();
        assert_eq!(
            ex.wait(txn(2), 0, Duration::from_millis(1)).unwrap().len(),
            0
        );
    }

    #[test]
    fn completions_fulfil_after_all_participants() {
        let pc = PendingCompletions::new();
        let (slot, handle) = reply_pair();
        pc.register(txn(1), 2, slot);
        pc.done(txn(1), ServerId(0));
        assert!(handle.try_wait().is_none(), "one participant outstanding");
        pc.done(txn(1), ServerId(1));
        // Reply slot consumed inside; handle resolves.
        assert!(handle.wait().is_ok());
        assert_eq!(pc.outstanding(), 0);
    }

    #[test]
    fn completions_tolerate_done_before_register() {
        let pc = PendingCompletions::new();
        pc.done(txn(7), ServerId(0));
        pc.done(txn(7), ServerId(1));
        let (slot, handle) = reply_pair();
        pc.register(txn(7), 2, slot);
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn completions_dedup_duplicate_reports() {
        let pc = PendingCompletions::new();
        let (slot, handle) = reply_pair();
        pc.register(txn(3), 2, slot);
        pc.done(txn(3), ServerId(1));
        pc.done(txn(3), ServerId(1));
        pc.done(txn(3), ServerId(1));
        assert!(
            handle.try_wait().is_none(),
            "duplicates must not count twice"
        );
        pc.done(txn(3), ServerId(2));
        assert!(handle.wait().is_ok());
        // A straggler duplicate after resolution must not recreate state.
        pc.done(txn(3), ServerId(2));
        assert_eq!(pc.outstanding(), 0);
    }
}
