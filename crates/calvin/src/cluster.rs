//! Calvin cluster assembly and client handles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aloha_common::metrics::{HistogramSnapshot, Stage, STAGE_COUNT};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{Error, Key, PartitionId, Result, ServerId, Value};
use aloha_control::{
    AccessKind, AdaptivePacer, AdmissionGate, ControlConfig, FixedPacer, Pacer, PacerGauges,
    PacerSample, Permit,
};
use aloha_net::{Addr, Bus, ExecConfig, Executor, NetConfig};

use crate::msg::CalvinMsg;
use crate::program::{CalvinProgram, CalvinRegistry, ProgramId};
use crate::server::{
    run_dispatcher, run_scheduler, run_sequencer, run_worker, CalvinHistory, CalvinServer,
    CalvinSubmission,
};

/// Calvin cluster configuration.
#[derive(Debug, Clone)]
pub struct CalvinConfig {
    /// Number of servers (one partition each).
    pub servers: u16,
    /// Sequencer batching epoch (paper: 20 ms, §V-A2).
    pub batch_duration: Duration,
    /// Simulated network behavior.
    pub net: NetConfig,
    /// Execution worker threads per server.
    pub workers_per_server: usize,
    /// Record the merged deterministic order on every scheduler for the
    /// serializability checker (test builds only).
    pub record_history: bool,
    /// Pool sizes for each server's bounded executor (distributed
    /// transactions run on its blocking lane); aligned with the ALOHA
    /// engine's `ClusterConfig::exec` knob.
    pub exec: ExecConfig,
    /// Closed-loop control plane: adaptive sequencer-batch pacing and/or
    /// admission gating at the client edge, mirroring the ALOHA engine's
    /// `ClusterConfig::control` knob. `None` (the default) runs fixed
    /// batches at [`CalvinConfig::batch_duration`] ungated. When set, the
    /// pacer's `initial` duration overrides `batch_duration`.
    pub control: Option<ControlConfig>,
}

impl CalvinConfig {
    /// Defaults: 20 ms batches, instant network, two workers per server.
    pub fn new(servers: u16) -> CalvinConfig {
        CalvinConfig {
            servers,
            batch_duration: Duration::from_millis(20),
            net: NetConfig::instant(),
            workers_per_server: 2,
            record_history: false,
            exec: ExecConfig::default(),
            control: None,
        }
    }

    /// Overrides the sequencer batch duration.
    pub fn with_batch_duration(mut self, duration: Duration) -> CalvinConfig {
        self.batch_duration = duration;
        self
    }

    /// Overrides the network behavior.
    pub fn with_net(mut self, net: NetConfig) -> CalvinConfig {
        self.net = net;
        self
    }

    /// Overrides the worker pool size.
    pub fn with_workers(mut self, workers: usize) -> CalvinConfig {
        self.workers_per_server = workers;
        self
    }

    /// Enables schedule-history recording for the serializability checker.
    pub fn with_history(mut self) -> CalvinConfig {
        self.record_history = true;
        self
    }

    /// Overrides the per-server executor pool sizes.
    pub fn with_exec(mut self, exec: ExecConfig) -> CalvinConfig {
        self.exec = exec;
        self
    }

    /// Enables the closed-loop control plane (adaptive batch pacing and/or
    /// admission gating).
    pub fn with_control(mut self, control: ControlConfig) -> CalvinConfig {
        self.control = Some(control);
        self
    }
}

/// Builds a [`CalvinCluster`]: registers programs, then starts.
pub struct CalvinClusterBuilder {
    config: CalvinConfig,
    registry: CalvinRegistry,
}

impl std::fmt::Debug for CalvinClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinClusterBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl CalvinClusterBuilder {
    /// Registers a stored procedure on every server.
    pub fn register_program(
        &mut self,
        id: ProgramId,
        program: impl CalvinProgram + 'static,
    ) -> &mut Self {
        self.registry.register(id, program);
        self
    }

    /// Starts the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for invalid configurations.
    pub fn start(self) -> Result<CalvinCluster> {
        let n = self.config.servers;
        if n == 0 {
            return Err(Error::Config(
                "calvin cluster needs at least one server".into(),
            ));
        }
        if self.config.workers_per_server == 0 {
            return Err(Error::Config("need at least one worker per server".into()));
        }
        if let Some(control) = &self.config.control {
            control.validate()?;
        }
        // With a control plane configured, the pacer's initial duration is
        // authoritative (`ControlConfig::fixed(d)` ≡ `with_batch_duration(d)`).
        let batch_duration = self
            .config
            .control
            .as_ref()
            .map(|c| c.pacing.initial)
            .unwrap_or(self.config.batch_duration);
        let bus: Bus<CalvinMsg> = Bus::new(self.config.net.clone());
        let registry = Arc::new(self.registry);
        let mut servers = Vec::with_capacity(n as usize);
        let mut threads = Vec::new();
        let mut pacer_gauges = Vec::new();
        for i in 0..n {
            let endpoint = bus.register(Addr::Server(ServerId(i)));
            let history = self
                .config
                .record_history
                .then(|| Arc::new(CalvinHistory::new()));
            let exec = Executor::new(format!("calvin-exec-{i}"), self.config.exec.clone());
            let (server, sched_rx, exec_rx) = CalvinServer::new(
                ServerId(i),
                n,
                Arc::clone(&registry),
                bus.clone(),
                exec,
                history,
            );
            let s = Arc::clone(&server);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("calvin-dispatch-{i}"))
                    .spawn(move || run_dispatcher(s, endpoint))
                    .expect("spawn dispatcher"),
            );
            let s = Arc::clone(&server);
            // Each sequencer owns its pacer: rounds are per-server, so each
            // controller steers its own batch duration from local pressure.
            let pacer: Box<dyn Pacer> = match &self.config.control {
                Some(control) => {
                    let gauges = Arc::new(PacerGauges::default());
                    let sampled = Arc::clone(&server);
                    let source = move || PacerSample {
                        exec_queue: sampled.exec().queued_now(),
                        backlog: sampled.backlog_len(),
                        batch_occupancy: 0,
                    };
                    pacer_gauges.push(Arc::clone(&gauges));
                    Box::new(AdaptivePacer::new(control.pacing.clone(), source, gauges)?)
                }
                None => Box::new(FixedPacer(batch_duration)),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("calvin-seq-{i}"))
                    .spawn(move || run_sequencer(s, pacer))
                    .expect("spawn sequencer"),
            );
            let s = Arc::clone(&server);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("calvin-sched-{i}"))
                    .spawn(move || run_scheduler(s, sched_rx))
                    .expect("spawn scheduler"),
            );
            for w in 0..self.config.workers_per_server {
                let s = Arc::clone(&server);
                let rx = exec_rx.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("calvin-worker-{i}-{w}"))
                        .spawn(move || run_worker(s, rx))
                        .expect("spawn worker"),
                );
            }
            servers.push(server);
        }
        let gates = self
            .config
            .control
            .as_ref()
            .and_then(|c| c.gate.as_ref())
            .map(|gate_cfg| {
                let gates = (0..n)
                    .map(|_| AdmissionGate::new(gate_cfg.clone()).map(Arc::new))
                    .collect::<Result<Vec<_>>>()?;
                Ok::<_, Error>(Arc::new(gates))
            })
            .transpose()?;
        Ok(CalvinCluster {
            servers,
            bus,
            threads,
            total: n,
            gates,
            pacer_gauges,
        })
    }
}

/// A running Calvin cluster.
pub struct CalvinCluster {
    servers: Vec<Arc<CalvinServer>>,
    bus: Bus<CalvinMsg>,
    threads: Vec<std::thread::JoinHandle<()>>,
    total: u16,
    /// Per-sequencer admission gates (index-aligned with `servers`); `None`
    /// when the control plane is off or gating is disabled.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
    /// Live pacer state, one per sequencer (empty without a control plane).
    pacer_gauges: Vec<Arc<PacerGauges>>,
}

impl std::fmt::Debug for CalvinCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinCluster")
            .field("servers", &self.total)
            .finish()
    }
}

impl CalvinCluster {
    /// Starts building a cluster.
    pub fn builder(config: CalvinConfig) -> CalvinClusterBuilder {
        CalvinClusterBuilder {
            config,
            registry: CalvinRegistry::new(),
        }
    }

    /// The servers, indexed by id.
    pub fn servers(&self) -> &[Arc<CalvinServer>] {
        &self.servers
    }

    /// Number of servers.
    pub fn size(&self) -> u16 {
        self.total
    }

    /// The most complete per-server record of the merged global order, or
    /// `None` when history recording is off. Under fault injection a
    /// scheduler that ends mid-disruption may hold a prefix, so the longest
    /// log is the authoritative schedule.
    pub fn history(&self) -> Option<Vec<crate::msg::CalvinTxn>> {
        self.servers
            .iter()
            .filter_map(|s| s.history().map(|h| h.snapshot()))
            .max_by_key(Vec::len)
    }

    /// The active fault plan, if the network configuration injects faults.
    pub fn fault_plan(&self) -> Option<&aloha_net::FaultPlan> {
        self.bus.fault_plan()
    }

    /// Bus traffic counters, including injected fault counts.
    pub fn net_stats(&self) -> &aloha_net::NetStats {
        self.bus.stats()
    }

    /// A client handle.
    pub fn database(&self) -> CalvinDatabase {
        CalvinDatabase {
            servers: Arc::new(self.servers.clone()),
            next: Arc::new(AtomicUsize::new(0)),
            gates: self.gates.clone(),
        }
    }

    /// Loads an initial row into the owning partition (before opening the
    /// database for transactions).
    pub fn load(&self, key: Key, value: Value) {
        let owner = key.partition(self.total);
        self.servers[owner.index()].store().put(key, value);
    }

    /// Reads the current value of `key` directly from the owning store.
    /// Intended for quiescent verification, not as a transaction.
    pub fn read(&self, key: &Key) -> Option<Value> {
        let owner = key.partition(self.total);
        self.servers[owner.index()].store().get(key)
    }

    /// A composable statistics snapshot for the whole cluster: summed
    /// counters and cluster-wide stage percentiles at the root (merged from
    /// every server's raw histogram buckets — never averaged percentiles),
    /// with per-server and network subtrees as children. Uses the same
    /// six-stage schema as the ALOHA engine (§III analogues documented on
    /// [`crate::server::CalvinStats`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut root = StatsSnapshot::new("calvin");
        let mut completed = 0u64;
        let mut scheduled = 0u64;
        let mut merged: [HistogramSnapshot; STAGE_COUNT + 1] = Default::default();
        for server in &self.servers {
            let stats = server.stats();
            completed += stats.completed();
            scheduled += stats.scheduled();
            for (acc, snap) in merged.iter_mut().zip(stats.raw_histograms()) {
                acc.merge(&snap);
            }
            let mut node = stats.snapshot(format!("server_{}", server.id().0));
            node.push_child(server.exec().stats().snapshot("exec"));
            root.push_child(node);
        }
        root.set_counter("completed", completed);
        root.set_counter("scheduled", scheduled);
        for stage in Stage::ALL {
            root.set_stage(stage.name(), StageStats::from(&merged[stage.index()]));
        }
        root.set_stage("e2e", StageStats::from(&merged[STAGE_COUNT]));
        root.push_child(self.bus.stats().snapshot());
        if let Some(control) = self.control_snapshot() {
            root.push_child(control);
        }
        root
    }

    /// The `control` node of the stats tree: per-sequencer pacer gauges and
    /// summed gate activity. `None` when no control plane is configured.
    fn control_snapshot(&self) -> Option<StatsSnapshot> {
        if self.pacer_gauges.is_empty() && self.gates.is_none() {
            return None;
        }
        let mut node = StatsSnapshot::new("control");
        // Sequencers pace independently; export the widest batch any of them
        // currently runs plus the highest pressure, with per-server children.
        if !self.pacer_gauges.is_empty() {
            let widest = self
                .pacer_gauges
                .iter()
                .map(|g| g.epoch_duration_micros.get())
                .max()
                .unwrap_or(0);
            let pressure = self
                .pacer_gauges
                .iter()
                .map(|g| g.pressure_millis.get())
                .max()
                .unwrap_or(0);
            node.set_gauge("epoch_duration_micros", widest);
            node.set_gauge("pressure_millis", pressure);
            for (i, gauges) in self.pacer_gauges.iter().enumerate() {
                let mut child = StatsSnapshot::new(format!("pacer_s{i}"));
                child.set_gauge("epoch_duration_micros", gauges.epoch_duration_micros.get());
                child.set_gauge("pressure_millis", gauges.pressure_millis.get());
                node.push_child(child);
            }
        }
        if let Some(gates) = &self.gates {
            let (mut admitted, mut shed, mut queued, mut in_use) = (0, 0, 0, 0);
            for (i, gate) in gates.iter().enumerate() {
                let stats = gate.stats();
                admitted += stats.admitted.get();
                shed += stats.shed.get();
                queued += stats.queued.get();
                in_use += stats.tokens_in_use.get();
                node.push_child(gate.snapshot(format!("gate_s{i}")));
            }
            node.set_counter("admitted", admitted);
            node.set_counter("shed", shed);
            node.set_counter("queued", queued);
            node.set_gauge("tokens_in_use", in_use);
        }
        Some(node)
    }

    /// The per-sequencer admission gates, when the control plane enables
    /// gating.
    pub fn gates(&self) -> Option<&[Arc<AdmissionGate>]> {
        self.gates.as_deref().map(Vec::as_slice)
    }

    /// Resets every server's statistics.
    pub fn reset_stats(&self) {
        for server in &self.servers {
            server.stats().reset();
            server.exec().stats().reset();
        }
        if let Some(gates) = &self.gates {
            for gate in gates.iter() {
                gate.reset_stats();
            }
        }
    }

    /// Stops all servers and joins their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for server in &self.servers {
            server.mark_shutdown();
            let _ = self
                .bus
                .send_reliable(Addr::Server(server.id()), CalvinMsg::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Workers are gone, so nothing submits anymore; drain and join the
        // executors (deferred until here so one server's draining tasks can
        // still get read broadcasts handled by its peers).
        for server in &self.servers {
            server.exec().shutdown();
        }
    }
}

impl Drop for CalvinCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Client handle: submits transactions round-robin across sequencers.
#[derive(Clone)]
pub struct CalvinDatabase {
    servers: Arc<Vec<Arc<CalvinServer>>>,
    next: Arc<AtomicUsize>,
    /// Per-sequencer admission gates (`None` on an ungated cluster).
    /// Admission happens before the submission enters the sequencer batch:
    /// a shed transaction is never sequenced anywhere.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
}

impl std::fmt::Debug for CalvinDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinDatabase")
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl CalvinDatabase {
    /// Acquires sequencer `i`'s admission token (no-op on an ungated
    /// cluster).
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the gate sheds the transaction.
    fn admit(&self, i: usize) -> Result<Option<Permit>> {
        match &self.gates {
            Some(gates) => gates[i].admit(AccessKind::Write).map(Some),
            None => Ok(None),
        }
    }

    /// Submits a transaction via a round-robin sequencer.
    ///
    /// # Errors
    ///
    /// Fails for unknown programs, or with [`Error::Overloaded`] when the
    /// admission gate sheds.
    pub fn execute(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<CalvinHandle> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.servers.len();
        let permit = self.admit(i)?;
        Ok(CalvinHandle {
            submission: self.servers[i].submit(program, &args.into())?,
            _permit: permit,
        })
    }

    /// Submits and blocks for full execution on every participant.
    ///
    /// # Errors
    ///
    /// As [`CalvinDatabase::execute`], plus cluster shutdown.
    pub fn execute_wait(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<()> {
        self.execute(program, args)?.wait()
    }

    /// Submits with a pinned sequencer.
    ///
    /// # Errors
    ///
    /// As [`CalvinDatabase::execute`], plus out-of-range servers.
    pub fn execute_at(
        &self,
        origin: ServerId,
        program: ProgramId,
        args: impl Into<Vec<u8>>,
    ) -> Result<CalvinHandle> {
        let server = self
            .servers
            .get(origin.index())
            .ok_or(Error::NoSuchPartition(PartitionId(origin.0)))?;
        let permit = self.admit(origin.index())?;
        Ok(CalvinHandle {
            submission: server.submit(program, &args.into())?,
            _permit: permit,
        })
    }

    /// Number of servers.
    pub fn cluster_size(&self) -> usize {
        self.servers.len()
    }
}

/// Handle to a submitted Calvin transaction.
#[derive(Debug)]
pub struct CalvinHandle {
    submission: CalvinSubmission,
    /// Admission token held until the handle resolves (or is dropped), so
    /// the gate's window bounds sequenced-but-unfinished transactions.
    _permit: Option<Permit>,
}

impl CalvinHandle {
    /// Blocks until the transaction fully executed on every participant.
    ///
    /// # Errors
    ///
    /// Fails if the cluster shut down first.
    pub fn wait(self) -> Result<()> {
        self.submission.wait()
    }
}
