//! Calvin cluster assembly and client handles.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aloha_common::metrics::{duration_micros, HistogramSnapshot, Stage, STAGE_COUNT};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{Error, Key, PartitionId, ReadMode, Result, ServerId, Value};
use aloha_control::{
    AccessKind, AdaptivePacer, AdmissionGate, ControlConfig, FixedPacer, Pacer, PacerGauges,
    PacerSample, Permit,
};
use aloha_net::{Addr, Bus, ExecConfig, Executor, NetConfig, Transport};
use aloha_storage::{DurableLog, DurableLogConfig, Fsync};
use parking_lot::{Mutex, RwLock};

use crate::durability::{self, CalvinRecoveryReport, CalvinWal};
use crate::msg::CalvinMsg;
use crate::program::{fn_program, CalvinPlan, CalvinProgram, CalvinRegistry, ProgramId};
use crate::server::{
    run_dispatcher, run_scheduler, run_sequencer, run_worker, CalvinHistory, CalvinServer,
    CalvinSubmission,
};
use crate::store::CalvinStore;

/// Where and how a Calvin cluster persists its durable log — the baseline's
/// analogue of the ALOHA engine's `DurableLogSpec`. Each server logs into
/// `dir/server-<id>/`.
#[derive(Debug, Clone)]
pub struct CalvinDurability {
    /// Root directory; one subdirectory per server.
    pub dir: PathBuf,
    /// Group-commit sync policy (one commit per sequencing round — the
    /// batch is Calvin's epoch).
    pub fsync: Fsync,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Flush every append to the kernel before acknowledging it (see
    /// `aloha_storage::DurableLogConfig::flush_appends`).
    pub flush_appends: bool,
}

impl CalvinDurability {
    /// Durability under `dir` with round-granular fsync and 256 KiB
    /// segments.
    pub fn new(dir: impl Into<PathBuf>) -> CalvinDurability {
        CalvinDurability {
            dir: dir.into(),
            fsync: Fsync::EveryEpoch,
            segment_bytes: 256 * 1024,
            flush_appends: false,
        }
    }

    /// Overrides the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: Fsync) -> CalvinDurability {
        self.fsync = fsync;
        self
    }

    /// Overrides the segment rotation threshold.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> CalvinDurability {
        self.segment_bytes = bytes;
        self
    }

    /// Enables per-append kernel flushes (process-crash durability for
    /// acknowledged appends).
    #[must_use]
    pub fn with_flush_appends(mut self, flush: bool) -> CalvinDurability {
        self.flush_appends = flush;
        self
    }
}

/// Calvin cluster configuration.
#[derive(Debug, Clone)]
pub struct CalvinConfig {
    /// Number of servers (one partition each).
    pub servers: u16,
    /// Sequencer batching epoch (paper: 20 ms, §V-A2).
    pub batch_duration: Duration,
    /// Simulated network behavior.
    pub net: NetConfig,
    /// Execution worker threads per server.
    pub workers_per_server: usize,
    /// Record the merged deterministic order on every scheduler for the
    /// serializability checker (test builds only).
    pub record_history: bool,
    /// Pool sizes for each server's bounded executor (distributed
    /// transactions run on its blocking lane); aligned with the ALOHA
    /// engine's `ClusterConfig::exec` knob.
    pub exec: ExecConfig,
    /// Closed-loop control plane: adaptive sequencer-batch pacing and/or
    /// admission gating at the client edge, mirroring the ALOHA engine's
    /// `ClusterConfig::control` knob. `None` (the default) runs fixed
    /// batches at [`CalvinConfig::batch_duration`] ungated. When set, the
    /// pacer's `initial` duration overrides `batch_duration`.
    pub control: Option<ControlConfig>,
    /// Durable logging and single-server restart support. `None` (the
    /// default) keeps the baseline fully in-memory.
    pub durability: Option<CalvinDurability>,
    /// Which [`Transport`] carries cluster messages. The default simulated
    /// bus is built from [`CalvinConfig::net`]; a custom transport ignores
    /// `net` entirely.
    pub transport: CalvinTransportSpec,
    /// How [`CalvinDatabase::read_latest`] serves reads — the same knob the
    /// ALOHA engine exposes, so the read-path ablation toggles both engines
    /// symmetrically. See [`CalvinDatabase::read_latest`] for what each mode
    /// means on a single-version store.
    pub read_mode: ReadMode,
}

/// Which transport implementation a Calvin cluster runs on (see
/// [`CalvinConfig::with_transport`]) — the baseline's analogue of the ALOHA
/// engine's `TransportSpec`.
#[derive(Clone, Default)]
pub enum CalvinTransportSpec {
    /// The in-process simulated [`Bus`], built from [`CalvinConfig::net`].
    #[default]
    Simulated,
    /// A caller-supplied transport. The cluster takes ownership of its
    /// lifecycle: [`CalvinCluster::shutdown`] shuts the transport down.
    Custom(Arc<dyn Transport<CalvinMsg>>),
}

impl std::fmt::Debug for CalvinTransportSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalvinTransportSpec::Simulated => f.write_str("CalvinTransportSpec::Simulated"),
            CalvinTransportSpec::Custom(_) => f.write_str("CalvinTransportSpec::Custom(..)"),
        }
    }
}

impl CalvinConfig {
    /// Defaults: 20 ms batches, instant network, two workers per server.
    pub fn new(servers: u16) -> CalvinConfig {
        CalvinConfig {
            servers,
            batch_duration: Duration::from_millis(20),
            net: NetConfig::instant(),
            workers_per_server: 2,
            record_history: false,
            exec: ExecConfig::default(),
            control: None,
            durability: None,
            transport: CalvinTransportSpec::Simulated,
            read_mode: ReadMode::default(),
        }
    }

    /// Overrides how latest-version reads are served (see [`ReadMode`]).
    pub fn with_read_mode(mut self, mode: ReadMode) -> CalvinConfig {
        self.read_mode = mode;
        self
    }

    /// Overrides the sequencer batch duration.
    pub fn with_batch_duration(mut self, duration: Duration) -> CalvinConfig {
        self.batch_duration = duration;
        self
    }

    /// Overrides the network behavior.
    pub fn with_net(mut self, net: NetConfig) -> CalvinConfig {
        self.net = net;
        self
    }

    /// Overrides the worker pool size.
    pub fn with_workers(mut self, workers: usize) -> CalvinConfig {
        self.workers_per_server = workers;
        self
    }

    /// Enables schedule-history recording for the serializability checker.
    pub fn with_history(mut self) -> CalvinConfig {
        self.record_history = true;
        self
    }

    /// Overrides the per-server executor pool sizes.
    pub fn with_exec(mut self, exec: ExecConfig) -> CalvinConfig {
        self.exec = exec;
        self
    }

    /// Enables the closed-loop control plane (adaptive batch pacing and/or
    /// admission gating).
    pub fn with_control(mut self, control: ControlConfig) -> CalvinConfig {
        self.control = Some(control);
        self
    }

    /// Enables the durable log (and with it
    /// [`CalvinCluster::restart_server`]).
    #[deprecated(
        since = "0.7.0",
        note = "use `with_durable_log(spec)`, the same builder name the ALOHA engine uses"
    )]
    pub fn with_durability(mut self, durability: CalvinDurability) -> CalvinConfig {
        self.durability = Some(durability);
        self
    }

    /// Enables the durable log (and with it
    /// [`CalvinCluster::restart_server`]). Named symmetrically with the
    /// ALOHA engine's `ClusterConfig::with_durable_log`.
    pub fn with_durable_log(mut self, durability: CalvinDurability) -> CalvinConfig {
        self.durability = Some(durability);
        self
    }

    /// Runs the cluster on a caller-supplied [`Transport`] instead of the
    /// default simulated bus; [`CalvinConfig::net`] is ignored. The cluster
    /// owns the transport's lifecycle from here on.
    pub fn with_transport(mut self, transport: Arc<dyn Transport<CalvinMsg>>) -> CalvinConfig {
        self.transport = CalvinTransportSpec::Custom(transport);
        self
    }
}

/// Reserved program id of the built-in read fence (see
/// [`CalvinDatabase::read_latest`]); registered automatically by
/// [`CalvinClusterBuilder::start`], so user programs must not use it.
pub const READ_FENCE_PROGRAM: ProgramId = ProgramId(u32::MAX);

/// Packs a read set into read-fence args: `u32` big-endian length + bytes
/// per key.
fn encode_fence_keys(keys: &[Key]) -> Vec<u8> {
    let mut out = Vec::new();
    for key in keys {
        let bytes = key.as_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Recovers a read set from read-fence args (tolerant of truncation — the
/// fence locks whatever prefix decodes, and execution is a no-op either way).
fn decode_fence_keys(mut args: &[u8]) -> Vec<Key> {
    let mut keys = Vec::new();
    while args.len() >= 4 {
        let len = u32::from_be_bytes(args[..4].try_into().expect("4 bytes")) as usize;
        args = &args[4..];
        if args.len() < len {
            break;
        }
        keys.push(Key::from(args[..len].to_vec()));
        args = &args[len..];
    }
    keys
}

/// Swappable server slots shared by the cluster and every
/// [`CalvinDatabase`] clone, so a restart replaces the one slot everywhere
/// at once instead of leaving stale `Arc`s pinning a dead server.
pub(crate) struct CalvinSlots {
    slots: Vec<RwLock<Arc<CalvinServer>>>,
}

impl CalvinSlots {
    fn new(servers: Vec<Arc<CalvinServer>>) -> CalvinSlots {
        CalvinSlots {
            slots: servers.into_iter().map(RwLock::new).collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn get(&self, i: usize) -> Arc<CalvinServer> {
        Arc::clone(&self.slots[i].read())
    }

    fn set(&self, i: usize, server: Arc<CalvinServer>) {
        *self.slots[i].write() = server;
    }

    pub(crate) fn all(&self) -> Vec<Arc<CalvinServer>> {
        self.slots.iter().map(|s| Arc::clone(&s.read())).collect()
    }
}

/// Everything needed to construct a server, kept so
/// [`CalvinCluster::restart_server`] can rebuild one after a kill.
struct CalvinRebuild {
    config: CalvinConfig,
    batch_duration: Duration,
    registry: Arc<CalvinRegistry>,
}

/// What [`build_server`] hands back: the server, its threads, its pacer
/// gauges (adaptive control only), and its recovery report (durable only).
type BuiltServer = (
    Arc<CalvinServer>,
    Vec<JoinHandle<()>>,
    Option<Arc<PacerGauges>>,
    Option<CalvinRecoveryReport>,
);

/// Builds one server: recovers its durable log (if configured), registers
/// its endpoint, and spawns its dispatcher, sequencer, scheduler and worker
/// threads. Used both at cluster start and on restart.
fn build_server(
    ctx: &CalvinRebuild,
    net: &Arc<dyn Transport<CalvinMsg>>,
    i: u16,
) -> Result<BuiltServer> {
    let n = ctx.config.servers;
    let (wal, report) = match &ctx.config.durability {
        Some(spec) => {
            let cfg = DurableLogConfig::new(spec.dir.join(format!("server-{i}")))
                .with_fsync(spec.fsync)
                .with_segment_bytes(spec.segment_bytes)
                .with_flush_appends(spec.flush_appends);
            let (log, recovered) = DurableLog::open(cfg)?;
            let store = CalvinStore::new();
            let (report, ring) = durability::replay(ServerId(i), &store, &recovered)?;
            let wal = CalvinWal {
                log: Arc::new(log),
                start_round: report.resume_round,
                start_seq: report.resume_seq,
                ring,
                store,
            };
            (Some(wal), Some(report))
        }
        None => (None, None),
    };
    let endpoint = net.register(Addr::Server(ServerId(i)));
    let history = ctx
        .config
        .record_history
        .then(|| Arc::new(CalvinHistory::new()));
    let exec = Executor::new(format!("calvin-exec-{i}"), ctx.config.exec.clone());
    let (server, sched_rx, exec_rx) = CalvinServer::new(
        ServerId(i),
        n,
        Arc::clone(&ctx.registry),
        Arc::clone(net),
        exec,
        history,
        wal,
    );
    let mut threads = Vec::new();
    let s = Arc::clone(&server);
    threads.push(
        std::thread::Builder::new()
            .name(format!("calvin-dispatch-{i}"))
            .spawn(move || run_dispatcher(s, endpoint))
            .expect("spawn dispatcher"),
    );
    let s = Arc::clone(&server);
    // Each sequencer owns its pacer: rounds are per-server, so each
    // controller steers its own batch duration from local pressure.
    let (pacer, gauges): (Box<dyn Pacer>, Option<Arc<PacerGauges>>) = match &ctx.config.control {
        Some(control) => {
            let gauges = Arc::new(PacerGauges::default());
            let sampled = Arc::clone(&server);
            let source = move || PacerSample {
                exec_queue: sampled.exec().queued_now(),
                backlog: sampled.backlog_len(),
                batch_occupancy: 0,
            };
            let pacer = AdaptivePacer::new(control.pacing.clone(), source, Arc::clone(&gauges))?;
            (Box::new(pacer), Some(gauges))
        }
        None => (Box::new(FixedPacer(ctx.batch_duration)), None),
    };
    threads.push(
        std::thread::Builder::new()
            .name(format!("calvin-seq-{i}"))
            .spawn(move || run_sequencer(s, pacer))
            .expect("spawn sequencer"),
    );
    let s = Arc::clone(&server);
    threads.push(
        std::thread::Builder::new()
            .name(format!("calvin-sched-{i}"))
            .spawn(move || run_scheduler(s, sched_rx))
            .expect("spawn scheduler"),
    );
    for w in 0..ctx.config.workers_per_server {
        let s = Arc::clone(&server);
        let rx = exec_rx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("calvin-worker-{i}-{w}"))
                .spawn(move || run_worker(s, rx))
                .expect("spawn worker"),
        );
    }
    Ok((server, threads, gauges, report))
}

/// Builds a [`CalvinCluster`]: registers programs, then starts.
pub struct CalvinClusterBuilder {
    config: CalvinConfig,
    registry: CalvinRegistry,
}

impl std::fmt::Debug for CalvinClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinClusterBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl CalvinClusterBuilder {
    /// Registers a stored procedure on every server.
    pub fn register_program(
        &mut self,
        id: ProgramId,
        program: impl CalvinProgram + 'static,
    ) -> &mut Self {
        self.registry.register(id, program);
        self
    }

    /// Starts the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for invalid configurations and
    /// [`Error::Io`] when a configured durable log cannot be opened (or
    /// holds damage a clean crash cannot explain).
    pub fn start(self) -> Result<CalvinCluster> {
        let n = self.config.servers;
        if n == 0 {
            return Err(Error::Config(
                "calvin cluster needs at least one server".into(),
            ));
        }
        if self.config.workers_per_server == 0 {
            return Err(Error::Config("need at least one worker per server".into()));
        }
        if let Some(control) = &self.config.control {
            control.validate()?;
        }
        // With a control plane configured, the pacer's initial duration is
        // authoritative (`ControlConfig::fixed(d)` ≡ `with_batch_duration(d)`).
        let batch_duration = self
            .config
            .control
            .as_ref()
            .map(|c| c.pacing.initial)
            .unwrap_or(self.config.batch_duration);
        let net: Arc<dyn Transport<CalvinMsg>> = match self.config.transport.clone() {
            CalvinTransportSpec::Simulated => Arc::new(Bus::new(self.config.net.clone())),
            CalvinTransportSpec::Custom(transport) => transport,
        };
        let mut registry = self.registry;
        // The built-in read fence: locks its declared read set in the
        // deterministic order and writes nothing. Delayed read-only
        // transactions ride it (see `CalvinDatabase::read_latest`).
        registry.register(
            READ_FENCE_PROGRAM,
            fn_program(
                |args| CalvinPlan {
                    read_set: decode_fence_keys(args),
                    write_set: Vec::new(),
                },
                |_args, _reads, _writes| {},
            ),
        );
        let rebuild = CalvinRebuild {
            config: self.config,
            batch_duration,
            registry: Arc::new(registry),
        };
        let mut servers = Vec::with_capacity(n as usize);
        let mut server_threads = Vec::with_capacity(n as usize);
        let mut pacer_gauges = Vec::new();
        for i in 0..n {
            let (server, threads, gauges, _) = build_server(&rebuild, &net, i)?;
            servers.push(server);
            server_threads.push(threads);
            if let Some(g) = gauges {
                pacer_gauges.push(g);
            }
        }
        let gates = rebuild
            .config
            .control
            .as_ref()
            .and_then(|c| c.gate.as_ref())
            .map(|gate_cfg| {
                let gates = (0..n)
                    .map(|_| AdmissionGate::new(gate_cfg.clone()).map(Arc::new))
                    .collect::<Result<Vec<_>>>()?;
                Ok::<_, Error>(Arc::new(gates))
            })
            .transpose()?;
        Ok(CalvinCluster {
            servers: Arc::new(CalvinSlots::new(servers)),
            net,
            server_threads: Mutex::new(server_threads),
            total: n,
            rebuild,
            gates,
            pacer_gauges: Mutex::new(pacer_gauges),
        })
    }
}

/// A running Calvin cluster.
pub struct CalvinCluster {
    servers: Arc<CalvinSlots>,
    net: Arc<dyn Transport<CalvinMsg>>,
    /// Thread handles grouped per server, so one server can be torn down
    /// and rebuilt without disturbing the rest.
    server_threads: Mutex<Vec<Vec<JoinHandle<()>>>>,
    total: u16,
    rebuild: CalvinRebuild,
    /// Per-sequencer admission gates (index-aligned with `servers`); `None`
    /// when the control plane is off or gating is disabled.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
    /// Live pacer state, one per sequencer (empty without a control plane);
    /// a restart replaces the restarted server's entry.
    pacer_gauges: Mutex<Vec<Arc<PacerGauges>>>,
}

impl std::fmt::Debug for CalvinCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinCluster")
            .field("servers", &self.total)
            .finish()
    }
}

impl CalvinCluster {
    /// Starts building a cluster.
    pub fn builder(config: CalvinConfig) -> CalvinClusterBuilder {
        CalvinClusterBuilder {
            config,
            registry: CalvinRegistry::new(),
        }
    }

    /// The servers, indexed by id. A snapshot: a concurrent restart swaps
    /// slots, so re-fetch rather than holding these across one.
    pub fn servers(&self) -> Vec<Arc<CalvinServer>> {
        self.servers.all()
    }

    /// Number of servers.
    pub fn size(&self) -> u16 {
        self.total
    }

    /// The most complete per-server record of the merged global order, or
    /// `None` when history recording is off. Under fault injection a
    /// scheduler that ends mid-disruption may hold a prefix (and a
    /// restarted server's log restarts at its resume round), so the longest
    /// log is the authoritative schedule.
    pub fn history(&self) -> Option<Vec<crate::msg::CalvinTxn>> {
        self.servers
            .all()
            .iter()
            .filter_map(|s| s.history().map(|h| h.snapshot()))
            .max_by_key(Vec::len)
    }

    /// The active fault plan, if the transport injects faults (only the
    /// simulated bus does).
    pub fn fault_plan(&self) -> Option<&aloha_net::FaultPlan> {
        self.net.fault_plan()
    }

    /// A client handle.
    pub fn database(&self) -> CalvinDatabase {
        CalvinDatabase {
            servers: Arc::clone(&self.servers),
            next: Arc::new(AtomicUsize::new(0)),
            read_mode: self.rebuild.config.read_mode,
            gates: self.gates.clone(),
        }
    }

    /// Loads an initial row into the owning partition (before opening the
    /// database for transactions).
    pub fn load(&self, key: Key, value: Value) {
        let owner = key.partition(self.total);
        self.servers.get(owner.index()).store().put(key, value);
    }

    /// Reads the current value of `key` directly from the owning store.
    /// Intended for quiescent verification, not as a transaction.
    pub fn read(&self, key: &Key) -> Option<Value> {
        let owner = key.partition(self.total);
        self.servers.get(owner.index()).store().get(key)
    }

    /// Kills one server in place: marks it shut down, drains and joins its
    /// threads, and seals its durable log (flush + sync), while the rest of
    /// the cluster keeps running. Peer schedulers stall on the dead
    /// server's unsealed rounds until [`CalvinCluster::restart_server`]
    /// brings it back.
    ///
    /// Calvin's single-version store cannot reconstruct mid-transaction
    /// reads, so the supported crash model is quiescent: kill between
    /// transactions, not with submissions in flight (the ALOHA engine's
    /// multiversioning is what makes mid-epoch kills recoverable there).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchPartition`] for out-of-range ids and
    /// [`Error::Config`] when the server is already down.
    pub fn kill_server(&self, id: ServerId) -> Result<()> {
        let i = id.index();
        if i >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(id.0)));
        }
        let server = self.servers.get(i);
        if server.is_shutdown() {
            return Err(Error::Config(format!("server {} is already down", id.0)));
        }
        server.mark_shutdown();
        // The shutdown message must go out while the endpoint is still
        // registered; deregistering first would error the reliable send and
        // leave the dispatcher blocked on its queue forever.
        let _ = self
            .net
            .send_reliable(Addr::Server(id), CalvinMsg::Shutdown);
        self.net.deregister(Addr::Server(id));
        let handles: Vec<_> = self.server_threads.lock()[i].drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        server.exec().shutdown();
        if let Some(log) = server.durable_log() {
            log.close();
        }
        Ok(())
    }

    /// Whether this engine supports hot-standby partial replication with
    /// epoch-boundary failover. Always `false`: Calvin has no epoch barrier
    /// to cut a consistent promotion point on, and its deterministic
    /// scheduler would need the standby to join mid-round — the only
    /// supported recovery is [`CalvinCluster::restart_server`] replaying the
    /// durable log (the restart path the ALOHA engine keeps as its fallback
    /// for *un*-replicated partitions).
    pub fn supports_partial_replication(&self) -> bool {
        false
    }

    /// Rebuilds a killed server from its durable log: restores the newest
    /// checkpoint, replays the Put suffix, resumes the sequencer at the
    /// highest persisted round + 1, and re-broadcasts the recovered seal
    /// ring so peer schedulers stalled on this server's rounds unblock. The
    /// restarted sequencer then burst-seals up to the peers' observed round
    /// frontier to close the dead-window gap in one tick.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when durability is off or the server is
    /// still running, and [`Error::Io`] when the log holds damage a clean
    /// crash cannot explain (anything beyond a torn final segment).
    pub fn restart_server(&self, id: ServerId) -> Result<CalvinRecoveryReport> {
        let i = id.index();
        if i >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(id.0)));
        }
        if self.rebuild.config.durability.is_none() {
            return Err(Error::Config(
                "restart requires a durable log (CalvinConfig::with_durable_log)".into(),
            ));
        }
        if !self.servers.get(i).is_shutdown() {
            return Err(Error::Config(format!(
                "server {} is still running; kill it first",
                id.0
            )));
        }
        let (server, threads, gauges, report) = build_server(&self.rebuild, &self.net, id.0)?;
        self.server_threads.lock()[i] = threads;
        if let Some(g) = gauges {
            self.pacer_gauges.lock()[i] = g;
        }
        self.servers.set(i, server);
        Ok(report.expect("durability configured implies a recovery report"))
    }

    /// Checkpoints every live server's store into its durable log and
    /// truncates covered segments. Intended for quiescent moments (no
    /// submissions in flight): the store dump and the round watermark are
    /// only mutually consistent when no write-back races them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when durability is off and [`Error::Io`]
    /// on filesystem failures.
    pub fn checkpoint(&self) -> Result<()> {
        if self.rebuild.config.durability.is_none() {
            return Err(Error::Config(
                "checkpoint requires a durable log (CalvinConfig::with_durable_log)".into(),
            ));
        }
        for server in self.servers.all() {
            if server.is_shutdown() {
                continue;
            }
            let Some(log) = server.durable_log() else {
                continue;
            };
            let round = server.last_sealed_round() + 1;
            let blob =
                durability::encode_checkpoint(round, server.next_seq_watermark(), server.store());
            log.install_checkpoint(round, &blob)?;
        }
        Ok(())
    }

    /// A composable statistics snapshot for the whole cluster: summed
    /// counters and cluster-wide stage percentiles at the root (merged from
    /// every server's raw histogram buckets — never averaged percentiles),
    /// with per-server and network subtrees as children. Uses the same
    /// six-stage schema as the ALOHA engine (§III analogues documented on
    /// [`crate::server::CalvinStats`]). Durable servers additionally carry
    /// a `durability` subtree.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut root = StatsSnapshot::new("calvin");
        let mut completed = 0u64;
        let mut scheduled = 0u64;
        let mut merged: [HistogramSnapshot; STAGE_COUNT + 1] = Default::default();
        for server in self.servers.all() {
            let stats = server.stats();
            completed += stats.completed();
            scheduled += stats.scheduled();
            for (acc, snap) in merged.iter_mut().zip(stats.raw_histograms()) {
                acc.merge(&snap);
            }
            let mut node = stats.snapshot(format!("server_{}", server.id().0));
            node.push_child(server.exec().stats().snapshot("exec"));
            if let Some(log) = server.durable_log() {
                node.push_child(log.stats().snapshot(server.last_sealed_round()));
            }
            root.push_child(node);
        }
        root.set_counter("completed", completed);
        root.set_counter("scheduled", scheduled);
        for stage in Stage::ALL {
            root.set_stage(stage.name(), StageStats::from(&merged[stage.index()]));
        }
        root.set_stage("e2e", StageStats::from(&merged[STAGE_COUNT]));
        root.push_child(self.net.snapshot());
        if let Some(control) = self.control_snapshot() {
            root.push_child(control);
        }
        root
    }

    /// The `control` node of the stats tree: per-sequencer pacer gauges and
    /// summed gate activity. `None` when no control plane is configured.
    fn control_snapshot(&self) -> Option<StatsSnapshot> {
        let pacer_gauges = self.pacer_gauges.lock();
        if pacer_gauges.is_empty() && self.gates.is_none() {
            return None;
        }
        let mut node = StatsSnapshot::new("control");
        // Sequencers pace independently; export the widest batch any of them
        // currently runs plus the highest pressure, with per-server children.
        if !pacer_gauges.is_empty() {
            let widest = pacer_gauges
                .iter()
                .map(|g| g.epoch_duration_micros.get())
                .max()
                .unwrap_or(0);
            let pressure = pacer_gauges
                .iter()
                .map(|g| g.pressure_millis.get())
                .max()
                .unwrap_or(0);
            node.set_gauge("epoch_duration_micros", widest);
            node.set_gauge("pressure_millis", pressure);
            for (i, gauges) in pacer_gauges.iter().enumerate() {
                let mut child = StatsSnapshot::new(format!("pacer_s{i}"));
                child.set_gauge("epoch_duration_micros", gauges.epoch_duration_micros.get());
                child.set_gauge("pressure_millis", gauges.pressure_millis.get());
                node.push_child(child);
            }
        }
        if let Some(gates) = &self.gates {
            let (mut admitted, mut shed, mut queued, mut in_use) = (0, 0, 0, 0);
            for (i, gate) in gates.iter().enumerate() {
                let stats = gate.stats();
                admitted += stats.admitted.get();
                shed += stats.shed.get();
                queued += stats.queued.get();
                in_use += stats.tokens_in_use.get();
                node.push_child(gate.snapshot(format!("gate_s{i}")));
            }
            node.set_counter("admitted", admitted);
            node.set_counter("shed", shed);
            node.set_counter("queued", queued);
            node.set_gauge("tokens_in_use", in_use);
        }
        Some(node)
    }

    /// The per-sequencer admission gates, when the control plane enables
    /// gating.
    pub fn gates(&self) -> Option<&[Arc<AdmissionGate>]> {
        self.gates.as_deref().map(Vec::as_slice)
    }

    /// Resets every server's statistics.
    pub fn reset_stats(&self) {
        for server in self.servers.all() {
            server.stats().reset();
            server.exec().stats().reset();
        }
        if let Some(gates) = &self.gates {
            for gate in gates.iter() {
                gate.reset_stats();
            }
        }
    }

    /// Stops all servers and joins their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let servers = self.servers.all();
        for server in &servers {
            server.mark_shutdown();
            let _ = self
                .net
                .send_reliable(Addr::Server(server.id()), CalvinMsg::Shutdown);
        }
        let groups: Vec<Vec<JoinHandle<()>>> = self
            .server_threads
            .lock()
            .iter_mut()
            .map(std::mem::take)
            .collect();
        for t in groups.into_iter().flatten() {
            let _ = t.join();
        }
        // Workers are gone, so nothing submits anymore; drain and join the
        // executors (deferred until here so one server's draining tasks can
        // still get read broadcasts handled by its peers), then seal the
        // logs so everything acknowledged is flushed to disk.
        for server in &servers {
            server.exec().shutdown();
            if let Some(log) = server.durable_log() {
                log.close();
            }
        }
        // The cluster owns the transport's lifecycle: release sockets /
        // channel registrations last, once nothing can send anymore.
        self.net.shutdown();
    }
}

impl Drop for CalvinCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Client handle: submits transactions round-robin across sequencers.
#[derive(Clone)]
pub struct CalvinDatabase {
    servers: Arc<CalvinSlots>,
    next: Arc<AtomicUsize>,
    /// How [`CalvinDatabase::read_latest`] serves reads (from
    /// [`CalvinConfig`]).
    read_mode: ReadMode,
    /// Per-sequencer admission gates (`None` on an ungated cluster).
    /// Admission happens before the submission enters the sequencer batch:
    /// a shed transaction is never sequenced anywhere.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
}

impl std::fmt::Debug for CalvinDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinDatabase")
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl CalvinDatabase {
    /// Acquires sequencer `i`'s admission token (no-op on an ungated
    /// cluster).
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the gate sheds the transaction.
    fn admit(&self, i: usize, kind: AccessKind) -> Result<Option<Permit>> {
        match &self.gates {
            Some(gates) => gates[i].admit(kind).map(Some),
            None => Ok(None),
        }
    }

    /// Round-robin sequencer choice, skipping killed servers so client
    /// threads fail over instead of submitting into a dead batch.
    fn pick_sequencer(&self) -> Arc<CalvinServer> {
        let n = self.servers.len();
        for _ in 0..n {
            let i = self.next.fetch_add(1, Ordering::Relaxed) % n;
            let server = self.servers.get(i);
            if !server.is_shutdown() {
                return server;
            }
        }
        // Everything looks down (or raced a restart): fall back to plain
        // rotation and let the submission surface the error.
        let i = self.next.fetch_add(1, Ordering::Relaxed) % n;
        self.servers.get(i)
    }

    /// Submits a transaction via a round-robin sequencer (skipping killed
    /// servers).
    ///
    /// # Errors
    ///
    /// Fails for unknown programs, or with [`Error::Overloaded`] when the
    /// admission gate sheds.
    pub fn execute(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<CalvinHandle> {
        let server = self.pick_sequencer();
        let permit = self.admit(server.id().index(), AccessKind::Write)?;
        Ok(CalvinHandle {
            submission: server.submit(program, &args.into())?,
            _permit: permit,
        })
    }

    /// Submits and blocks for full execution on every participant.
    ///
    /// # Errors
    ///
    /// As [`CalvinDatabase::execute`], plus cluster shutdown.
    pub fn execute_wait(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<()> {
        self.execute(program, args)?.wait()
    }

    /// Submits with a pinned sequencer.
    ///
    /// # Errors
    ///
    /// As [`CalvinDatabase::execute`], plus out-of-range servers and
    /// [`Error::ShuttingDown`] when the pinned sequencer is down.
    pub fn execute_at(
        &self,
        origin: ServerId,
        program: ProgramId,
        args: impl Into<Vec<u8>>,
    ) -> Result<CalvinHandle> {
        if origin.index() >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(origin.0)));
        }
        let server = self.servers.get(origin.index());
        if server.is_shutdown() {
            return Err(Error::ShuttingDown);
        }
        let permit = self.admit(origin.index(), AccessKind::Write)?;
        Ok(CalvinHandle {
            submission: server.submit(program, &args.into())?,
            _permit: permit,
        })
    }

    /// Latest-version read-only transaction, on the same [`ReadMode`] knob
    /// as the ALOHA engine:
    ///
    /// * [`ReadMode::Snapshot`] reads each key straight from its owning
    ///   server's store — no sequencing, no locks, no batch wait. On
    ///   Calvin's *single-version* store this is best-effort: per-key values
    ///   are the latest written back, but a multi-partition transaction
    ///   mid-write-back can be observed partially (the ALOHA engine's
    ///   version chains are what make the same fast path torn-free there).
    /// * [`ReadMode::DelayToEpoch`] is Calvin's native read-only
    ///   transaction: a no-op *read fence* over `keys` rides the sequencer
    ///   into the deterministic order, locking the read set on every owner;
    ///   once it completes, every earlier-ordered transaction has executed
    ///   and the subsequent store reads are a consistent cut at the fence's
    ///   position. Costs roughly one sequencer batch of latency.
    ///
    /// Both modes record the `snapshot_read` lifecycle stage on the origin
    /// server, so the read ablation compares engines like for like.
    ///
    /// # Errors
    ///
    /// Fails on shutdown, or with [`Error::Overloaded`] when the admission
    /// gate sheds the read.
    pub fn read_latest(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let origin = self.pick_sequencer();
        // Reads admit under `AccessKind::Read` (the reserved read share of
        // the gate window), mirroring the ALOHA engine's client edge.
        let _permit = self.admit(origin.id().index(), AccessKind::Read)?;
        let started = Instant::now();
        if self.read_mode == ReadMode::DelayToEpoch && !keys.is_empty() {
            let fence = CalvinHandle {
                submission: origin.submit(READ_FENCE_PROGRAM, &encode_fence_keys(keys))?,
                _permit: None,
            };
            fence.wait()?;
        }
        let total = self.servers.len() as u16;
        let values = keys
            .iter()
            .map(|key| {
                self.servers
                    .get(key.partition(total).index())
                    .store()
                    .get(key)
            })
            .collect();
        origin
            .stats()
            .tracer()
            .record_stage(Stage::SnapshotRead, duration_micros(started.elapsed()));
        Ok(values)
    }

    /// Latest-version read of a single key: [`CalvinDatabase::read_latest`]
    /// without the slice ceremony.
    ///
    /// # Errors
    ///
    /// As [`CalvinDatabase::read_latest`].
    pub fn read_one(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.read_latest(std::slice::from_ref(key))?.pop().flatten())
    }

    /// Number of servers.
    pub fn cluster_size(&self) -> usize {
        self.servers.len()
    }
}

/// Handle to a submitted Calvin transaction.
#[derive(Debug)]
pub struct CalvinHandle {
    submission: CalvinSubmission,
    /// Admission token held until the handle resolves (or is dropped), so
    /// the gate's window bounds sequenced-but-unfinished transactions.
    _permit: Option<Permit>,
}

impl CalvinHandle {
    /// Blocks until the transaction fully executed on every participant.
    ///
    /// # Errors
    ///
    /// Fails if the cluster shut down first.
    pub fn wait(self) -> Result<()> {
        self.submission.wait()
    }
}
