//! The deterministic per-partition lock manager.
//!
//! Calvin grants locks strictly in the deterministic transaction order, from
//! a *single* lock-manager thread per partition — the bottleneck the ALOHA-DB
//! paper highlights under contention ("we believe Calvin is bottlenecked in
//! the single-threaded lock manager when contention on hot keys is high",
//! §V-C1). Requests queue FIFO per key; a request is granted when everything
//! ahead of it is granted and compatible.

use std::collections::{HashMap, VecDeque};

use aloha_common::Key;

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared.
    Read,
    /// Exclusive.
    Write,
}

#[derive(Debug)]
struct LockRequest {
    txn: u64,
    mode: LockMode,
    granted: bool,
}

#[derive(Debug, Default)]
struct LockQueue {
    entries: VecDeque<LockRequest>,
}

impl LockQueue {
    /// Grants the maximal FIFO-compatible prefix; returns newly granted txns.
    ///
    /// A write lock is grantable only at the front of the queue; read locks
    /// are grantable as a consecutive prefix up to the first write.
    fn grant_prefix(&mut self) -> Vec<u64> {
        let mut newly = Vec::new();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            match entry.mode {
                LockMode::Write => {
                    if i == 0 && !entry.granted {
                        entry.granted = true;
                        newly.push(entry.txn);
                    }
                    break; // nothing behind a write may be granted
                }
                LockMode::Read => {
                    if !entry.granted {
                        entry.granted = true;
                        newly.push(entry.txn);
                    }
                }
            }
        }
        newly
    }
}

/// A per-partition lock table with FIFO deterministic granting.
///
/// Not internally synchronized: exactly one scheduler thread drives it, as in
/// Calvin.
///
/// # Examples
///
/// ```
/// use aloha_common::Key;
/// use calvin::{LockManager, LockMode};
///
/// let mut lm = LockManager::new();
/// assert!(lm.acquire(1, &Key::from("a"), LockMode::Write));
/// assert!(!lm.acquire(2, &Key::from("a"), LockMode::Write), "txn 2 must wait");
/// let granted = lm.release(1, &Key::from("a"));
/// assert_eq!(granted, vec![2]);
/// ```
#[derive(Debug, Default)]
pub struct LockManager {
    table: HashMap<Key, LockQueue>,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Requests a lock for `txn` on `key`. Returns `true` if granted
    /// immediately, `false` if queued.
    ///
    /// Callers must deduplicate keys per transaction (requesting the same key
    /// twice from one transaction is a protocol error).
    pub fn acquire(&mut self, txn: u64, key: &Key, mode: LockMode) -> bool {
        let queue = self.table.entry(key.clone()).or_default();
        debug_assert!(
            queue.entries.iter().all(|e| e.txn != txn),
            "duplicate lock request for txn {txn}"
        );
        queue.entries.push_back(LockRequest {
            txn,
            mode,
            granted: false,
        });
        let newly = queue.grant_prefix();
        newly.contains(&txn)
    }

    /// Releases `txn`'s lock on `key`; returns transactions whose request on
    /// this key just became granted (FIFO order).
    pub fn release(&mut self, txn: u64, key: &Key) -> Vec<u64> {
        let Some(queue) = self.table.get_mut(key) else {
            return Vec::new();
        };
        if let Some(pos) = queue.entries.iter().position(|e| e.txn == txn) {
            queue.entries.remove(pos);
        }
        let newly = queue.grant_prefix();
        if queue.entries.is_empty() {
            self.table.remove(key);
        }
        newly
    }

    /// Number of keys with active queues (diagnostics).
    pub fn active_keys(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> Key {
        Key::from(name)
    }

    #[test]
    fn reads_share_writes_exclude() {
        let mut lm = LockManager::new();
        assert!(lm.acquire(1, &k("a"), LockMode::Read));
        assert!(
            lm.acquire(2, &k("a"), LockMode::Read),
            "shared readers coexist"
        );
        assert!(
            !lm.acquire(3, &k("a"), LockMode::Write),
            "writer waits for readers"
        );
        assert!(lm.release(1, &k("a")).is_empty(), "one reader left");
        assert_eq!(
            lm.release(2, &k("a")),
            vec![3],
            "writer granted when readers gone"
        );
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut lm = LockManager::new();
        assert!(lm.acquire(1, &k("a"), LockMode::Write));
        assert!(!lm.acquire(2, &k("a"), LockMode::Write));
        assert!(!lm.acquire(3, &k("a"), LockMode::Read));
        // Releasing 1 grants 2 (the next in FIFO), not the reader behind it.
        assert_eq!(lm.release(1, &k("a")), vec![2]);
        assert_eq!(lm.release(2, &k("a")), vec![3]);
    }

    #[test]
    fn reader_behind_writer_does_not_jump_queue() {
        let mut lm = LockManager::new();
        assert!(lm.acquire(1, &k("a"), LockMode::Read));
        assert!(!lm.acquire(2, &k("a"), LockMode::Write));
        assert!(
            !lm.acquire(3, &k("a"), LockMode::Read),
            "reader 3 must not bypass waiting writer 2 (determinism)"
        );
        let after_one = lm.release(1, &k("a"));
        assert_eq!(after_one, vec![2]);
        assert_eq!(lm.release(2, &k("a")), vec![3]);
    }

    #[test]
    fn multiple_readers_granted_together_after_writer() {
        let mut lm = LockManager::new();
        assert!(lm.acquire(1, &k("a"), LockMode::Write));
        assert!(!lm.acquire(2, &k("a"), LockMode::Read));
        assert!(!lm.acquire(3, &k("a"), LockMode::Read));
        let granted = lm.release(1, &k("a"));
        assert_eq!(granted, vec![2, 3], "both readers unblock at once");
    }

    #[test]
    fn independent_keys_do_not_interact() {
        let mut lm = LockManager::new();
        assert!(lm.acquire(1, &k("a"), LockMode::Write));
        assert!(lm.acquire(2, &k("b"), LockMode::Write));
        assert_eq!(lm.active_keys(), 2);
        lm.release(1, &k("a"));
        lm.release(2, &k("b"));
        assert_eq!(lm.active_keys(), 0, "empty queues are reclaimed");
    }

    #[test]
    fn release_of_waiting_request_cancels_it() {
        let mut lm = LockManager::new();
        assert!(lm.acquire(1, &k("a"), LockMode::Write));
        assert!(!lm.acquire(2, &k("a"), LockMode::Write));
        assert!(!lm.acquire(3, &k("a"), LockMode::Write));
        // Cancel txn 2 while it waits; txn 3 is next after 1 releases.
        assert!(lm.release(2, &k("a")).is_empty());
        assert_eq!(lm.release(1, &k("a")), vec![3]);
    }
}
