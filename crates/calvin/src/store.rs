//! Calvin's single-version partition store.
//!
//! Calvin needs no multi-versioning: the deterministic lock schedule
//! serializes conflicting accesses, so a plain latest-value table suffices.

use std::collections::HashMap;

use aloha_common::{Key, Value};
use parking_lot::RwLock;

const SHARDS: usize = 64;

/// One partition's key-value table.
///
/// # Examples
///
/// ```
/// use aloha_common::{Key, Value};
/// use calvin::CalvinStore;
///
/// let store = CalvinStore::new();
/// store.put(Key::from("a"), Value::from_i64(1));
/// assert_eq!(store.get(&Key::from("a")).unwrap().as_i64(), Some(1));
/// ```
#[derive(Debug)]
pub struct CalvinStore {
    shards: Vec<RwLock<HashMap<Key, Value>>>,
}

impl CalvinStore {
    /// Creates an empty store.
    pub fn new() -> CalvinStore {
        CalvinStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &Key) -> &RwLock<HashMap<Key, Value>> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Reads the current value of `key`.
    pub fn get(&self, key: &Key) -> Option<Value> {
        self.shard(key).read().get(key).cloned()
    }

    /// Writes `value` under `key`.
    pub fn put(&self, key: Key, value: Value) {
        self.shard(&key).write().insert(key, value);
    }

    /// Whether the key exists.
    pub fn contains(&self, key: &Key) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every entry, sorted by key: the deterministic snapshot checkpoints
    /// serialize. Intended for quiescent use (checkpoint, verification) —
    /// it read-locks each shard in turn, not the whole store at once.
    pub fn dump(&self) -> Vec<(Key, Value)> {
        let mut entries: Vec<(Key, Value)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

impl Default for CalvinStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let s = CalvinStore::new();
        s.put(Key::from("k"), Value::from_i64(1));
        s.put(Key::from("k"), Value::from_i64(2));
        assert_eq!(s.get(&Key::from("k")).unwrap().as_i64(), Some(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn missing_key_is_none() {
        let s = CalvinStore::new();
        assert!(s.get(&Key::from("missing")).is_none());
        assert!(!s.contains(&Key::from("missing")));
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use std::sync::Arc;
        let s = Arc::new(CalvinStore::new());
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        s.put(
                            Key::from_parts(&[&t.to_be_bytes(), &i.to_be_bytes()]),
                            Value::from_i64(i as i64),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 400);
    }
}
