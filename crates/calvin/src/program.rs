//! Calvin stored procedures: read/write sets known up front, deterministic
//! execution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use aloha_common::{Error, Key, Result, Value};

/// Identifier of a registered Calvin stored procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u32);

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cprog{}", self.0)
    }
}

/// The declared access sets of one transaction ("the keys accessed by a
/// transaction must be known ahead of time", §IV-A — Calvin's restriction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalvinPlan {
    /// Keys the procedure reads.
    pub read_set: Vec<Key>,
    /// Keys the procedure writes.
    pub write_set: Vec<Key>,
}

impl CalvinPlan {
    /// All keys accessed (reads then writes, possibly overlapping).
    pub fn all_keys(&self) -> impl Iterator<Item = &Key> {
        self.read_set.iter().chain(self.write_set.iter())
    }
}

/// A deterministic Calvin stored procedure.
///
/// `plan` derives the access sets from the arguments; `execute` computes the
/// writes from the gathered read values. Execution must be a pure function of
/// `(args, reads)` — it runs redundantly on every participant partition and
/// all replicas must agree.
pub trait CalvinProgram: Send + Sync {
    /// Declares the read and write sets for the given arguments.
    fn plan(&self, args: &[u8]) -> CalvinPlan;

    /// Computes the writes. `reads` maps every read-set key to its value
    /// (`None` for missing keys); results are appended to `writes`.
    fn execute(
        &self,
        args: &[u8],
        reads: &HashMap<Key, Option<Value>>,
        writes: &mut Vec<(Key, Value)>,
    );

    /// Short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Builds a [`CalvinProgram`] from two closures; see the crate example.
pub fn fn_program<P, E>(plan: P, execute: E) -> FnCalvinProgram<P, E>
where
    P: Fn(&[u8]) -> CalvinPlan + Send + Sync,
    E: Fn(&[u8], &HashMap<Key, Option<Value>>, &mut Vec<(Key, Value)>) + Send + Sync,
{
    FnCalvinProgram { plan, execute }
}

/// Closure-backed [`CalvinProgram`]; see [`fn_program`].
pub struct FnCalvinProgram<P, E> {
    plan: P,
    execute: E,
}

impl<P, E> CalvinProgram for FnCalvinProgram<P, E>
where
    P: Fn(&[u8]) -> CalvinPlan + Send + Sync,
    E: Fn(&[u8], &HashMap<Key, Option<Value>>, &mut Vec<(Key, Value)>) + Send + Sync,
{
    fn plan(&self, args: &[u8]) -> CalvinPlan {
        (self.plan)(args)
    }

    fn execute(
        &self,
        args: &[u8],
        reads: &HashMap<Key, Option<Value>>,
        writes: &mut Vec<(Key, Value)>,
    ) {
        (self.execute)(args, reads, writes)
    }

    fn name(&self) -> &str {
        "fn-calvin-program"
    }
}

/// Registry of Calvin stored procedures, identical on every server.
#[derive(Default)]
pub struct CalvinRegistry {
    programs: HashMap<ProgramId, Arc<dyn CalvinProgram>>,
}

impl CalvinRegistry {
    /// Creates an empty registry.
    pub fn new() -> CalvinRegistry {
        CalvinRegistry::default()
    }

    /// Registers `program` under `id`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids.
    pub fn register(&mut self, id: ProgramId, program: impl CalvinProgram + 'static) {
        let prev = self.programs.insert(id, Arc::new(program));
        assert!(
            prev.is_none(),
            "duplicate calvin program registration for {id}"
        );
    }

    /// Looks up a program.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProgram`] for unregistered ids.
    pub fn get(&self, id: ProgramId) -> Result<&Arc<dyn CalvinProgram>> {
        self.programs.get(&id).ok_or(Error::UnknownProgram(id.0))
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

impl fmt::Debug for CalvinRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalvinRegistry")
            .field("len", &self.programs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_program_round_trips() {
        let p = fn_program(
            |_args| CalvinPlan {
                read_set: vec![Key::from("a")],
                write_set: vec![Key::from("a")],
            },
            |_args, reads, writes| {
                let old = reads[&Key::from("a")]
                    .as_ref()
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                writes.push((Key::from("a"), Value::from_i64(old * 2)));
            },
        );
        let plan = p.plan(b"");
        assert_eq!(plan.read_set.len(), 1);
        let mut reads = HashMap::new();
        reads.insert(Key::from("a"), Some(Value::from_i64(21)));
        let mut writes = Vec::new();
        p.execute(b"", &reads, &mut writes);
        assert_eq!(writes, vec![(Key::from("a"), Value::from_i64(42))]);
    }

    #[test]
    fn registry_rejects_unknown() {
        let reg = CalvinRegistry::new();
        assert!(matches!(
            reg.get(ProgramId(5)),
            Err(Error::UnknownProgram(5))
        ));
    }

    #[test]
    fn plan_all_keys_chains_sets() {
        let plan = CalvinPlan {
            read_set: vec![Key::from("r")],
            write_set: vec![Key::from("w")],
        };
        assert_eq!(plan.all_keys().count(), 2);
    }
}
