//! A re-implementation of Calvin, the deterministic distributed transaction
//! layer the paper compares against (Thomson et al., SIGMOD 2012; Ren et al.,
//! VLDB 2014).
//!
//! Calvin is *partition-level concurrency control*: a sequencing layer
//! batches transaction requests into fixed epochs (20 ms by default, §V-A2 of
//! the ALOHA-DB paper), replicates every batch to every partition, and each
//! partition's *single-threaded lock manager* grants locks strictly in the
//! agreed order, which makes execution deterministic and abort-free. Every
//! participant partition redundantly executes the full stored procedure:
//! it reads its local portion of the read set, broadcasts the values to the
//! other participants, waits for their portions, runs the procedure, and
//! applies only its local writes.
//!
//! The implementation reproduces the design points the ALOHA-DB evaluation
//! measures against:
//!
//! * sequencer batching latency (transactions wait for their batch to seal
//!   and for the merged round to begin),
//! * the single-threaded lock manager bottleneck under contention,
//! * redundant execution and read broadcasts among participants,
//! * no transaction aborts (the open-source Calvin cannot abort, §V-A2).
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use aloha_common::{Key, Value};
//! use calvin::{CalvinCluster, CalvinConfig, CalvinPlan, ProgramId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = CalvinCluster::builder(
//!     CalvinConfig::new(2).with_batch_duration(Duration::from_millis(2)),
//! );
//! builder.register_program(ProgramId(1), calvin::fn_program(
//!     |_args| CalvinPlan {
//!         read_set: vec![Key::from("x")],
//!         write_set: vec![Key::from("x")],
//!     },
//!     |_args, reads, writes| {
//!         let old = reads.get(&Key::from("x")).and_then(|v| v.as_ref()).and_then(|v| v.as_i64()).unwrap_or(0);
//!         writes.push((Key::from("x"), Value::from_i64(old + 1)));
//!     },
//! ));
//! let cluster = builder.start()?;
//! cluster.load(Key::from("x"), Value::from_i64(0));
//! let db = cluster.database();
//! db.execute(ProgramId(1), b"")?.wait()?;
//! assert_eq!(cluster.read(&Key::from("x")).unwrap().as_i64(), Some(1));
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod durability;
pub mod exchange;
pub mod lock;
pub mod msg;
pub mod program;
pub mod server;
pub mod store;

pub use cluster::{
    CalvinCluster, CalvinClusterBuilder, CalvinConfig, CalvinDatabase, CalvinDurability,
    CalvinHandle, CalvinTransportSpec, READ_FENCE_PROGRAM,
};
pub use durability::{CalvinRecoveryReport, CalvinWalRecord};
pub use lock::{LockManager, LockMode};
pub use msg::{CalvinMsg, CalvinTxn, GlobalTxnId};
pub use program::{fn_program, CalvinPlan, CalvinProgram, CalvinRegistry, ProgramId};
pub use server::CalvinHistory;
pub use store::CalvinStore;
