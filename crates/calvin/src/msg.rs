//! Calvin cluster protocol messages.

use std::time::Instant;

use aloha_common::{Key, ServerId, Value};

use crate::program::ProgramId;

/// Globally unique transaction id: the originating sequencer plus its local
/// sequence number. Not the serialization order — that is defined by batch
/// merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalTxnId {
    /// The sequencer (server) the client submitted to.
    pub origin: ServerId,
    /// Monotone per-origin sequence number.
    pub seq: u64,
}

impl std::fmt::Display for GlobalTxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.origin, self.seq)
    }
}

/// A sequenced transaction request.
#[derive(Debug, Clone)]
pub struct CalvinTxn {
    /// Unique id.
    pub id: GlobalTxnId,
    /// The stored procedure to run.
    pub program: ProgramId,
    /// Client argument blob.
    pub args: Vec<u8>,
    /// Submission instant (latency measurement; in-process only).
    pub submitted_at: Instant,
}

/// Messages exchanged between Calvin servers.
///
/// `Clone` so the fault-injection layer can duplicate messages in flight;
/// every receive path tolerates duplicates (batch rounds are keyed by
/// `(from, round)`, read deliveries dedup per peer, completions dedup per
/// participant).
#[derive(Debug, Clone)]
pub enum CalvinMsg {
    /// Sequencer → all schedulers: one sealed batch of a sequencing round.
    /// Every server broadcasts a (possibly empty) batch every round; a
    /// scheduler merges round `round` once it holds batches from all peers.
    Batch {
        /// The originating sequencer.
        from: ServerId,
        /// The sequencing round number.
        round: u64,
        /// The transactions sequenced by `from` in this round.
        txns: Vec<CalvinTxn>,
    },
    /// Participant → participant: local read-set values for a transaction
    /// (the redundant-execution broadcast).
    ReadResults {
        /// The transaction being executed.
        txn: GlobalTxnId,
        /// The broadcasting participant.
        from: ServerId,
        /// Its local read-set values.
        values: Vec<(Key, Option<Value>)>,
    },
    /// Participant → origin: this participant finished the transaction.
    TxnDone {
        /// The finished transaction.
        txn: GlobalTxnId,
        /// The reporting participant.
        from: ServerId,
    },
    /// Stop the dispatcher.
    Shutdown,
}
