//! Property-based model check of the deterministic lock manager: under any
//! interleaving of acquires and releases the granted set is conflict-free,
//! grants are FIFO (no barging), and nothing is lost or leaked.

use std::collections::{HashMap, HashSet, VecDeque};

use aloha_common::Key;
use calvin::{LockManager, LockMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Acquire (txn chosen by index into live set, key index, write?).
    Acquire { key: u8, write: bool },
    /// Release the lock of the oldest holder of the key.
    ReleaseOldest { key: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, any::<bool>()).prop_map(|(key, write)| Op::Acquire { key, write }),
        (0u8..6).prop_map(|key| Op::ReleaseOldest { key }),
    ]
}

/// The reference model: a FIFO queue per key; the granted prefix is either
/// one write at the front or a maximal run of reads.
#[derive(Default)]
struct ModelQueue {
    entries: VecDeque<(u64, LockMode)>,
}

impl ModelQueue {
    fn granted(&self) -> Vec<u64> {
        let mut granted = Vec::new();
        for (i, (txn, mode)) in self.entries.iter().enumerate() {
            match mode {
                LockMode::Write => {
                    if i == 0 {
                        granted.push(*txn);
                    }
                    break;
                }
                LockMode::Read => granted.push(*txn),
            }
        }
        granted
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lock_manager_matches_fifo_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut lm = LockManager::new();
        let mut model: HashMap<u8, ModelQueue> = HashMap::new();
        // Which (txn, key) pairs the lock manager reported as granted.
        let mut granted_now: HashSet<(u64, u8)> = HashSet::new();
        let mut next_txn = 0u64;

        for op in ops {
            match op {
                Op::Acquire { key, write } => {
                    let txn = next_txn;
                    next_txn += 1;
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let k = Key::from_parts(&[b"L", &[key]]);
                    let immediate = lm.acquire(txn, &k, mode);
                    let q = model.entry(key).or_default();
                    let was_granted_before: HashSet<u64> =
                        q.granted().into_iter().collect();
                    q.entries.push_back((txn, mode));
                    let granted_after: HashSet<u64> = q.granted().into_iter().collect();
                    // The model and the implementation agree on whether this
                    // request is granted immediately.
                    prop_assert_eq!(
                        immediate,
                        granted_after.contains(&txn),
                        "grant disagreement for txn {} on key {}", txn, key
                    );
                    if immediate {
                        granted_now.insert((txn, key));
                    }
                    // Nothing previously granted may be revoked by a new request.
                    for g in was_granted_before {
                        prop_assert!(granted_after.contains(&g));
                    }
                }
                Op::ReleaseOldest { key } => {
                    let Some(q) = model.get_mut(&key) else { continue };
                    let Some((txn, _)) = q.entries.front().copied() else { continue };
                    q.entries.pop_front();
                    let k = Key::from_parts(&[b"L", &[key]]);
                    let newly = lm.release(txn, &k);
                    granted_now.remove(&(txn, key));
                    let model_granted: HashSet<u64> = q.granted().into_iter().collect();
                    for g in &newly {
                        prop_assert!(
                            model_granted.contains(g),
                            "impl granted {} which model does not allow", g
                        );
                        granted_now.insert((*g, key));
                    }
                    // Implementation's granted set equals the model's.
                    let impl_granted: HashSet<u64> = granted_now
                        .iter()
                        .filter(|(_, k2)| *k2 == key)
                        .map(|(t, _)| *t)
                        .collect();
                    prop_assert_eq!(&impl_granted, &model_granted);
                }
            }
            // Global conflict-freedom: per key, granted = all reads or one write.
            for (key, q) in &model {
                let granted = q.granted();
                let writes = granted
                    .iter()
                    .filter(|t| {
                        q.entries
                            .iter()
                            .find(|(txn, _)| txn == *t)
                            .is_some_and(|(_, m)| *m == LockMode::Write)
                    })
                    .count();
                prop_assert!(
                    writes == 0 || granted.len() == 1,
                    "key {}: write shares the lock with others", key
                );
            }
        }
    }
}
