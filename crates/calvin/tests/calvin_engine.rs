//! End-to-end Calvin tests: determinism, conflict serialization, redundancy.

use std::collections::HashMap;
use std::time::Duration;

use aloha_common::{Key, Value};
use calvin::{fn_program, CalvinCluster, CalvinConfig, CalvinPlan, ProgramId};

fn fast_config(servers: u16) -> CalvinConfig {
    CalvinConfig::new(servers).with_batch_duration(Duration::from_millis(2))
}

fn keys_on_partition(partition: u16, total: u16, count: usize) -> Vec<Key> {
    (0..)
        .map(|i: u32| Key::from_parts(&[b"ck", &i.to_be_bytes()]))
        .filter(|k| k.partition(total).0 == partition)
        .take(count)
        .collect()
}

/// args = key bytes; increments that key by one.
fn increment_program() -> impl calvin::CalvinProgram {
    fn_program(
        |args| {
            let key = Key::from(args);
            CalvinPlan {
                read_set: vec![key.clone()],
                write_set: vec![key],
            }
        },
        |args, reads, writes| {
            let key = Key::from(args);
            let old = reads
                .get(&key)
                .and_then(|v| v.as_ref())
                .and_then(Value::as_i64)
                .unwrap_or(0);
            writes.push((key, Value::from_i64(old + 1)));
        },
    )
}

/// args = two keys (8 bytes each) + amount; distributed transfer.
fn transfer_program() -> impl calvin::CalvinProgram {
    fn_program(
        |args| {
            let a = Key::from(&args[0..8]);
            let b = Key::from(&args[8..16]);
            CalvinPlan {
                read_set: vec![a.clone(), b.clone()],
                write_set: vec![a, b],
            }
        },
        |args, reads, writes| {
            let a = Key::from(&args[0..8]);
            let b = Key::from(&args[8..16]);
            let amount = i64::from_be_bytes(args[16..24].try_into().unwrap());
            let va = reads[&a].as_ref().and_then(Value::as_i64).unwrap_or(0);
            let vb = reads[&b].as_ref().and_then(Value::as_i64).unwrap_or(0);
            writes.push((a, Value::from_i64(va - amount)));
            writes.push((b, Value::from_i64(vb + amount)));
        },
    )
}

#[test]
fn single_partition_increments_apply_exactly_once() {
    let mut builder = CalvinCluster::builder(fast_config(1));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let key = Key::from("ctr");
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    let handles: Vec<_> = (0..50)
        .map(|_| db.execute(ProgramId(1), key.as_bytes()).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    assert_eq!(cluster.read(&key).unwrap().as_i64(), Some(50));
    cluster.shutdown();
}

#[test]
fn distributed_transfer_conserves_money() {
    let total = 4u16;
    let mut builder = CalvinCluster::builder(fast_config(total));
    builder.register_program(ProgramId(1), transfer_program());
    let cluster = builder.start().unwrap();
    let accounts: Vec<Key> = (0..total)
        .map(|p| keys_on_partition(p, total, 1).remove(0))
        .collect();
    for a in &accounts {
        cluster.load(a.clone(), Value::from_i64(1000));
    }
    let db = cluster.database();
    let mut handles = Vec::new();
    for i in 0..60usize {
        let from = &accounts[i % 4];
        let to = &accounts[(i + 1) % 4];
        let mut args = Vec::new();
        args.extend_from_slice(from.as_bytes());
        args.extend_from_slice(to.as_bytes());
        args.extend_from_slice(&(3i64).to_be_bytes());
        handles.push(db.execute(ProgramId(1), args).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }
    let sum: i64 = accounts
        .iter()
        .map(|a| cluster.read(a).unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(sum, 4000);
    cluster.shutdown();
}

#[test]
fn hot_key_contention_is_serialized_correctly() {
    let total = 2u16;
    let mut builder = CalvinCluster::builder(fast_config(total));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let hot = keys_on_partition(0, total, 1).remove(0);
    cluster.load(hot.clone(), Value::from_i64(0));
    let db = cluster.database();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            let hot = hot.clone();
            std::thread::spawn(move || {
                let handles: Vec<_> = (0..25)
                    .map(|_| db.execute(ProgramId(1), hot.as_bytes()).unwrap())
                    .collect();
                for h in handles {
                    h.wait().unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(cluster.read(&hot).unwrap().as_i64(), Some(100));
    cluster.shutdown();
}

#[test]
fn cross_partition_read_dependency_is_exchanged() {
    // dst := src where src lives on the other partition: requires the
    // read-broadcast between participants.
    let total = 2u16;
    let src = keys_on_partition(0, total, 1).remove(0);
    let dst = keys_on_partition(1, total, 1).remove(0);
    let mut builder = CalvinCluster::builder(fast_config(total));
    let src_p = src.clone();
    let dst_p = dst.clone();
    builder.register_program(
        ProgramId(1),
        fn_program(
            move |_args| CalvinPlan {
                read_set: vec![src_p.clone()],
                write_set: vec![dst_p.clone()],
            },
            {
                let src = src.clone();
                let dst = dst.clone();
                move |_args, reads, writes| {
                    let v = reads[&src].as_ref().and_then(Value::as_i64).unwrap_or(-1);
                    writes.push((dst.clone(), Value::from_i64(v)));
                }
            },
        ),
    );
    let cluster = builder.start().unwrap();
    cluster.load(src, Value::from_i64(777));
    let db = cluster.database();
    db.execute(ProgramId(1), b"").unwrap().wait().unwrap();
    assert_eq!(cluster.read(&dst).unwrap().as_i64(), Some(777));
    cluster.shutdown();
}

#[test]
fn stats_track_latency_and_stage_breakdown() {
    let mut builder = CalvinCluster::builder(fast_config(2));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let key = Key::from("k");
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    for _ in 0..5 {
        db.execute(ProgramId(1), key.as_bytes())
            .unwrap()
            .wait()
            .unwrap();
    }
    let snapshot = cluster.snapshot();
    assert_eq!(snapshot.counter("completed"), Some(5));
    let e2e = snapshot.stage("e2e").expect("e2e rollup");
    assert_eq!(e2e.count, 5);
    assert!(e2e.mean_micros >= 1000.0, "latency includes batch wait");
    let sequencing = snapshot
        .stage("timestamp_grant")
        .expect("sequencing rollup");
    assert!(sequencing.mean_micros > 0.0, "sequencing stage recorded");
    cluster.shutdown();
}

#[test]
fn deterministic_outcome_under_interleaving() {
    // Two clusters fed the same transactions through different sequencers
    // must converge to compatible final sums (determinism within each run).
    for _run in 0..2 {
        let total = 3u16;
        let mut builder = CalvinCluster::builder(fast_config(total));
        builder.register_program(ProgramId(1), transfer_program());
        let cluster = builder.start().unwrap();
        let accounts: Vec<Key> = (0..total)
            .map(|p| keys_on_partition(p, total, 1).remove(0))
            .collect();
        for a in &accounts {
            cluster.load(a.clone(), Value::from_i64(100));
        }
        let db = cluster.database();
        let mut handles = Vec::new();
        for i in 0..30usize {
            let mut args = Vec::new();
            args.extend_from_slice(accounts[i % 3].as_bytes());
            args.extend_from_slice(accounts[(i + 1) % 3].as_bytes());
            args.extend_from_slice(&(1i64).to_be_bytes());
            handles.push(db.execute(ProgramId(1), args).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
        let sum: i64 = accounts
            .iter()
            .map(|a| cluster.read(a).unwrap().as_i64().unwrap())
            .sum();
        assert_eq!(sum, 300);
        cluster.shutdown();
    }
}

#[test]
fn empty_batches_do_not_stall_rounds() {
    // A cluster that only ever receives one transaction must still complete
    // it promptly (empty batches from the other sequencers unblock merging).
    let mut builder = CalvinCluster::builder(fast_config(3));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let key = Key::from("solo");
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    let start = std::time::Instant::now();
    db.execute(ProgramId(1), key.as_bytes())
        .unwrap()
        .wait()
        .unwrap();
    assert!(start.elapsed() < Duration::from_secs(2));
    assert_eq!(cluster.read(&key).unwrap().as_i64(), Some(1));
    cluster.shutdown();
}

#[test]
fn read_modify_write_chains_compose() {
    // f(x) = 2x + 1 applied 8 times must give the exact sequential result.
    let mut builder = CalvinCluster::builder(fast_config(2));
    builder.register_program(
        ProgramId(1),
        fn_program(
            |args| {
                let key = Key::from(args);
                CalvinPlan {
                    read_set: vec![key.clone()],
                    write_set: vec![key],
                }
            },
            |args, reads: &HashMap<Key, Option<Value>>, writes| {
                let key = Key::from(args);
                let old = reads[&key].as_ref().and_then(Value::as_i64).unwrap_or(0);
                writes.push((key, Value::from_i64(2 * old + 1)));
            },
        ),
    );
    let cluster = builder.start().unwrap();
    let key = Key::from("rmw");
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    for _ in 0..8 {
        db.execute(ProgramId(1), key.as_bytes())
            .unwrap()
            .wait()
            .unwrap();
    }
    // x_{n+1} = 2x + 1, x_0 = 0 → x_8 = 2^8 - 1 = 255.
    assert_eq!(cluster.read(&key).unwrap().as_i64(), Some(255));
    cluster.shutdown();
}

#[test]
fn shutdown_under_load_is_clean() {
    let mut builder = CalvinCluster::builder(fast_config(2));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let key = Key::from("load");
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    let worker = std::thread::spawn(move || {
        while let Ok(h) = db.execute(ProgramId(1), key.as_bytes()) {
            if h.wait().is_err() {
                break;
            }
        }
    });
    std::thread::sleep(Duration::from_millis(30));
    cluster.shutdown();
    worker.join().unwrap();
}
