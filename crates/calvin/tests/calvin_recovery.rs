//! Calvin kill-and-restart recovery: the baseline's durable-log parity.
//!
//! Calvin's supported crash model is quiescent (kill between transactions,
//! not with submissions in flight) because its single-version store cannot
//! reconstruct mid-transaction reads — see `CalvinCluster::kill_server`.

use std::time::Duration;

use aloha_common::tempdir::TempDir;
use aloha_common::{Key, ServerId, Value};
use calvin::{fn_program, CalvinCluster, CalvinConfig, CalvinDurability, CalvinPlan, ProgramId};

fn durable_config(servers: u16, dir: &TempDir) -> CalvinConfig {
    CalvinConfig::new(servers)
        .with_batch_duration(Duration::from_millis(2))
        .with_durable_log(CalvinDurability::new(dir.path()))
}

fn keys_on_partition(partition: u16, total: u16, count: usize) -> Vec<Key> {
    (0..)
        .map(|i: u32| Key::from_parts(&[b"cr", &i.to_be_bytes()]))
        .filter(|k| k.partition(total).0 == partition)
        .take(count)
        .collect()
}

/// args = key bytes; increments that key by one (missing key counts as 0).
fn increment_program() -> impl calvin::CalvinProgram {
    fn_program(
        |args| {
            let key = Key::from(args);
            CalvinPlan {
                read_set: vec![key.clone()],
                write_set: vec![key],
            }
        },
        |args, reads, writes| {
            let key = Key::from(args);
            let old = reads
                .get(&key)
                .and_then(|v| v.as_ref())
                .and_then(Value::as_i64)
                .unwrap_or(0);
            writes.push((key, Value::from_i64(old + 1)));
        },
    )
}

/// Runs `count` increments of `key` through `db` and waits for all of them,
/// so the cluster is quiescent when this returns.
fn increment_n(db: &calvin::CalvinDatabase, key: &Key, count: usize) {
    let handles: Vec<_> = (0..count)
        .map(|_| db.execute(ProgramId(1), key.as_bytes()).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
}

#[test]
fn kill_and_restart_recovers_checkpoint_plus_wal_suffix() {
    let dir = TempDir::new("calvin-restart");
    let total = 2u16;
    let mut builder = CalvinCluster::builder(durable_config(total, &dir));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let k0 = keys_on_partition(0, total, 1).remove(0);
    let k1 = keys_on_partition(1, total, 1).remove(0);
    let db = cluster.database();

    // Phase 1: state that ends up inside the checkpoint blob.
    increment_n(&db, &k0, 20);
    increment_n(&db, &k1, 20);
    cluster.checkpoint().unwrap();
    // Phase 2: state that only survives via the WAL suffix.
    increment_n(&db, &k0, 10);
    increment_n(&db, &k1, 10);

    cluster.kill_server(ServerId(0)).unwrap();
    let report = cluster.restart_server(ServerId(0)).unwrap();
    assert!(
        report.checkpoint_round > 0,
        "restored state must include the installed checkpoint: {report:?}"
    );
    assert!(
        report.resume_round >= report.checkpoint_round,
        "sequencer resumes at or past the checkpoint: {report:?}"
    );
    // Partition 0 took 10 post-checkpoint write-backs (phase 2 on k0).
    assert!(
        report.replayed_puts >= 10,
        "WAL suffix replay missing puts: {report:?}"
    );

    // Recovered state equals checkpoint + WAL-suffix replay: all 30
    // increments per key survive the kill.
    assert_eq!(cluster.read(&k0).unwrap().as_i64(), Some(30));
    assert_eq!(cluster.read(&k1).unwrap().as_i64(), Some(30));

    // Liveness: the restarted server sequences and executes new work.
    increment_n(&db, &k0, 10);
    increment_n(&db, &k1, 10);
    assert_eq!(cluster.read(&k0).unwrap().as_i64(), Some(40));
    assert_eq!(cluster.read(&k1).unwrap().as_i64(), Some(40));

    let snapshot = cluster.snapshot();
    let server0 = snapshot.child("server_0").expect("server_0 subtree");
    assert!(
        server0.child("durability").is_some(),
        "durable server exports a durability stats subtree"
    );
    cluster.shutdown();
}

#[test]
fn pinned_submissions_fail_over_while_a_server_is_down() {
    let dir = TempDir::new("calvin-failover");
    let total = 2u16;
    let mut builder = CalvinCluster::builder(durable_config(total, &dir));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let k1 = keys_on_partition(1, total, 1).remove(0);
    let db = cluster.database();
    increment_n(&db, &k1, 5);

    cluster.kill_server(ServerId(0)).unwrap();
    // Pinning the dead sequencer is an explicit error; the round-robin
    // path must skip it rather than submit into a dead batch.
    assert!(matches!(
        db.execute_at(ServerId(0), ProgramId(1), k1.as_bytes()),
        Err(aloha_common::Error::ShuttingDown)
    ));
    for _ in 0..4 {
        // Every round-robin pick lands on the surviving sequencer.
        let h = db.execute(ProgramId(1), k1.as_bytes()).unwrap();
        drop(h); // resolution needs server 0's rounds; only submission is asserted
    }

    cluster.restart_server(ServerId(0)).unwrap();
    increment_n(&db, &k1, 5);
    assert!(cluster.read(&k1).unwrap().as_i64().unwrap() >= 10);
    cluster.shutdown();
}

#[test]
fn cold_restart_replays_wal_without_checkpoint() {
    let dir = TempDir::new("calvin-cold");
    let total = 2u16;
    let k0 = keys_on_partition(0, total, 1).remove(0);
    let k1 = keys_on_partition(1, total, 1).remove(0);
    {
        let mut builder = CalvinCluster::builder(durable_config(total, &dir));
        builder.register_program(ProgramId(1), increment_program());
        let cluster = builder.start().unwrap();
        let db = cluster.database();
        increment_n(&db, &k0, 7);
        increment_n(&db, &k1, 7);
        cluster.shutdown();
    }
    // A brand-new cluster over the same directory rebuilds every partition
    // from Put replay alone (no checkpoint was ever installed).
    let mut builder = CalvinCluster::builder(durable_config(total, &dir));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    assert_eq!(cluster.read(&k0).unwrap().as_i64(), Some(7));
    assert_eq!(cluster.read(&k1).unwrap().as_i64(), Some(7));
    let db = cluster.database();
    increment_n(&db, &k0, 3);
    assert_eq!(cluster.read(&k0).unwrap().as_i64(), Some(10));
    cluster.shutdown();
}

#[test]
fn corrupted_wal_refuses_restart() {
    let dir = TempDir::new("calvin-corrupt");
    let total = 2u16;
    let mut builder = CalvinCluster::builder(durable_config(total, &dir));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    let k0 = keys_on_partition(0, total, 1).remove(0);
    let db = cluster.database();
    increment_n(&db, &k0, 8);
    cluster.kill_server(ServerId(0)).unwrap();

    // Flip a byte in the middle of server 0's first segment: damage a clean
    // crash cannot explain, so recovery must refuse rather than silently
    // resurrect partial state.
    let seg = std::fs::read_dir(dir.path().join("server-0"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .min()
        .expect("at least one wal segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    let err = cluster.restart_server(ServerId(0)).unwrap_err();
    assert!(
        matches!(err, aloha_common::Error::Io(ref msg) if msg.contains("refused")),
        "corruption must refuse recovery, got {err:?}"
    );
    cluster.shutdown();
}

#[test]
fn restart_and_checkpoint_require_durability() {
    let mut builder =
        CalvinCluster::builder(CalvinConfig::new(1).with_batch_duration(Duration::from_millis(2)));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    assert!(matches!(
        cluster.checkpoint(),
        Err(aloha_common::Error::Config(_))
    ));
    cluster.kill_server(ServerId(0)).unwrap();
    assert!(matches!(
        cluster.restart_server(ServerId(0)),
        Err(aloha_common::Error::Config(_))
    ));
    cluster.shutdown();
}

#[test]
fn kill_and_restart_argument_errors() {
    let dir = TempDir::new("calvin-args");
    let mut builder = CalvinCluster::builder(durable_config(1, &dir));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    assert!(matches!(
        cluster.kill_server(ServerId(9)),
        Err(aloha_common::Error::NoSuchPartition(_))
    ));
    assert!(matches!(
        cluster.restart_server(ServerId(9)),
        Err(aloha_common::Error::NoSuchPartition(_))
    ));
    assert!(matches!(
        cluster.restart_server(ServerId(0)),
        Err(aloha_common::Error::Config(_))
    ));
    cluster.kill_server(ServerId(0)).unwrap();
    assert!(matches!(
        cluster.kill_server(ServerId(0)),
        Err(aloha_common::Error::Config(_))
    ));
    cluster.shutdown();
}

#[test]
fn partial_replication_is_not_supported_restart_is_the_only_path() {
    // The ALOHA engine's hot-standby failover has no Calvin counterpart:
    // the baseline advertises that, and a killed server really does stay
    // down until the durable-log restart brings it back.
    let dir = TempDir::new("calvin-no-partial-replication");
    let mut builder = CalvinCluster::builder(durable_config(2, &dir));
    builder.register_program(ProgramId(1), increment_program());
    let cluster = builder.start().unwrap();
    assert!(!cluster.supports_partial_replication());

    let key = keys_on_partition(1, 2, 1).remove(0);
    let db = cluster.database();
    db.execute_wait(ProgramId(1), key.as_bytes().to_vec())
        .unwrap();
    cluster.kill_server(ServerId(1)).unwrap();
    // No standby, no promotion: the slot stays down (killing it again
    // reports "already down") until the durable-log restart.
    assert!(matches!(
        cluster.kill_server(ServerId(1)),
        Err(aloha_common::Error::Config(_))
    ));
    cluster.restart_server(ServerId(1)).unwrap();
    assert_eq!(
        cluster.read(&key),
        Some(Value::from(1u64.to_be_bytes().as_slice()))
    );
    cluster.shutdown();
}
