//! Shared cluster-lifecycle helpers for the figure binaries, plus the
//! machine-readable `BENCH_<figure>.json` report writer.

use std::path::{Path, PathBuf};
use std::time::Duration;

use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::Json;
use aloha_core::{Cluster, ClusterConfig};
use aloha_workloads::driver::{run_windowed, DriverConfig, DriverReport};
use aloha_workloads::tpcc::{self, TpccConfig, TxnMix};
use aloha_workloads::ycsb::{self, YcsbConfig};
use calvin::{CalvinCluster, CalvinConfig};

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// Paper-scale sweep (more points, longer durations).
    pub full: bool,
    /// Cluster size override.
    pub servers: Option<u16>,
    /// Per-point measured duration override.
    pub seconds: Option<f64>,
    /// Destination override for the JSON report (default `BENCH_<figure>.json`).
    pub json: Option<PathBuf>,
}

/// What [`BenchOpts::parse_from`] found on the command line.
#[derive(Debug, Clone)]
pub enum ParseOutcome {
    /// Valid options: run the benchmark.
    Run(BenchOpts),
    /// `--help` / `-h` was given: print [`BenchOpts::usage`] and exit.
    Help,
}

impl BenchOpts {
    /// The usage text shared by every figure binary.
    pub fn usage() -> &'static str {
        "usage: <figure-binary> [OPTIONS]\n\
         \n\
         options:\n\
         \x20 --full           paper-scale sweep (more points, longer durations)\n\
         \x20 --servers N      override the cluster size\n\
         \x20 --seconds S      override the measured duration per point\n\
         \x20 --json PATH      write the JSON report to PATH (default BENCH_<figure>.json)\n\
         \x20 -h, --help       print this help"
    }

    /// Parses the common flags from an iterator of arguments (without the
    /// program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// and unparsable numbers; never panics.
    ///
    /// # Examples
    ///
    /// ```
    /// use aloha_bench::harness::{BenchOpts, ParseOutcome};
    /// let out = BenchOpts::parse_from(["--servers".into(), "2".into()]).unwrap();
    /// let ParseOutcome::Run(opts) = out else { panic!("not help") };
    /// assert_eq!(opts.servers, Some(2));
    /// assert!(BenchOpts::parse_from(["--servers".into()]).is_err());
    /// ```
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<ParseOutcome, String> {
        let mut opts = BenchOpts::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "-h" | "--help" => return Ok(ParseOutcome::Help),
                "--full" => opts.full = true,
                "--servers" => {
                    let v = args.next().ok_or("--servers needs a value")?;
                    opts.servers = Some(
                        v.parse()
                            .map_err(|_| format!("--servers must be a number, got '{v}'"))?,
                    );
                }
                "--seconds" => {
                    let v = args.next().ok_or("--seconds needs a value")?;
                    let s: f64 = v
                        .parse()
                        .map_err(|_| format!("--seconds must be a number, got '{v}'"))?;
                    if !s.is_finite() || s <= 0.0 {
                        return Err(format!("--seconds must be positive, got '{v}'"));
                    }
                    opts.seconds = Some(s);
                }
                "--json" => {
                    let v = args.next().ok_or("--json needs a path")?;
                    opts.json = Some(PathBuf::from(v));
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(ParseOutcome::Run(opts))
    }

    /// Parses `std::env::args`, printing usage and exiting the process on
    /// `--help` (status 0) or a malformed command line (status 2).
    pub fn parse() -> BenchOpts {
        match BenchOpts::parse_from(std::env::args().skip(1)) {
            Ok(ParseOutcome::Run(opts)) => opts,
            Ok(ParseOutcome::Help) => {
                println!("{}", BenchOpts::usage());
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", BenchOpts::usage());
                std::process::exit(2);
            }
        }
    }

    /// Default cluster size: 4 quick, 8 full (the paper's default host count).
    pub fn servers(&self) -> u16 {
        self.servers.unwrap_or(if self.full { 8 } else { 4 })
    }

    /// Measured duration per point.
    pub fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.seconds.unwrap_or(if self.full { 5.0 } else { 1.5 }))
    }

    /// Warm-up duration per point.
    pub fn warmup(&self) -> Duration {
        if self.full {
            Duration::from_secs(2)
        } else {
            Duration::from_millis(500)
        }
    }

    /// A driver configuration for the given offered load.
    pub fn driver(&self, threads: usize, window: usize) -> DriverConfig {
        DriverConfig {
            threads,
            window,
            duration: self.duration(),
            warmup: self.warmup(),
            seed: 0x000A_104A,
            pacing: None,
        }
    }
}

/// One measured point: driver-side aggregates plus the engine's full
/// [`StatsSnapshot`] (per-stage percentiles, per-server subtrees).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Throughput in kilo-transactions per second.
    pub tput_ktps: f64,
    /// Mean end-to-end latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median end-to-end latency in milliseconds.
    pub p50_latency_ms: f64,
    /// p99 latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// The engine's stats tree at the end of the measured window.
    pub snapshot: StatsSnapshot,
}

impl RunResult {
    /// Combines a driver report with the engine's end-of-run snapshot.
    pub fn from_parts(report: &DriverReport, snapshot: StatsSnapshot) -> RunResult {
        RunResult {
            tput_ktps: report.throughput_tps() / 1_000.0,
            mean_latency_ms: report.mean_latency_micros / 1_000.0,
            p50_latency_ms: report.p50_latency_micros as f64 / 1_000.0,
            p99_latency_ms: report.p99_latency_micros as f64 / 1_000.0,
            committed: report.committed,
            aborted: report.aborted,
            snapshot,
        }
    }

    /// Root-level stage rollup by schema name (e.g. `"transform"`, `"e2e"`).
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.snapshot.stage(name)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("tput_ktps", Json::from(self.tput_ktps)),
            ("mean_latency_ms", Json::from(self.mean_latency_ms)),
            ("p50_latency_ms", Json::from(self.p50_latency_ms)),
            ("p99_latency_ms", Json::from(self.p99_latency_ms)),
            ("committed", Json::from(self.committed)),
            ("aborted", Json::from(self.aborted)),
            ("snapshot", self.snapshot.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<RunResult, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("run result missing numeric field '{k}'"))
        };
        Ok(RunResult {
            tput_ktps: num("tput_ktps")?,
            mean_latency_ms: num("mean_latency_ms")?,
            p50_latency_ms: num("p50_latency_ms")?,
            p99_latency_ms: num("p99_latency_ms")?,
            committed: num("committed")? as u64,
            aborted: num("aborted")? as u64,
            snapshot: StatsSnapshot::from_json(
                v.get("snapshot").ok_or("run result missing 'snapshot'")?,
            )?,
        })
    }
}

/// One labeled row of a figure (e.g. `"Aloha,1W,threads=4"`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Which series/point this row measures.
    pub label: String,
    /// The measurement.
    pub result: RunResult,
}

/// A machine-readable benchmark report, written as `BENCH_<figure>.json`.
///
/// # Examples
///
/// ```
/// use aloha_bench::harness::BenchReport;
/// let report = BenchReport::new("smoke", 2, 1.0);
/// let text = report.to_json().to_string();
/// let back = BenchReport::from_json_text(&text).unwrap();
/// assert_eq!(back, report);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Figure identifier (`"fig6"`, `"smoke"`, ...).
    pub figure: String,
    /// Cluster size used for the runs.
    pub servers: u16,
    /// Measured seconds per point.
    pub seconds: f64,
    /// The measured rows, in print order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for `figure`.
    pub fn new(figure: impl Into<String>, servers: u16, seconds: f64) -> BenchReport {
        BenchReport {
            figure: figure.into(),
            servers,
            seconds,
            rows: Vec::new(),
        }
    }

    /// Appends a labeled measurement.
    pub fn push(&mut self, label: impl Into<String>, result: RunResult) {
        self.rows.push(BenchRow {
            label: label.into(),
            result,
        });
    }

    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::from(self.figure.as_str())),
            ("servers", Json::from(u64::from(self.servers))),
            ("seconds", Json::from(self.seconds)),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| {
                            Json::obj([
                                ("label", Json::from(row.label.as_str())),
                                ("result", row.result.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstructs a report from its JSON form.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<BenchReport, String> {
        let figure = v
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("report missing 'figure'")?
            .to_string();
        let servers = v
            .get("servers")
            .and_then(Json::as_u64)
            .ok_or("report missing 'servers'")? as u16;
        let seconds = v
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or("report missing 'seconds'")?;
        let mut rows = Vec::new();
        for row in v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("report missing 'rows'")?
        {
            let label = row
                .get("label")
                .and_then(Json::as_str)
                .ok_or("row missing 'label'")?
                .to_string();
            let result = RunResult::from_json(row.get("result").ok_or("row missing 'result'")?)?;
            rows.push(BenchRow { label, result });
        }
        Ok(BenchReport {
            figure,
            servers,
            seconds,
            rows,
        })
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// As [`BenchReport::from_json`], plus JSON syntax errors.
    pub fn from_json_text(text: &str) -> Result<BenchReport, String> {
        BenchReport::from_json(&Json::parse(text)?)
    }

    /// Serializes to `path`, verifying the emitted text re-parses to an
    /// identical report before writing.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an emit/parse mismatch (a serializer bug)
    /// surfaces as [`std::io::ErrorKind::InvalidData`].
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let text = self.to_json().to_string();
        let reparsed = BenchReport::from_json_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if &reparsed != self {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "report did not survive a JSON round trip",
            ));
        }
        std::fs::write(path, text)
    }

    /// Writes the report to `--json PATH` when given, else
    /// `BENCH_<figure>.json` in the working directory, and prints where.
    ///
    /// # Errors
    ///
    /// As [`BenchReport::write`].
    pub fn emit(&self, opts: &BenchOpts) -> std::io::Result<PathBuf> {
        let path = opts
            .json
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", self.figure)));
        self.write(&path)?;
        println!("# wrote {}", path.display());
        Ok(path)
    }
}

/// Builds, loads, drives and tears down an ALOHA-DB TPC-C cluster.
pub fn aloha_tpcc_run(
    cfg: &TpccConfig,
    epoch: Duration,
    mix: TxnMix,
    with_aborts: bool,
    driver: &DriverConfig,
) -> RunResult {
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions)
            .with_epoch_duration(epoch)
            .with_processors(2),
    );
    tpcc::aloha::install(&mut builder, cfg);
    let cluster = builder.start().expect("start aloha cluster");
    tpcc::aloha::load(&cluster, cfg);
    let target = tpcc::aloha::AlohaTpcc::new(cluster.database(), cfg.clone(), mix, with_aborts);
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let result = RunResult::from_parts(&report, cluster.snapshot());
    cluster.shutdown();
    result
}

/// Builds, loads, drives and tears down a Calvin TPC-C cluster.
pub fn calvin_tpcc_run(
    cfg: &TpccConfig,
    batch: Duration,
    mix: TxnMix,
    driver: &DriverConfig,
) -> RunResult {
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions)
            .with_batch_duration(batch)
            .with_workers(2),
    );
    tpcc::calvin_impl::install(&mut builder, cfg);
    let cluster = builder.start().expect("start calvin cluster");
    tpcc::calvin_impl::load(&cluster, cfg);
    let target = tpcc::calvin_impl::CalvinTpcc::new(cluster.database(), cfg.clone(), mix);
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let result = RunResult::from_parts(&report, cluster.snapshot());
    cluster.shutdown();
    result
}

/// Builds, loads, drives and tears down an ALOHA-DB microbenchmark cluster.
pub fn aloha_ycsb_run(cfg: &YcsbConfig, epoch: Duration, driver: &DriverConfig) -> RunResult {
    aloha_ycsb_run_tuned(cfg, epoch, driver, |c| c)
}

/// [`aloha_ycsb_run`] with a hook over the cluster configuration, for
/// ablations that toggle one knob (compaction, GC, batching) while keeping
/// the workload and epoch schedule identical.
pub fn aloha_ycsb_run_tuned(
    cfg: &YcsbConfig,
    epoch: Duration,
    driver: &DriverConfig,
    tune: impl FnOnce(ClusterConfig) -> ClusterConfig,
) -> RunResult {
    let mut builder = Cluster::builder(tune(
        ClusterConfig::new(cfg.partitions)
            .with_epoch_duration(epoch)
            .with_processors(2),
    ));
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().expect("start aloha cluster");
    ycsb::load_aloha(&cluster, cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let result = RunResult::from_parts(&report, cluster.snapshot());
    cluster.shutdown();
    result
}

/// Builds, loads, drives and tears down a Calvin microbenchmark cluster.
pub fn calvin_ycsb_run(cfg: &YcsbConfig, batch: Duration, driver: &DriverConfig) -> RunResult {
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions)
            .with_batch_duration(batch)
            .with_workers(2),
    );
    ycsb::install_calvin(&mut builder);
    let cluster = builder.start().expect("start calvin cluster");
    ycsb::load_calvin(&cluster, cfg);
    let target = ycsb::CalvinYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let result = RunResult::from_parts(&report, cluster.snapshot());
    cluster.shutdown();
    result
}

/// The paper's epoch duration for ALOHA-DB (§V-A2).
pub const ALOHA_EPOCH: Duration = Duration::from_millis(25);
/// The paper's sequencer batch duration for Calvin (§V-A2).
pub const CALVIN_BATCH: Duration = Duration::from_millis(20);

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(args: &[&str]) -> Result<ParseOutcome, String> {
        BenchOpts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_accepts_all_flags() {
        let out = parsed(&[
            "--full",
            "--servers",
            "3",
            "--seconds",
            "0.5",
            "--json",
            "x.json",
        ])
        .unwrap();
        let ParseOutcome::Run(opts) = out else {
            panic!("expected options")
        };
        assert!(opts.full);
        assert_eq!(opts.servers, Some(3));
        assert_eq!(opts.seconds, Some(0.5));
        assert_eq!(opts.json.as_deref(), Some(Path::new("x.json")));
    }

    #[test]
    fn parse_reports_errors_instead_of_panicking() {
        assert!(parsed(&["--servers"]).is_err());
        assert!(parsed(&["--servers", "many"]).is_err());
        assert!(parsed(&["--seconds", "-1"]).is_err());
        assert!(parsed(&["--frobnicate"]).is_err());
        assert!(matches!(parsed(&["--help"]), Ok(ParseOutcome::Help)));
        assert!(matches!(parsed(&["-h"]), Ok(ParseOutcome::Help)));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("figX", 2, 1.5);
        let mut snapshot = StatsSnapshot::new("cluster");
        snapshot.set_counter("committed", 10);
        report.push(
            "Aloha,1W",
            RunResult {
                tput_ktps: 12.5,
                mean_latency_ms: 3.0,
                p50_latency_ms: 2.5,
                p99_latency_ms: 9.0,
                committed: 10,
                aborted: 1,
                snapshot,
            },
        );
        let text = report.to_json().to_string();
        let back = BenchReport::from_json_text(&text).unwrap();
        assert_eq!(back, report);
        assert!(BenchReport::from_json_text("{\"figure\":\"x\"}").is_err());
    }
}
