//! Shared cluster-lifecycle helpers for the figure binaries.

use std::time::Duration;

use aloha_core::{Cluster, ClusterConfig};
use aloha_workloads::driver::{run_windowed, DriverConfig};
use aloha_workloads::tpcc::{self, TpccConfig, TxnMix};
use aloha_workloads::ycsb::{self, YcsbConfig};
use calvin::{CalvinCluster, CalvinConfig};

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Paper-scale sweep (more points, longer durations).
    pub full: bool,
    /// Cluster size override.
    pub servers: Option<u16>,
    /// Per-point measured duration override.
    pub seconds: Option<f64>,
}

impl BenchOpts {
    /// Parses the common flags from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> BenchOpts {
        let mut opts = BenchOpts {
            full: false,
            servers: None,
            seconds: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--servers" => {
                    let v = args.next().expect("--servers needs a value");
                    opts.servers = Some(v.parse().expect("--servers must be a number"));
                }
                "--seconds" => {
                    let v = args.next().expect("--seconds needs a value");
                    opts.seconds = Some(v.parse().expect("--seconds must be a number"));
                }
                other => {
                    panic!("unknown argument {other}; supported: --full --servers N --seconds S")
                }
            }
        }
        opts
    }

    /// Default cluster size: 4 quick, 8 full (the paper's default host count).
    pub fn servers(&self) -> u16 {
        self.servers.unwrap_or(if self.full { 8 } else { 4 })
    }

    /// Measured duration per point.
    pub fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.seconds.unwrap_or(if self.full { 5.0 } else { 1.5 }))
    }

    /// Warm-up duration per point.
    pub fn warmup(&self) -> Duration {
        if self.full {
            Duration::from_secs(2)
        } else {
            Duration::from_millis(500)
        }
    }

    /// A driver configuration for the given offered load.
    pub fn driver(&self, threads: usize, window: usize) -> DriverConfig {
        DriverConfig {
            threads,
            window,
            duration: self.duration(),
            warmup: self.warmup(),
            seed: 0x000A_104A,
            pacing: None,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Throughput in kilo-transactions per second.
    pub tput_ktps: f64,
    /// Mean end-to-end latency in milliseconds.
    pub mean_latency_ms: f64,
    /// p99 latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Mean per-stage latencies in microseconds (system-specific stages).
    pub stage_means_micros: [f64; 3],
}

impl RunResult {
    fn from_parts(
        report: &aloha_workloads::driver::DriverReport,
        stage_means_micros: [f64; 3],
    ) -> RunResult {
        RunResult {
            tput_ktps: report.throughput_tps() / 1_000.0,
            mean_latency_ms: report.mean_latency_micros / 1_000.0,
            p99_latency_ms: report.p99_latency_micros as f64 / 1_000.0,
            committed: report.committed,
            aborted: report.aborted,
            stage_means_micros,
        }
    }
}

/// Builds, loads, drives and tears down an ALOHA-DB TPC-C cluster.
pub fn aloha_tpcc_run(
    cfg: &TpccConfig,
    epoch: Duration,
    mix: TxnMix,
    with_aborts: bool,
    driver: &DriverConfig,
) -> RunResult {
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions)
            .with_epoch_duration(epoch)
            .with_processors(2),
    );
    tpcc::aloha::install(&mut builder, cfg);
    let cluster = builder.start().expect("start aloha cluster");
    tpcc::aloha::load(&cluster, cfg);
    let target = tpcc::aloha::AlohaTpcc::new(cluster.database(), cfg.clone(), mix, with_aborts);
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let stats = cluster.stats();
    let result = RunResult::from_parts(&report, stats.stage_means_micros);
    cluster.shutdown();
    result
}

/// Builds, loads, drives and tears down a Calvin TPC-C cluster.
pub fn calvin_tpcc_run(
    cfg: &TpccConfig,
    batch: Duration,
    mix: TxnMix,
    driver: &DriverConfig,
) -> RunResult {
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions)
            .with_batch_duration(batch)
            .with_workers(2),
    );
    tpcc::calvin_impl::install(&mut builder, cfg);
    let cluster = builder.start().expect("start calvin cluster");
    tpcc::calvin_impl::load(&cluster, cfg);
    let target = tpcc::calvin_impl::CalvinTpcc::new(cluster.database(), cfg.clone(), mix);
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let stats = cluster.stats();
    let result = RunResult::from_parts(&report, stats.stage_means_micros);
    cluster.shutdown();
    result
}

/// Builds, loads, drives and tears down an ALOHA-DB microbenchmark cluster.
pub fn aloha_ycsb_run(cfg: &YcsbConfig, epoch: Duration, driver: &DriverConfig) -> RunResult {
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions)
            .with_epoch_duration(epoch)
            .with_processors(2),
    );
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().expect("start aloha cluster");
    ycsb::load_aloha(&cluster, cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let stats = cluster.stats();
    let result = RunResult::from_parts(&report, stats.stage_means_micros);
    cluster.shutdown();
    result
}

/// Builds, loads, drives and tears down a Calvin microbenchmark cluster.
pub fn calvin_ycsb_run(cfg: &YcsbConfig, batch: Duration, driver: &DriverConfig) -> RunResult {
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions)
            .with_batch_duration(batch)
            .with_workers(2),
    );
    ycsb::install_calvin(&mut builder);
    let cluster = builder.start().expect("start calvin cluster");
    ycsb::load_calvin(&cluster, cfg);
    let target = ycsb::CalvinYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, driver);
    let stats = cluster.stats();
    let result = RunResult::from_parts(&report, stats.stage_means_micros);
    cluster.shutdown();
    result
}

/// The paper's epoch duration for ALOHA-DB (§V-A2).
pub const ALOHA_EPOCH: Duration = Duration::from_millis(25);
/// The paper's sequencer batch duration for Calvin (§V-A2).
pub const CALVIN_BATCH: Duration = Duration::from_millis(20);
