//! Figure 9: microbenchmark throughput vs. contention index.
//!
//! YCSB-like read-modify-write transactions (10 keys, 2 partitions, one hot
//! key per participant). Paper expectation: Calvin holds its peak until
//! CI ≈ 0.0017 (600 hot keys) then collapses as the single-threaded lock
//! manager serializes on hot keys; ALOHA-DB stays nearly flat all the way to
//! CI = 0.1 because its key-level functors never wait on locks.

use aloha_bench::harness::{aloha_ycsb_run, calvin_ycsb_run, ALOHA_EPOCH, CALVIN_BATCH};
use aloha_bench::{BenchOpts, BenchReport};
use aloha_workloads::ycsb::YcsbConfig;

fn main() {
    let opts = BenchOpts::parse();
    let n = opts.servers();
    let cis: &[f64] = if opts.full {
        &[0.0001, 0.0005, 0.001, 0.0017, 0.005, 0.01, 0.05, 0.1]
    } else {
        &[0.0001, 0.001, 0.01, 0.1]
    };
    let keys_per_partition = if opts.full { 1_000_000 } else { 100_000 };
    let driver = opts.driver((2 * n as usize).max(16), 128);

    println!("# Figure 9: microbenchmark throughput vs contention index, {n} servers");
    println!("system,contention_index,hot_keys,tput_ktps,mean_ms");
    let mut report = BenchReport::new("fig9", n, opts.duration().as_secs_f64());
    for &ci in cis {
        let cfg =
            YcsbConfig::with_contention_index(n, ci).with_keys_per_partition(keys_per_partition);
        let r = aloha_ycsb_run(&cfg, ALOHA_EPOCH, &driver);
        println!(
            "Aloha,{ci},{},{:.2},{:.2}",
            cfg.hot_keys, r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Aloha,{ci}"), r);
    }
    for &ci in cis {
        let cfg =
            YcsbConfig::with_contention_index(n, ci).with_keys_per_partition(keys_per_partition);
        let r = calvin_ycsb_run(&cfg, CALVIN_BATCH, &driver);
        println!(
            "Calvin,{ci},{},{:.2},{:.2}",
            cfg.hot_keys, r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Calvin,{ci}"), r);
    }
    report.emit(&opts).expect("write fig9 report");
}
