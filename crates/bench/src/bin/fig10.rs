//! Figure 10: latency breakdown by transaction lifecycle stage, under low
//! (CI = 0.0001) and high (CI = 0.1) contention at light load.
//!
//! ALOHA-DB stages: functor installing / waiting for processing /
//! processing. Calvin stages: sequencing / locking and read / processing.
//! Paper expectation: in both systems the processing stage is smallest and
//! most time is spent completing the epoch (waiting / sequencing); Calvin's
//! locking share grows under high contention while ALOHA-DB's profile stays
//! unchanged.

use aloha_bench::harness::{aloha_ycsb_run, calvin_ycsb_run, ALOHA_EPOCH, CALVIN_BATCH};
use aloha_bench::BenchOpts;
use aloha_workloads::ycsb::YcsbConfig;

fn main() {
    let opts = BenchOpts::parse();
    let n = opts.servers();
    // Light load: a small fraction of peak (paper uses 5 %).
    let driver = opts.driver(1, 4);
    let keys = if opts.full { 1_000_000 } else { 100_000 };

    println!("# Figure 10: latency breakdown by stage, light load, {n} servers");
    println!("system,contention_index,stage,mean_micros,fraction");
    for &ci in &[0.0001f64, 0.1] {
        let cfg = YcsbConfig::with_contention_index(n, ci).with_keys_per_partition(keys);
        let r = aloha_ycsb_run(&cfg, ALOHA_EPOCH, &driver);
        let total: f64 = r.stage_means_micros.iter().sum();
        for (name, mean) in ["install", "wait", "process"]
            .iter()
            .zip(r.stage_means_micros)
        {
            let fraction = if total > 0.0 { mean / total } else { 0.0 };
            println!("Aloha,{ci},{name},{mean:.1},{fraction:.3}");
        }
    }
    for &ci in &[0.0001f64, 0.1] {
        let cfg = YcsbConfig::with_contention_index(n, ci).with_keys_per_partition(keys);
        let r = calvin_ycsb_run(&cfg, CALVIN_BATCH, &driver);
        let total: f64 = r.stage_means_micros.iter().sum();
        for (name, mean) in ["sequencing", "lock+read", "process"]
            .iter()
            .zip(r.stage_means_micros)
        {
            let fraction = if total > 0.0 { mean / total } else { 0.0 };
            println!("Calvin,{ci},{name},{mean:.1},{fraction:.3}");
        }
    }
}
