//! Figure 10: latency breakdown by transaction lifecycle stage, under low
//! (CI = 0.0001) and high (CI = 0.1) contention at light load.
//!
//! Both engines report the same six-stage schema (transform / timestamp
//! grant / functor install / epoch close / functor computing / commit; the
//! Calvin analogues are documented on its stats type). Paper expectation:
//! in both systems the processing stage is smallest and most time is spent
//! completing the epoch (waiting / sequencing); Calvin's lock-wait share
//! (functor_install) grows under high contention while ALOHA-DB's profile
//! stays unchanged.

use aloha_bench::harness::{aloha_ycsb_run, calvin_ycsb_run, ALOHA_EPOCH, CALVIN_BATCH};
use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_common::metrics::Stage;
use aloha_workloads::ycsb::YcsbConfig;

fn print_breakdown(system: &str, ci: f64, r: &RunResult) {
    let means: Vec<(&str, f64)> = Stage::ALL
        .iter()
        .map(|s| {
            (
                s.name(),
                r.stage(s.name()).map_or(0.0, |stats| stats.mean_micros),
            )
        })
        .collect();
    let total: f64 = means.iter().map(|(_, m)| m).sum();
    for (name, mean) in means {
        let fraction = if total > 0.0 { mean / total } else { 0.0 };
        let p99 = r.stage(name).map_or(0, |stats| stats.p99_micros);
        println!("{system},{ci},{name},{mean:.1},{fraction:.3},{p99}");
    }
}

fn main() {
    let opts = BenchOpts::parse();
    let n = opts.servers();
    // Light load: a small fraction of peak (paper uses 5 %).
    let driver = opts.driver(1, 4);
    let keys = if opts.full { 1_000_000 } else { 100_000 };

    println!("# Figure 10: latency breakdown by stage, light load, {n} servers");
    println!("system,contention_index,stage,mean_micros,fraction,p99_micros");
    let mut report = BenchReport::new("fig10", n, opts.duration().as_secs_f64());
    for &ci in &[0.0001f64, 0.1] {
        let cfg = YcsbConfig::with_contention_index(n, ci).with_keys_per_partition(keys);
        let r = aloha_ycsb_run(&cfg, ALOHA_EPOCH, &driver);
        print_breakdown("Aloha", ci, &r);
        report.push(format!("Aloha,{ci}"), r);
    }
    for &ci in &[0.0001f64, 0.1] {
        let cfg = YcsbConfig::with_contention_index(n, ci).with_keys_per_partition(keys);
        let r = calvin_ycsb_run(&cfg, CALVIN_BATCH, &driver);
        print_breakdown("Calvin", ci, &r);
        report.push(format!("Calvin,{ci}"), r);
    }
    report.emit(&opts).expect("write fig10 report");
}
