//! Ablation of the transport: the simulated in-process bus against real
//! TCP over loopback.
//!
//! Both rows run the identical YCSB workload and epoch schedule; the only
//! difference is every inter-node message's path. `simulated` delivers
//! through the in-process [`aloha_net::Bus`] (crossbeam channels, optional
//! modelled latency — here zero). `tcp-loopback` builds one
//! [`aloha_net::TcpTransport`] per node inside this process, cross-wired
//! over 127.0.0.1, so every cross-partition RPC pays real socket syscalls,
//! wire encoding and kernel scheduling. The gap between the rows is the
//! serialization + syscall tax a real deployment adds on top of the
//! simulated numbers in the other figures.

use aloha_bench::harness::ALOHA_EPOCH;
use aloha_bench::multiproc::tcp_ycsb_run;
use aloha_bench::{aloha_ycsb_run, BenchOpts, BenchReport, RunResult};
use aloha_workloads::ycsb::YcsbConfig;

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    println!("# Ablation: transport, {servers} servers, YCSB low contention");
    println!("transport,tput_ktps,mean_ms,p99_ms");
    let mut report = BenchReport::new("ablation_transport", servers, opts.duration().as_secs_f64());
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(20_000);
    let driver = opts.driver(8, 64);

    let emit = |name: &str, r: &RunResult| {
        println!(
            "{name},{:.2},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms, r.p99_latency_ms,
        );
    };

    let simulated = aloha_ycsb_run(&cfg, ALOHA_EPOCH, &driver);
    emit("simulated", &simulated);
    report.push("simulated", simulated);

    let tcp = tcp_ycsb_run(&cfg, ALOHA_EPOCH, &driver);
    emit("tcp-loopback", &tcp);
    report.push("tcp-loopback", tcp);

    report.emit(&opts).expect("write ablation_transport report");
}
