//! Ablation of the hot-path memory model: watermark-driven chain compaction
//! {off, on} crossed with the transport {simulated bus, TCP loopback}.
//!
//! All four cells run the identical YCSB workload and epoch schedule. The
//! compaction axis toggles the background sweeper that folds committed
//! history below each key's value watermark into a single materialized base
//! record (`keep_versions = 1`, swept every few epochs). The transport axis
//! re-uses the `ablation_transport` deployment pair, so the zero-copy wire
//! decode path (frames handed off as shared `Bytes`, keys/values decoded as
//! windows of the frame) is exercised by the TCP rows.
//!
//! Besides throughput and the functor-computing stage percentiles, each row
//! reports the memory footprint out of the run's final stats snapshot: the
//! per-partition record counts from the `memory` subtree (live `Arc`-tail
//! records, packed settled records, records folded away) and the process
//! resident set. With compaction off, live + settled grows with every write
//! for the whole run; with compaction on, chains stay near `keep_versions`
//! and the fold counter absorbs the rest — that boundedness (at a modest,
//! sweep-interval-tunable throughput cost) is the claim under test.
//!
//! The quick shape is CI-sized. `--full --servers 64` approaches the
//! paper-scale shape (64 partitions x 156,250 keys = 10 M keys).

use aloha_bench::harness::ALOHA_EPOCH;
use aloha_bench::multiproc::{tcp_ycsb_run, tcp_ycsb_run_tuned};
use aloha_bench::{aloha_ycsb_run, aloha_ycsb_run_tuned, BenchOpts, BenchReport, RunResult};
use aloha_common::stats::StatsSnapshot;
use aloha_workloads::ycsb::YcsbConfig;

/// Committed versions retained per chain when compaction is on.
const KEEP_VERSIONS: usize = 1;

/// Sweep every few epochs, not every epoch: a full-store sweep takes each
/// chain's write lock, so the interval trades peak memory (a few epochs of
/// settled history) against lock/CPU interference with the compute path.
const SWEEP_EPOCHS: u32 = 4;

/// Record counts summed over every `memory` subtree in a snapshot (all
/// partitions for the in-process cluster; node 0's partition for the TCP
/// deployment, whose snapshot is node-local).
#[derive(Default)]
struct MemTotals {
    partitions: u64,
    live: u64,
    settled: u64,
    compacted: u64,
}

impl MemTotals {
    fn collect(node: &StatsSnapshot, into: &mut MemTotals) {
        if node.name == "memory" {
            into.partitions += 1;
            into.live += node.counter("live_records").unwrap_or(0);
            into.settled += node.counter("settled_records").unwrap_or(0);
            into.compacted += node.counter("compacted_records").unwrap_or(0);
        }
        for child in &node.children {
            MemTotals::collect(child, into);
        }
    }

    fn of(snapshot: &StatsSnapshot) -> MemTotals {
        let mut totals = MemTotals::default();
        MemTotals::collect(snapshot, &mut totals);
        totals
    }
}

fn emit(name: &str, r: &RunResult) {
    let mem = MemTotals::of(&r.snapshot);
    let fc = r.stage("functor_computing").copied().unwrap_or_default();
    let rss_mb = r.snapshot.gauge("process_rss_bytes").unwrap_or(0) as f64 / (1024.0 * 1024.0);
    println!(
        "{name},{:.2},{:.3},{:.3},{},{},{},{},{:.1}",
        r.tput_ktps,
        fc.p50_micros as f64 / 1000.0,
        fc.p99_micros as f64 / 1000.0,
        mem.partitions,
        mem.live,
        mem.settled,
        mem.compacted,
        rss_mb,
    );
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    // Quick: CI-sized key space. Full: 156,250 keys/partition, so
    // `--full --servers 64` is the 10 M-key paper shape.
    let keys_per_partition: u32 = if opts.full { 156_250 } else { 20_000 };
    println!(
        "# Ablation: memory model, {servers} servers, {keys_per_partition} keys/partition, \
         YCSB low contention, keep_versions={KEEP_VERSIONS}"
    );
    println!(
        "config,tput_ktps,fc_p50_ms,fc_p99_ms,mem_partitions,live_records,settled_records,\
         compacted_records,rss_mb"
    );
    let mut report = BenchReport::new("ablation_memory", servers, opts.duration().as_secs_f64());
    let cfg = YcsbConfig::with_contention_index(servers, 0.01)
        .with_keys_per_partition(keys_per_partition);
    let driver = opts.driver(8, 64);

    let mut run = |name: &str, result: RunResult| {
        emit(name, &result);
        report.push(name, result);
    };

    run(
        "simulated/compaction-off",
        aloha_ycsb_run(&cfg, ALOHA_EPOCH, &driver),
    );
    run(
        "simulated/compaction-on",
        aloha_ycsb_run_tuned(&cfg, ALOHA_EPOCH, &driver, |c| {
            c.with_compaction(SWEEP_EPOCHS * ALOHA_EPOCH, KEEP_VERSIONS)
        }),
    );
    run(
        "tcp-loopback/compaction-off",
        tcp_ycsb_run(&cfg, ALOHA_EPOCH, &driver),
    );
    run(
        "tcp-loopback/compaction-on",
        tcp_ycsb_run_tuned(&cfg, ALOHA_EPOCH, &driver, |c| {
            c.with_compaction(SWEEP_EPOCHS * ALOHA_EPOCH, KEEP_VERSIONS)
        }),
    );

    report.emit(&opts).expect("write ablation_memory report");
}
