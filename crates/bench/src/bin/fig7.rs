//! Figure 7: throughput vs. warehouses (TPC-C) or districts (scaled TPC-C)
//! per host, for NewOrder and Payment.
//!
//! Paper expectation: Calvin's throughput drops sharply as warehouses per
//! host shrink (contention on the single-threaded lock manager), with
//! Payment suffering below 5 warehouses per host; ALOHA-DB's drop stays
//! under ~5 % even at 1 warehouse or 1 district per host.

use aloha_bench::harness::{aloha_tpcc_run, calvin_tpcc_run, ALOHA_EPOCH, CALVIN_BATCH};
use aloha_bench::{BenchOpts, BenchReport};
use aloha_workloads::tpcc::{TpccConfig, TxnMix};

fn main() {
    let opts = BenchOpts::parse();
    let n = opts.servers();
    let per_host: &[u32] = if opts.full {
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    } else {
        &[1, 2, 5, 10]
    };
    let driver = opts.driver((2 * n as usize).max(8), 128);

    println!("# Figure 7: throughput vs warehouses/districts per host, {n} servers");
    println!("system,series,per_host,tput_ktps,mean_ms");
    let mut report = BenchReport::new("fig7", n, opts.duration().as_secs_f64());
    for &k in per_host {
        let stpcc = TpccConfig::scaled(n, k);
        let tpcc = TpccConfig::by_warehouse(n, k);
        let r = aloha_tpcc_run(&stpcc, ALOHA_EPOCH, TxnMix::NewOrderOnly, true, &driver);
        println!(
            "Aloha,STPCC-NewOrder,{k},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Aloha,STPCC-NewOrder,{k}"), r);
        let r = aloha_tpcc_run(&tpcc, ALOHA_EPOCH, TxnMix::NewOrderOnly, true, &driver);
        println!(
            "Aloha,TPCC-NewOrder,{k},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Aloha,TPCC-NewOrder,{k}"), r);
        let r = aloha_tpcc_run(&tpcc, ALOHA_EPOCH, TxnMix::PaymentOnly, false, &driver);
        println!(
            "Aloha,TPCC-Payment,{k},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Aloha,TPCC-Payment,{k}"), r);
        let r = calvin_tpcc_run(&stpcc, CALVIN_BATCH, TxnMix::NewOrderOnly, &driver);
        println!(
            "Calvin,STPCC-NewOrder,{k},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Calvin,STPCC-NewOrder,{k}"), r);
        let r = calvin_tpcc_run(&tpcc, CALVIN_BATCH, TxnMix::NewOrderOnly, &driver);
        println!(
            "Calvin,TPCC-NewOrder,{k},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Calvin,TPCC-NewOrder,{k}"), r);
        let r = calvin_tpcc_run(&tpcc, CALVIN_BATCH, TxnMix::PaymentOnly, &driver);
        println!(
            "Calvin,TPCC-Payment,{k},{:.2},{:.2}",
            r.tput_ktps, r.mean_latency_ms
        );
        report.push(format!("Calvin,TPCC-Payment,{k}"), r);
    }
    report.emit(&opts).expect("write fig7 report");
}
