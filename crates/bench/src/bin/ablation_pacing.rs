//! Pacing/admission ablation: an **open-loop** overload ramp driving ALOHA
//! from half its measured capacity up to 3×, across the control-plane
//! matrix {Fixed, Adaptive} pacing × {gate off, gate on}.
//!
//! Closed-loop drivers (the figure binaries) self-throttle: when the engine
//! slows down, so does the offered load, which hides overload collapse. Here
//! each client fires on a fixed schedule and latency is measured from the
//! *scheduled* send time (the coordinated-omission correction): when the
//! engine cannot keep up, the schedule deficit — client-side queueing —
//! grows for as long as the overload lasts, and the tail latency grows with
//! it. With the admission gate, excess load is rejected in microseconds with
//! a retryable `Overloaded`, clients stay on schedule, and the latency of
//! *admitted* work stays bounded by the gate window.
//!
//! Per step the table reports offered load, completed/shed counts,
//! throughput and p50/p95/p99; the JSON report carries the same rows (p95
//! rides as a root gauge on each row's snapshot).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_common::{Error, Key};
use aloha_control::{ControlConfig, GateConfig};
use aloha_core::{Cluster, ClusterConfig};
use aloha_workloads::driver::run_windowed;
use aloha_workloads::ycsb::{self, YcsbConfig, YCSB_ALOHA};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Baseline epoch duration for every variant; the adaptive pacer may steer
/// within [initial/5, initial*4] around it.
const EPOCH: Duration = Duration::from_millis(5);
/// Client threads. ALOHA's `execute` performs the transform and the install
/// sends inline, so a thin client pool would silently close the loop by
/// blocking; too wide a pool drowns the engine in scheduler noise instead
/// of transactions. 32 keeps the offered schedule honest at 3× capacity
/// while leaving the engine its share of the machine.
const SUBMITTERS: usize = 32;

fn encode_keys(keys: &[Key]) -> Vec<u8> {
    let mut args = Vec::new();
    args.extend_from_slice(&(keys.len() as u32).to_be_bytes());
    for k in keys {
        args.extend_from_slice(&(k.as_bytes().len() as u32).to_be_bytes());
        args.extend_from_slice(k.as_bytes());
    }
    args
}

/// One open-loop step: offer `rate_tps` for `duration`, then drain.
struct StepOutcome {
    completed: u64,
    shed: u64,
    errors: u64,
    elapsed: Duration,
    mean_micros: f64,
    p50_micros: u64,
    p95_micros: u64,
    p99_micros: u64,
}

type VariantFn = fn() -> ControlConfig;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Fires transactions on a fixed schedule (open loop) from `SUBMITTERS`
/// threads; paired collector threads record completion latencies without
/// ever back-pressuring submission. `Overloaded` rejections count as shed
/// and are not retried — in an open-loop world the request is simply lost.
fn open_loop_step(
    cluster: &Cluster,
    cfg: &YcsbConfig,
    rate_tps: f64,
    duration: Duration,
    seed: u64,
) -> StepOutcome {
    let db = cluster.database();
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let interval = Duration::from_secs_f64(SUBMITTERS as f64 / rate_tps);
            let db = db.clone();
            let (tx, rx) = mpsc::channel::<(Instant, aloha_core::TxnHandle)>();
            let (shed, errors, latencies) = (&shed, &errors, &latencies);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ ((t as u64) << 40));
                let end = Instant::now() + duration;
                // Stagger the per-thread schedules across one interval so the
                // aggregate arrival process is smooth, not a thundering herd.
                let mut next = Instant::now() + interval.mul_f64(t as f64 / SUBMITTERS as f64);
                loop {
                    let now = Instant::now();
                    if now >= end {
                        break;
                    }
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    // Latency is measured from the *scheduled* send time, so
                    // a client stuck behind a slow engine accrues its
                    // schedule deficit as queueing delay instead of quietly
                    // thinning the offered load (coordinated omission).
                    let scheduled = next;
                    next += interval;
                    let keys = ycsb::gen_txn_keys(&mut rng, cfg);
                    match db.execute(YCSB_ALOHA, encode_keys(&keys)) {
                        Ok(h) => {
                            let _ = tx.send((scheduled, h));
                        }
                        Err(Error::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                drop(tx);
            });
            scope.spawn(move || {
                let mut local = Vec::new();
                for (scheduled, handle) in rx {
                    match handle.wait_processed() {
                        Ok(_) => local.push(scheduled.elapsed().as_micros() as u64),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });

    let elapsed = started.elapsed();
    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let mean = if lats.is_empty() {
        0.0
    } else {
        lats.iter().sum::<u64>() as f64 / lats.len() as f64
    };
    StepOutcome {
        completed: lats.len() as u64,
        shed: shed.into_inner(),
        errors: errors.into_inner(),
        elapsed,
        mean_micros: mean,
        p50_micros: percentile(&lats, 0.50),
        p95_micros: percentile(&lats, 0.95),
        p99_micros: percentile(&lats, 0.99),
    }
}

fn build_cluster(servers: u16, cfg: &YcsbConfig, control: ControlConfig) -> Cluster {
    let mut builder = Cluster::builder(
        ClusterConfig::new(servers)
            .with_processors(2)
            .with_control(control),
    );
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().expect("start cluster");
    ycsb::load_aloha(&cluster, cfg);
    cluster
}

/// Closed-loop capacity probe: the sustained throughput the cluster reaches
/// under a saturating windowed driver sets the ramp's 1× point.
fn estimate_capacity_tps(servers: u16, cfg: &YcsbConfig, opts: &BenchOpts) -> f64 {
    let cluster = build_cluster(servers, cfg, ControlConfig::fixed(EPOCH));
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let mut driver = opts.driver(8, 64);
    driver.duration = opts.duration().min(Duration::from_secs(2));
    let report = run_windowed(&target, &driver);
    cluster.shutdown();
    report.throughput_tps()
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(10_000);

    let capacity = estimate_capacity_tps(servers, &cfg, &opts);
    println!("# Ablation: pacing + admission under open-loop overload, {servers} servers");
    println!("# measured closed-loop capacity: {:.0} tps", capacity);
    println!("variant,load_x,offered_tps,completed,shed,tput_ktps,p50_ms,p95_ms,p99_ms");

    let multipliers: &[f64] = if opts.full {
        &[0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0]
    } else {
        &[0.5, 1.0, 2.0, 3.0]
    };
    // The gate window is the engine's measured concurrency sweet spot: the
    // closed-loop capacity probe peaks near 8-16 outstanding transactions,
    // and capacity *halves* by 32 (coordinator contention). The window pins
    // admitted concurrency at that operating point; the wait queue is zero
    // so rejection is instant — a shed client is back on its schedule in
    // microseconds instead of queueing its deficit into the tail.
    fn bench_gate() -> GateConfig {
        GateConfig::default()
            .with_window(32)
            .with_read_reserve(0)
            .with_queue(0, Duration::ZERO)
    }
    // Permit lifetimes are epoch-bound (a transaction completes shortly
    // after its epoch closes), so the pacer's ceiling is kept at 2× initial
    // here: with a 16-wide window, Little's law would otherwise let a 4×
    // epoch stretch starve admitted throughput.
    fn bench_adaptive() -> ControlConfig {
        let mut control = ControlConfig::adaptive(EPOCH);
        control.pacing = control.pacing.with_bounds(EPOCH / 2, EPOCH * 2);
        control
    }
    let variants: &[(&str, VariantFn)] = &[
        ("fixed+nogate", || ControlConfig::fixed(EPOCH)),
        ("fixed+gate", || {
            ControlConfig::fixed(EPOCH).with_gate(Some(bench_gate()))
        }),
        ("adaptive+nogate", || bench_adaptive().with_gate(None)),
        ("adaptive+gate", || {
            bench_adaptive().with_gate(Some(bench_gate()))
        }),
    ];

    let mut report = BenchReport::new("ablation_pacing", servers, opts.duration().as_secs_f64());
    for (name, control) in variants {
        let cluster = build_cluster(servers, &cfg, control());
        for &mult in multipliers {
            let rate = capacity * mult;
            cluster.reset_stats();
            let out = open_loop_step(
                &cluster,
                &cfg,
                rate,
                opts.duration(),
                0x9ACE ^ mult.to_bits(),
            );
            let tput_ktps = out.completed as f64 / out.elapsed.as_secs_f64() / 1_000.0;
            println!(
                "{name},{mult:.2},{rate:.0},{},{},{tput_ktps:.2},{:.2},{:.2},{:.2}",
                out.completed,
                out.shed,
                out.p50_micros as f64 / 1_000.0,
                out.p95_micros as f64 / 1_000.0,
                out.p99_micros as f64 / 1_000.0,
            );
            if out.errors > 0 {
                eprintln!("# warning: {name} at {mult}x saw {} errors", out.errors);
            }
            let mut snapshot = cluster.snapshot();
            snapshot.set_gauge("p95_latency_micros", out.p95_micros);
            snapshot.set_gauge("offered_tps", rate as u64);
            report.push(
                format!("{name},load={mult:.2}x"),
                RunResult {
                    tput_ktps,
                    mean_latency_ms: out.mean_micros / 1_000.0,
                    p50_latency_ms: out.p50_micros as f64 / 1_000.0,
                    p99_latency_ms: out.p99_micros as f64 / 1_000.0,
                    committed: out.completed,
                    aborted: out.shed,
                    snapshot,
                },
            );
        }
        cluster.shutdown();
    }
    report.emit(&opts).expect("write ablation_pacing report");
}
