//! Ablation of the ECC engine features around the write-only phase:
//!
//! * **straggler window** (§III-C): with the no-authorization window off,
//!   every epoch switch stalls all transaction starts for the switch
//!   duration — visible once the network makes switches slow;
//! * **durability** (§III-A logging): the WAL's cost on the install path;
//! * **replication** (§III-A): synchronous backup acks double the install
//!   round trips.
//!
//! The paper's evaluation runs with fault tolerance disabled (our baseline
//! row) and the straggler optimization on; this harness quantifies what each
//! switch costs on this substrate.

use std::time::Duration;

use aloha_bench::harness::ALOHA_EPOCH;
use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_core::{Cluster, ClusterConfig};
use aloha_net::NetConfig;
use aloha_workloads::driver::run_windowed;
use aloha_workloads::ycsb::{self, YcsbConfig};

fn run(
    name: &str,
    servers: u16,
    opts: &BenchOpts,
    report: &mut BenchReport,
    tune: impl Fn(ClusterConfig) -> ClusterConfig,
) {
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(20_000);
    let base = ClusterConfig::new(servers)
        .with_epoch_duration(ALOHA_EPOCH)
        // A visible network cost per message makes epoch switches and
        // replication acks meaningful.
        .with_net(NetConfig::with_latency(Duration::from_micros(150)));
    let mut builder = Cluster::builder(tune(base));
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().expect("start cluster");
    ycsb::load_aloha(&cluster, &cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg);
    cluster.reset_stats();
    let driven = run_windowed(&target, &opts.driver(8, 64));
    let r = RunResult::from_parts(&driven, cluster.snapshot());
    println!(
        "{name},{:.2},{:.2},{:.2}",
        r.tput_ktps, r.mean_latency_ms, r.p99_latency_ms,
    );
    report.push(name, r);
    cluster.shutdown();
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    println!("# Ablation: ECC engine features, {servers} servers, 150us network");
    println!("variant,tput_ktps,mean_ms,p99_ms");
    let mut report = BenchReport::new("ablation_ecc", servers, opts.duration().as_secs_f64());
    run("baseline", servers, &opts, &mut report, |c| c);
    run("no-straggler-window", servers, &opts, &mut report, |c| {
        c.with_noauth(false)
    });
    run("durable-wal", servers, &opts, &mut report, |c| {
        c.with_memory_wal()
    });
    run("replicated", servers, &opts, &mut report, |c| {
        c.with_ring_replication()
    });
    run("durable+replicated", servers, &opts, &mut report, |c| {
        c.with_memory_wal().with_ring_replication()
    });
    report.emit(&opts).expect("write ablation_ecc report");
}
