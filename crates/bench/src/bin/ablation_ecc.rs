//! Ablation of the ECC engine features around the write-only phase:
//!
//! * **straggler window** (§III-C): with the no-authorization window off,
//!   every epoch switch stalls all transaction starts for the switch
//!   duration — visible once the network makes switches slow;
//! * **durability** (§III-A logging): the WAL's cost on the install path;
//! * **replication** (§III-A): synchronous backup acks double the install
//!   round trips.
//!
//! The paper's evaluation runs with fault tolerance disabled (our baseline
//! row) and the straggler optimization on; this harness quantifies what each
//! switch costs on this substrate.

use std::time::Duration;

use aloha_bench::harness::ALOHA_EPOCH;
use aloha_bench::BenchOpts;
use aloha_core::{Cluster, ClusterConfig};
use aloha_net::NetConfig;
use aloha_workloads::driver::run_windowed;
use aloha_workloads::ycsb::{self, YcsbConfig};

fn run(name: &str, servers: u16, opts: &BenchOpts, tune: impl Fn(ClusterConfig) -> ClusterConfig) {
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(20_000);
    let base = ClusterConfig::new(servers)
        .with_epoch_duration(ALOHA_EPOCH)
        // A visible network cost per message makes epoch switches and
        // replication acks meaningful.
        .with_net(NetConfig::with_latency(Duration::from_micros(150)));
    let mut builder = Cluster::builder(tune(base));
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().expect("start cluster");
    ycsb::load_aloha(&cluster, &cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg);
    cluster.reset_stats();
    let report = run_windowed(&target, &opts.driver(8, 64));
    println!(
        "{name},{:.2},{:.2},{:.2}",
        report.throughput_tps() / 1_000.0,
        report.mean_latency_micros / 1_000.0,
        report.p99_latency_micros as f64 / 1_000.0,
    );
    cluster.shutdown();
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    println!("# Ablation: ECC engine features, {servers} servers, 150us network");
    println!("variant,tput_ktps,mean_ms,p99_ms");
    run("baseline", servers, &opts, |c| c);
    run("no-straggler-window", servers, &opts, |c| {
        c.with_noauth(false)
    });
    run("durable-wal", servers, &opts, |c| c.with_durability(true));
    run("replicated", servers, &opts, |c| c.with_replication(true));
    run("durable+replicated", servers, &opts, |c| {
        c.with_durability(true).with_replication(true)
    });
}
