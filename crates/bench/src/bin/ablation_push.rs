//! Ablation: the recipient-set proactive-push optimization (§IV-B).
//!
//! Workload: cross-partition copy transactions `dst := src + c` where `src`
//! and `dst` live on different partitions, so computing `dst`'s functor
//! needs `src`'s pre-version value from the remote partition. With the
//! optimization on, `src`'s functor carries `dst` in its recipient set and
//! *pushes* the value; with it off, `dst`'s computing phase issues a
//! blocking remote read. The paper: "This optimization speeds up functor
//! computation and is not required for correctness."
//!
//! Reported: throughput, mean latency, and the backend counters — remote
//! reads issued vs. reads served from the push cache.

use std::time::Duration;

use aloha_bench::harness::ALOHA_EPOCH;
use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};
use aloha_workloads::driver::{run_windowed, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

const COPY: ProgramId = ProgramId(1);
const H_TOUCH: HandlerId = HandlerId(1);
const H_COPY: HandlerId = HandlerId(2);

fn key(p: u16, idx: u32) -> Key {
    Key::with_route(p as u32, &[b"abl", &idx.to_be_bytes()])
}

struct CopyWorkload {
    db: aloha_core::Database,
    partitions: u16,
    keys_per_partition: u32,
    with_push: bool,
}

impl Workload for CopyWorkload {
    type Handle = aloha_core::TxnHandle;

    fn submit(&self, rng: &mut SmallRng) -> aloha_common::Result<Self::Handle> {
        let p_src = rng.gen_range(0..self.partitions);
        let p_dst = (p_src + 1 + rng.gen_range(0..self.partitions - 1)) % self.partitions;
        let src = key(p_src, rng.gen_range(0..self.keys_per_partition));
        let dst = key(p_dst, rng.gen_range(0..self.keys_per_partition));
        let mut args = vec![self.with_push as u8];
        args.extend_from_slice(&(src.as_bytes().len() as u32).to_be_bytes());
        args.extend_from_slice(src.as_bytes());
        args.extend_from_slice(dst.as_bytes());
        self.db
            .execute_at(aloha_common::ServerId(p_src), COPY, args)
    }

    fn wait(&self, handle: Self::Handle) -> aloha_common::Result<bool> {
        Ok(handle.wait_processed()? == TxnOutcome::Committed)
    }
}

fn build_cluster(servers: u16, net: aloha_net::NetConfig) -> Cluster {
    let mut builder = Cluster::builder(
        ClusterConfig::new(servers)
            .with_epoch_duration(ALOHA_EPOCH)
            .with_net(net),
    );
    // src's functor: increment own value (and optionally push to dst).
    builder.register_handler(H_TOUCH, |input: &ComputeInput<'_>| {
        let v = input.reads.i64(input.key).unwrap_or(0);
        HandlerOutput::commit(Value::from_i64(v + 1))
    });
    // dst's functor: dst := src + 1000 (src is on another partition).
    builder.register_handler(H_COPY, |input: &ComputeInput<'_>| {
        let src = Key::from(input.args);
        let v = input.reads.i64(&src).unwrap_or(0);
        HandlerOutput::commit(Value::from_i64(v + 1000))
    });
    builder.register_program(
        COPY,
        fn_program(|ctx| {
            let with_push = ctx.args[0] != 0;
            let src_len = u32::from_be_bytes(ctx.args[1..5].try_into().expect("length")) as usize;
            let src = Key::from(&ctx.args[5..5 + src_len]);
            let dst = Key::from(&ctx.args[5 + src_len..]);
            let mut src_functor = UserFunctor::new(H_TOUCH, vec![src.clone()], Vec::new());
            if with_push {
                src_functor = src_functor.with_recipients(vec![dst.clone()]);
            }
            let dst_functor = UserFunctor::new(H_COPY, vec![src.clone()], src.as_bytes().to_vec());
            Ok(TxnPlan::new()
                .write(src, Functor::User(src_functor))
                .write(dst, Functor::User(dst_functor)))
        }),
    );
    builder.start().expect("start cluster")
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    let keys_per_partition = 5_000u32;
    println!("# Ablation: recipient-set proactive push, {servers} servers");
    println!("network,mode,tput_ktps,mean_ms,remote_reads,push_hits,push_hit_rate");
    let mut report = BenchReport::new("ablation_push", servers, opts.duration().as_secs_f64());
    let networks = [
        ("instant", aloha_net::NetConfig::instant()),
        (
            "200us",
            aloha_net::NetConfig::with_latency(Duration::from_micros(200)),
        ),
    ];
    for (net_name, net) in &networks {
        for with_push in [false, true] {
            let cluster = build_cluster(servers, net.clone());
            for p in 0..servers {
                for i in 0..keys_per_partition {
                    cluster.load(key(p, i), Value::from_i64(0));
                }
            }
            let workload = CopyWorkload {
                db: cluster.database(),
                partitions: servers,
                keys_per_partition,
                with_push,
            };
            cluster.reset_stats();
            let driven = run_windowed(&workload, &opts.driver(8, 64));
            let mut remote_reads = 0;
            let mut push_hits = 0;
            for server in cluster.servers() {
                remote_reads += server.partition().stats().remote_reads();
                push_hits += server.partition().stats().push_hits();
            }
            let rate = if remote_reads + push_hits > 0 {
                push_hits as f64 / (remote_reads + push_hits) as f64
            } else {
                0.0
            };
            let r = RunResult::from_parts(&driven, cluster.snapshot());
            println!(
                "{net_name},{},{:.2},{:.2},{remote_reads},{push_hits},{rate:.3}",
                if with_push { "push" } else { "remote-read" },
                r.tput_ktps,
                r.mean_latency_ms,
            );
            report.push(
                format!(
                    "{net_name},{}",
                    if with_push { "push" } else { "remote-read" }
                ),
                r,
            );
            cluster.shutdown();
            // Give OS threads a moment to wind down between runs.
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    report.emit(&opts).expect("write ablation_push report");
}
