//! Durability ablation: what epoch group commit costs, fsync policy by
//! fsync policy, against the no-WAL and in-memory-WAL baselines.
//!
//! Every variant runs the same closed-loop YCSB sweep; the disk variants
//! log install/abort records into per-server segment files and pay one
//! flush per epoch close, so the interesting deltas are (a) the codec +
//! buffered-write cost (`disk+never` vs `memory`) and (b) the sync cost
//! itself (`disk+epoch` vs `disk+never`, with `disk+every8` in between).
//! Each row's snapshot carries the `durability` subtree, so the JSON report
//! records wal_bytes/fsyncs alongside throughput and p99.

use std::time::Duration;

use aloha_bench::{BenchOpts, BenchReport};
use aloha_common::tempdir::TempDir;
use aloha_core::{Cluster, ClusterConfig, DurableLogSpec};
use aloha_storage::Fsync;
use aloha_workloads::driver::run_windowed;
use aloha_workloads::ycsb::{self, YcsbConfig};

/// Epoch duration for every variant. Short epochs maximize group-commit
/// frequency, so the fsync-policy deltas show at their worst.
const EPOCH: Duration = Duration::from_millis(5);

/// One durability configuration under test.
enum Variant {
    /// No WAL at all: the upper bound.
    None,
    /// The pre-durability in-memory chunk log: codec cost, no file I/O.
    Memory,
    /// Disk segments under the given fsync policy.
    Disk(Fsync),
}

impl Variant {
    fn name(&self) -> String {
        match self {
            Variant::None => "none".into(),
            Variant::Memory => "memory".into(),
            Variant::Disk(f) => format!("disk+{f}"),
        }
    }

    /// Applies this variant to a cluster config; disk variants log into
    /// `dir`, which outlives the run and is removed on drop.
    fn configure(&self, config: ClusterConfig, dir: &TempDir) -> ClusterConfig {
        match self {
            Variant::None => config,
            Variant::Memory => config.with_memory_wal(),
            Variant::Disk(fsync) => {
                config.with_durable_log(DurableLogSpec::new(dir.path()).with_fsync(*fsync))
            }
        }
    }
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(10_000);

    let loads: &[(usize, usize)] = if opts.full {
        &[(2, 8), (4, 16), (8, 32)]
    } else {
        &[(4, 16)]
    };
    let variants = [
        Variant::None,
        Variant::Memory,
        Variant::Disk(Fsync::Never),
        Variant::Disk(Fsync::EveryN(8)),
        Variant::Disk(Fsync::EveryEpoch),
    ];

    println!("# Ablation: durability / fsync policy, {servers} servers");
    println!("variant,threads,window,tput_ktps,mean_ms,p99_ms,wal_kb,fsyncs");
    let mut report = BenchReport::new(
        "ablation_durability",
        servers,
        opts.duration().as_secs_f64(),
    );
    for variant in &variants {
        let name = variant.name();
        for &(threads, window) in loads {
            let dir = TempDir::new("ablation-durability");
            let config = variant.configure(
                ClusterConfig::new(servers)
                    .with_epoch_duration(EPOCH)
                    .with_processors(2),
                &dir,
            );
            let mut builder = Cluster::builder(config);
            ycsb::install_aloha(&mut builder);
            let cluster = builder.start().expect("start cluster");
            ycsb::load_aloha(&cluster, &cfg);
            let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
            cluster.reset_stats();
            let run = run_windowed(&target, &opts.driver(threads, window));
            let snapshot = cluster.snapshot();
            let (mut wal_bytes, mut fsyncs) = (0, 0);
            for i in 0..servers {
                if let Some(d) = snapshot
                    .child(&format!("server_{i}"))
                    .and_then(|s| s.child("durability").cloned())
                {
                    wal_bytes += d.counter("wal_bytes").unwrap_or(0);
                    fsyncs += d.counter("fsyncs").unwrap_or(0);
                }
            }
            let result = aloha_bench::RunResult::from_parts(&run, snapshot);
            cluster.shutdown();
            println!(
                "{name},{threads},{window},{:.2},{:.2},{:.2},{},{}",
                result.tput_ktps,
                result.mean_latency_ms,
                result.p99_latency_ms,
                wal_bytes / 1024,
                fsyncs,
            );
            report.push(format!("{name},{threads},{window}"), result);
        }
    }
    report
        .emit(&opts)
        .expect("write ablation_durability report");
}
