//! Replication ablation: what hot-partition log shipping costs, and what it
//! buys when the primary dies.
//!
//! Three variants run the same closed-loop YCSB sweep over a disk-backed
//! cluster while a killer thread repeatedly takes one backend down:
//!
//! * `off` — no replica set: every kill recovers via restart-from-WAL
//!   (checkpoint + suffix replay), the paper's baseline fault path;
//! * `budget1` — partial replication with the victim pinned: each kill
//!   promotes the standby at the epoch boundary inside `kill_server`;
//! * `all` — every partition holds a standby (the replicate-everything
//!   upper bound on shipping overhead).
//!
//! Each row reports throughput/latency under the kill storm, the shipping
//! bandwidth overhead (`ship_kb`), and the downtime distribution measured
//! wall-clock from kill to serving-again — the JSON carries them in a
//! `failover_bench` subtree, so CI can assert failover ≪ restart.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aloha_bench::{BenchOpts, BenchReport};
use aloha_common::stats::StatsSnapshot;
use aloha_common::tempdir::TempDir;
use aloha_common::ServerId;
use aloha_core::{Cluster, ClusterConfig, DurableLogSpec, PartialReplicationSpec};
use aloha_storage::Fsync;
use aloha_workloads::driver::run_windowed;
use aloha_workloads::ycsb::{self, YcsbConfig};

const EPOCH: Duration = Duration::from_millis(5);

#[derive(Clone, Copy)]
enum Variant {
    Off,
    Budget1,
    All,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Off => "off",
            Variant::Budget1 => "budget1",
            Variant::All => "all",
        }
    }

    fn configure(self, config: ClusterConfig, servers: u16, victim: ServerId) -> ClusterConfig {
        let cadence = Duration::from_millis(25);
        match self {
            Variant::Off => config,
            Variant::Budget1 => config.with_partial_replication_spec(
                PartialReplicationSpec::new(1)
                    .with_pinned(vec![victim.0])
                    .with_rebalance_interval(cadence),
            ),
            Variant::All => config.with_partial_replication_spec(
                PartialReplicationSpec::new(servers as usize).with_rebalance_interval(cadence),
            ),
        }
    }
}

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    match sorted.len() {
        0 => Duration::ZERO,
        n => sorted[(n - 1) * pct / 100],
    }
}

/// Lifetime bytes standbys applied — the bandwidth the shipping protocol
/// added. Cumulative across promotions (per-feed counters die with each
/// promoted server).
fn ship_bytes(snapshot: &StatsSnapshot) -> u64 {
    snapshot
        .child("replication")
        .and_then(|r| r.counter("applied_bytes_total"))
        .unwrap_or(0)
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers().max(2);
    let victim = ServerId(servers - 1);
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(10_000);
    let (threads, window) = (4usize, 16usize);

    println!("# Ablation: partial replication / failover, {servers} servers, victim s{victim}");
    println!("variant,threads,window,tput_ktps,mean_ms,p99_ms,ship_kb,kills,failovers,restarts,down_p50_ms,down_p99_ms");
    let mut report = BenchReport::new(
        "ablation_replication",
        servers,
        opts.duration().as_secs_f64(),
    );
    for variant in [Variant::Off, Variant::Budget1, Variant::All] {
        let name = variant.name();
        let dir = TempDir::new("ablation-replication");
        // Every variant pays the same disk WAL (buffered, no background
        // checkpointer) so `off` recovers through the honest restart-from-WAL
        // path — full replay — while promotion never touches the log.
        let config = variant.configure(
            ClusterConfig::new(servers)
                .with_epoch_duration(EPOCH)
                .with_processors(2)
                // Windows stranded mid-kill must fail fast (they count as
                // errors), not park for the default 30s RPC timeout.
                .with_rpc_timeout(Duration::from_millis(10))
                .with_durable_log(DurableLogSpec::new(dir.path()).with_fsync(Fsync::Never)),
            servers,
            victim,
        );
        let mut builder = Cluster::builder(config);
        ycsb::install_aloha(&mut builder);
        let cluster = builder.start().expect("start cluster");
        ycsb::load_aloha(&cluster, &cfg);
        let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
        cluster.reset_stats();

        let replicated = !matches!(variant, Variant::Off);
        let stop = AtomicBool::new(false);
        let downtimes: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
        let run = std::thread::scope(|scope| {
            let cluster = &cluster;
            let stop = &stop;
            let downtimes = &downtimes;
            let pause = (opts.duration() / 6).max(Duration::from_millis(20));
            let killer = scope.spawn(move || {
                loop {
                    std::thread::sleep(pause);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if replicated {
                        // Each kill consumes the standby; wait for the
                        // controller to attach a fresh one before the next.
                        let deadline = Instant::now() + Duration::from_secs(2);
                        while !cluster.replicated_partitions().contains(&victim)
                            && Instant::now() < deadline
                        {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        if !cluster.replicated_partitions().contains(&victim) {
                            continue;
                        }
                    }
                    // Downtime comes from the availability stats' internal
                    // clock (kill start → promotion/restart), not this
                    // thread's wall clock: under a saturated closed loop the
                    // killer thread's own scheduling latency would otherwise
                    // inflate every sample.
                    let before = cluster.availability().downtime_micros(victim.0);
                    if cluster.kill_server(victim).is_err() {
                        continue;
                    }
                    if !replicated {
                        cluster.restart_server(victim).expect("restart victim");
                    }
                    let after = cluster.availability().downtime_micros(victim.0);
                    downtimes
                        .lock()
                        .unwrap()
                        .push(Duration::from_micros(after - before));
                }
            });
            let run = run_windowed(&target, &opts.driver(threads, window));
            stop.store(true, Ordering::Relaxed);
            killer.join().expect("killer thread");
            run
        });

        let mut snapshot = cluster.snapshot();
        let shipped = ship_bytes(&snapshot);
        let (kills, failovers, restarts) = (
            cluster.availability().kills(),
            cluster.availability().failovers(),
            cluster.availability().restarts(),
        );
        let mut ds = downtimes.into_inner().expect("downtime samples");
        ds.sort();
        let (p50, p99) = (percentile(&ds, 50), percentile(&ds, 99));
        let mut fb = StatsSnapshot::new("failover_bench");
        fb.set_counter("kills", kills);
        fb.set_counter("failovers", failovers);
        fb.set_counter("restarts", restarts);
        fb.set_counter("ship_bytes", shipped);
        fb.set_counter("downtime_p50_micros", p50.as_micros() as u64);
        fb.set_counter("downtime_p99_micros", p99.as_micros() as u64);
        snapshot.push_child(fb);
        let result = aloha_bench::RunResult::from_parts(&run, snapshot);
        cluster.shutdown();
        println!(
            "{name},{threads},{window},{:.2},{:.2},{:.2},{},{},{},{},{:.3},{:.3}",
            result.tput_ktps,
            result.mean_latency_ms,
            result.p99_latency_ms,
            shipped / 1024,
            kills,
            failovers,
            restarts,
            p50.as_secs_f64() * 1_000.0,
            p99.as_secs_f64() * 1_000.0,
        );
        report.push(format!("{name},{threads},{window}"), result);
    }
    report
        .emit(&opts)
        .expect("write ablation_replication report");
}
