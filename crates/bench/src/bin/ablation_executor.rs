//! Ablation: bounded two-lane executor vs thread-per-message dispatch.
//!
//! Workload: a multi-partition read-modify-write mix. Each transaction
//! writes two keys — one on its home partition, one on the next — and each
//! written key's functor reads [`READ_SET`] reference keys owned by the
//! neighboring partitions. Every transaction therefore exercises both
//! executor lanes on every server it touches: installs, aborts and push
//! values ride the key-sharded lane, while the cross-partition read gathers
//! ride the blocking lane (and its spillover valve under saturation).
//!
//! Modes:
//! - `spawn`: [`ExecConfig::spawn_per_message`] — every data-plane message
//!   gets a fresh OS thread, the seed dispatcher's behavior. Thread churn
//!   scales with message rate, so the per-message spawn and scheduling cost
//!   grows with partition count.
//! - `pooled`: the default bounded executor — a fixed crew of sharded and
//!   blocking workers per server, with spillover threads only under
//!   blocking-lane saturation.
//!
//! The epoch is short (3 ms) for the same reason as `ablation_batch`: the
//! closed-loop driver's throughput is `window / latency`, and a long epoch
//! wait would mask the dispatch cost this ablation isolates.
//!
//! Reported: throughput, mean latency, and the executor's own counters
//! (spillover spawns, steady/peak thread counts summed across servers),
//! plus the pooled/spawn throughput ratio per partition count. The thread
//! columns are the headline: `pooled` holds a constant steady-state crew
//! while `spawn` burns a thread per message (visible as `threads_peak`).

use std::time::Duration;

use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};
use aloha_net::ExecConfig;
use aloha_workloads::driver::{run_windowed, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

const RMW: ProgramId = ProgramId(1);
const H_SUM: HandlerId = HandlerId(1);
/// Reference keys each written key's functor reads from its neighbors.
const READ_SET: u32 = 8;
const EPOCH: Duration = Duration::from_millis(3);

/// A mutable key in the write keyspace.
fn wkey(p: u16, idx: u32) -> Key {
    Key::with_route(p as u32, &[b"w", &idx.to_be_bytes()])
}

/// A read-only reference key; loaded once, never written, so remote gets
/// resolve without recursive computing.
fn rkey(p: u16, idx: u32) -> Key {
    Key::with_route(p as u32, &[b"ref", &idx.to_be_bytes()])
}

/// The reference read set of a write on partition `p`: half on the next
/// partition, half on the previous one.
fn read_set(p: u16, servers: u16, base: u32, keys_per_partition: u32) -> Vec<Key> {
    let next = (p + 1) % servers;
    let prev = (p + servers - 1) % servers;
    (0..READ_SET)
        .map(|i| {
            let owner = if i % 2 == 0 { next } else { prev };
            rkey(owner, (base + i) % keys_per_partition)
        })
        .collect()
}

struct RmwWorkload {
    db: aloha_core::Database,
    partitions: u16,
    keys_per_partition: u32,
}

impl Workload for RmwWorkload {
    type Handle = aloha_core::TxnHandle;

    fn submit(&self, rng: &mut SmallRng) -> aloha_common::Result<Self::Handle> {
        let p = rng.gen_range(0..self.partitions);
        let mut args = p.to_be_bytes().to_vec();
        args.extend_from_slice(&rng.gen_range(0..self.keys_per_partition).to_be_bytes());
        args.extend_from_slice(&rng.gen_range(0..self.keys_per_partition).to_be_bytes());
        args.extend_from_slice(&rng.gen_range(0..self.keys_per_partition).to_be_bytes());
        self.db.execute_at(aloha_common::ServerId(p), RMW, args)
    }

    fn wait(&self, handle: Self::Handle) -> aloha_common::Result<bool> {
        Ok(handle.wait_processed()? == TxnOutcome::Committed)
    }
}

fn build_cluster(servers: u16, exec: ExecConfig, keys_per_partition: u32) -> Cluster {
    let config = ClusterConfig::new(servers)
        .with_epoch_duration(EPOCH)
        .with_exec(exec);
    let mut builder = Cluster::builder(config);
    builder.register_handler(H_SUM, |input: &ComputeInput<'_>| {
        let sum: i64 = input
            .reads
            .iter()
            .filter_map(|(_, r)| r.value.as_ref().and_then(Value::as_i64))
            .sum();
        HandlerOutput::commit(Value::from_i64(sum))
    });
    builder.register_program(
        RMW,
        fn_program(move |ctx| {
            let p = u16::from_be_bytes(ctx.args[0..2].try_into().expect("home partition"));
            let idx_a = u32::from_be_bytes(ctx.args[2..6].try_into().expect("idx_a"));
            let idx_b = u32::from_be_bytes(ctx.args[6..10].try_into().expect("idx_b"));
            let base = u32::from_be_bytes(ctx.args[10..14].try_into().expect("ref base"));
            let q = (p + 1) % servers;
            let fa = UserFunctor::new(
                H_SUM,
                read_set(p, servers, base, keys_per_partition),
                Vec::new(),
            );
            let fb = UserFunctor::new(
                H_SUM,
                read_set(q, servers, base, keys_per_partition),
                Vec::new(),
            );
            Ok(TxnPlan::new()
                .write(wkey(p, idx_a), Functor::User(fa))
                .write(wkey(q, idx_b), Functor::User(fb)))
        }),
    );
    builder.start().expect("start cluster")
}

/// Sums the executor counters across every server's `exec` subtree.
fn exec_totals(snapshot: &StatsSnapshot, servers: u16) -> (u64, u64, u64) {
    let mut spillover = 0;
    let mut steady = 0;
    let mut peak = 0;
    for p in 0..servers {
        if let Some(exec) = snapshot
            .child(&format!("server_{p}"))
            .and_then(|n| n.child("exec"))
        {
            spillover += exec.counter("spillover_spawns").unwrap_or(0);
            steady += exec.counter("threads_steady").unwrap_or(0);
            peak += exec.counter("threads_peak").unwrap_or(0);
        }
    }
    (spillover, steady, peak)
}

fn main() {
    let opts = BenchOpts::parse();
    // `--servers N` pins the sweep to one size (CI smoke); the default
    // sweeps the scaling points the issue calls for.
    let sweep: Vec<u16> = match opts.servers {
        Some(n) => vec![n.max(2)],
        None => vec![2, 4, 8],
    };
    let keys_per_partition = 5_000u32;
    let max_servers = *sweep.iter().max().expect("non-empty sweep");
    println!("# Ablation: bounded executor vs thread-per-message, read set {READ_SET}");
    println!("partitions,mode,tput_ktps,mean_ms,spillover_spawns,threads_steady,threads_peak");
    let mut report = BenchReport::new(
        "ablation_executor",
        max_servers,
        opts.duration().as_secs_f64(),
    );
    for &servers in &sweep {
        let mut spawn_tput = 0.0_f64;
        for pooled in [false, true] {
            let mode = if pooled { "pooled" } else { "spawn" };
            let exec = if pooled {
                ExecConfig::default()
            } else {
                ExecConfig::spawn_per_message()
            };
            let cluster = build_cluster(servers, exec, keys_per_partition);
            for p in 0..servers {
                for i in 0..keys_per_partition {
                    cluster.load(rkey(p, i), Value::from_i64(i as i64));
                    cluster.load(wkey(p, i), Value::from_i64(0));
                }
            }
            let workload = RmwWorkload {
                db: cluster.database(),
                partitions: servers,
                keys_per_partition,
            };
            cluster.reset_stats();
            let driven = run_windowed(&workload, &opts.driver(8, 64));
            let snapshot = cluster.snapshot();
            let (spillover, steady, peak) = exec_totals(&snapshot, servers);
            let r = RunResult::from_parts(&driven, snapshot);
            println!(
                "{servers},{mode},{:.2},{:.2},{spillover},{steady},{peak}",
                r.tput_ktps, r.mean_latency_ms,
            );
            if pooled {
                let ratio = if spawn_tput > 0.0 {
                    r.tput_ktps / spawn_tput
                } else {
                    0.0
                };
                println!("# p{servers}: pooled/spawn throughput ratio {ratio:.2}x");
            } else {
                spawn_tput = r.tput_ktps;
            }
            report.push(format!("p{servers},{mode}"), r);
            cluster.shutdown();
            // Give OS threads a moment to wind down between runs.
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    report.emit(&opts).expect("write ablation_executor report");
}
