//! Figure 11: mean latency vs. epoch duration (ALOHA-DB) / batch duration
//! (Calvin), medium contention (CI = 0.001), light load.
//!
//! Paper expectation: latency is linear in the epoch duration for both
//! systems — slope ≈ 0.5 for ALOHA-DB (functors wait half an epoch on
//! average) and slope ≈ 1 for Calvin (its open-source generator emits most
//! transactions at the start of each batch; our closed-loop driver submits
//! continuously, so the measured Calvin slope lands between 0.5 and 1).

use std::time::Duration;

use aloha_bench::harness::{aloha_ycsb_run, calvin_ycsb_run};
use aloha_bench::{BenchOpts, BenchReport};
use aloha_workloads::ycsb::YcsbConfig;

fn main() {
    let opts = BenchOpts::parse();
    let n = opts.servers();
    let epochs_ms: &[u64] = if opts.full {
        &[20, 40, 60, 80, 100, 120, 140, 160, 180, 200]
    } else {
        &[20, 50, 100, 200]
    };
    // Light load with paced, window-1 submissions so transactions arrive
    // uniformly within epochs (independent clients, as in the paper).
    let base_driver = opts.driver(4, 1);
    let keys = if opts.full { 1_000_000 } else { 100_000 };
    let cfg = YcsbConfig::with_contention_index(n, 0.001).with_keys_per_partition(keys);

    println!("# Figure 11: latency vs epoch duration, CI=0.001, light load, {n} servers");
    println!("system,epoch_ms,mean_latency_ms,p99_latency_ms");
    let mut report = BenchReport::new("fig11", n, opts.duration().as_secs_f64());
    for &ms in epochs_ms {
        let driver = base_driver.clone().with_pacing(Duration::from_millis(ms));
        let r = aloha_ycsb_run(&cfg, Duration::from_millis(ms), &driver);
        println!(
            "Aloha,{ms},{:.2},{:.2}",
            r.mean_latency_ms, r.p99_latency_ms
        );
        report.push(format!("Aloha,{ms}"), r);
    }
    // The open-source Calvin generates most transactions at the start of
    // each batch (§V-C2), so Calvin keeps the unpaced closed loop, which
    // reproduces exactly that submission pattern.
    for &ms in epochs_ms {
        let r = calvin_ycsb_run(&cfg, Duration::from_millis(ms), &base_driver);
        println!(
            "Calvin,{ms},{:.2},{:.2}",
            r.mean_latency_ms, r.p99_latency_ms
        );
        report.push(format!("Calvin,{ms}"), r);
    }
    report.emit(&opts).expect("write fig11 report");
}
