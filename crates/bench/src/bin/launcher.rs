//! Multi-process TCP deployment launcher.
//!
//! Spawns each node as its own OS process (re-executing this binary),
//! wires them together over loopback TCP, runs the YCSB smoke workload
//! from the driver nodes, and verifies the merged commit history against
//! the serializability checker's serial replay. See
//! [`aloha_bench::multiproc`] for the protocol.
//!
//! ```text
//! cargo run -q -p aloha-bench --bin launcher            # 2-FE/4-BE smoke
//! cargo run -q -p aloha-bench --bin launcher -- --kill  # + SIGKILL a node
//! ```
//!
//! Options: `--servers N`, `--drivers N`, `--txns N` (per driver),
//! `--epoch-micros U`, `--keys N` (per partition), `--durable`, `--kill`,
//! `--scratch DIR`.

use std::time::Duration;

use aloha_bench::multiproc::{self, LaunchOpts, CHILD_FLAG};

fn parse(args: &[String], opts: &mut LaunchOpts) -> Result<(), String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--servers" => {
                opts.servers = value()?.parse().map_err(|e| format!("--servers: {e}"))?
            }
            "--drivers" => {
                opts.drivers = value()?.parse().map_err(|e| format!("--drivers: {e}"))?
            }
            "--txns" => {
                opts.txns_per_driver = value()?.parse().map_err(|e| format!("--txns: {e}"))?;
            }
            "--epoch-micros" => {
                opts.epoch = Duration::from_micros(
                    value()?
                        .parse()
                        .map_err(|e| format!("--epoch-micros: {e}"))?,
                );
            }
            "--keys" => {
                opts.keys_per_partition = value()?.parse().map_err(|e| format!("--keys: {e}"))?;
            }
            "--durable" => opts.durable = true,
            "--kill" => opts.kill = true,
            "--scratch" => opts.scratch = value()?.into(),
            "-h" | "--help" => {
                println!(
                    "usage: launcher [--servers N] [--drivers N] [--txns N] \
                     [--epoch-micros U] [--keys N] [--durable] [--kill] [--scratch DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.drivers == 0 || opts.drivers > opts.servers {
        return Err("need 1 <= drivers <= servers".into());
    }
    if opts.kill && opts.drivers >= opts.servers {
        return Err("--kill needs a non-driver node to kill".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Child processes re-enter this same binary with CHILD_FLAG first.
    if args.first().map(String::as_str) == Some(CHILD_FLAG) {
        multiproc::child_main(&args[1..]);
    }

    let scratch = std::env::temp_dir().join(format!("aloha-launch-{}", std::process::id()));
    let mut opts = LaunchOpts::smoke(&scratch);
    if let Err(e) = parse(&args, &mut opts) {
        eprintln!("launcher: {e}");
        std::process::exit(2);
    }

    println!(
        "# launching {} node processes ({} drivers, {} txns each{}{})",
        opts.servers,
        opts.drivers,
        opts.txns_per_driver,
        if opts.durable || opts.kill {
            ", durable WAL"
        } else {
            ""
        },
        if opts.kill { ", SIGKILL mid-run" } else { "" },
    );
    let report = match multiproc::launch(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("launcher failed: {e}");
            let _ = std::fs::remove_dir_all(&scratch);
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "committed={} aborted={} history_records={} divergences={}{}",
        report.committed,
        report.aborted,
        report.history_records,
        report.divergences,
        if report.killed {
            " (node killed + respawned)"
        } else {
            ""
        },
    );
    if report.committed == 0 {
        eprintln!("FAIL: no transaction committed");
        std::process::exit(1);
    }
    if report.divergences != 0 {
        eprintln!("FAIL: final state diverges from serial replay");
        std::process::exit(1);
    }
    println!("serializability check passed");
}
