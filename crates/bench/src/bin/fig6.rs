//! Figure 6: throughput vs. latency for NewOrder transactions.
//!
//! Series: ALOHA-DB and Calvin, each under TPC-C with 1 or 10 warehouses per
//! host (1W/10W) and scaled TPC-C with 1 or 10 districts per host (1D/10D).
//! The offered load is swept by increasing the number of windowed client
//! threads. Paper expectation: ALOHA-DB reaches 13×–61× higher peak
//! throughput at comparable or lower latency, and its curves for different
//! configurations bunch together while Calvin's spread widely.

use aloha_bench::harness::{aloha_tpcc_run, calvin_tpcc_run, ALOHA_EPOCH, CALVIN_BATCH};
use aloha_bench::{BenchOpts, BenchReport};
use aloha_workloads::tpcc::{TpccConfig, TxnMix};

fn main() {
    let opts = BenchOpts::parse();
    let n = opts.servers();
    let loads: &[(usize, usize)] = if opts.full {
        &[(1, 4), (2, 8), (4, 16), (8, 32), (16, 64), (32, 64)]
    } else {
        &[(1, 4), (2, 8), (4, 16), (8, 32), (16, 64)]
    };
    let configs: Vec<(&str, TpccConfig)> = vec![
        ("1W", TpccConfig::by_warehouse(n, 1)),
        ("10W", TpccConfig::by_warehouse(n, 10)),
        ("1D", TpccConfig::scaled(n, 1)),
        ("10D", TpccConfig::scaled(n, 10)),
    ];

    println!("# Figure 6: throughput vs latency (NewOrder), {n} servers");
    println!("system,config,threads,window,tput_ktps,mean_ms,p99_ms,aborted");
    let mut report = BenchReport::new("fig6", n, opts.duration().as_secs_f64());
    for (name, cfg) in &configs {
        for &(threads, window) in loads {
            let r = aloha_tpcc_run(
                cfg,
                ALOHA_EPOCH,
                TxnMix::NewOrderOnly,
                true,
                &opts.driver(threads, window),
            );
            println!(
                "Aloha,{name},{threads},{window},{:.2},{:.2},{:.2},{}",
                r.tput_ktps, r.mean_latency_ms, r.p99_latency_ms, r.aborted
            );
            report.push(format!("Aloha,{name},{threads},{window}"), r);
        }
    }
    for (name, cfg) in &configs {
        for &(threads, window) in loads {
            let r = calvin_tpcc_run(
                cfg,
                CALVIN_BATCH,
                TxnMix::NewOrderOnly,
                &opts.driver(threads, window),
            );
            println!(
                "Calvin,{name},{threads},{window},{:.2},{:.2},{:.2},{}",
                r.tput_ktps, r.mean_latency_ms, r.p99_latency_ms, r.aborted
            );
            report.push(format!("Calvin,{name},{threads},{window}"), r);
        }
    }
    report.emit(&opts).expect("write fig6 report");
}
