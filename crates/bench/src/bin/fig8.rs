//! Figure 8: scale-out — NewOrder throughput vs. number of servers.
//!
//! Paper expectation: near-linear scaling for every configuration except
//! Calvin under scaled TPC-C (whose transactions touch more partitions as
//! the cluster grows); ALOHA-DB ends 13×–112× ahead at 20 servers (~2 M
//! txn/s on the paper's hardware).

use aloha_bench::harness::{aloha_tpcc_run, calvin_tpcc_run, ALOHA_EPOCH, CALVIN_BATCH};
use aloha_bench::{BenchOpts, BenchReport};
use aloha_workloads::tpcc::{TpccConfig, TxnMix};

fn main() {
    let opts = BenchOpts::parse();
    let server_counts: &[u16] = if opts.full {
        &[1, 2, 5, 10, 15, 20]
    } else {
        &[1, 2, 4]
    };
    // Offered load scales with the cluster so saturation, not the client,
    // bounds throughput.
    let mk_driver = |n: u16| opts.driver((2 * n as usize).max(8), 128);

    println!("# Figure 8: scale-out (NewOrder throughput vs servers)");
    println!("system,config,servers,tput_ktps,mean_ms");
    let mut report = BenchReport::new("fig8", opts.servers(), opts.duration().as_secs_f64());
    for &n in server_counts {
        let driver = mk_driver(n);
        let configs: Vec<(&str, TpccConfig)> = vec![
            ("1W", TpccConfig::by_warehouse(n, 1)),
            ("10W", TpccConfig::by_warehouse(n, 10)),
            ("1D", TpccConfig::scaled(n, 1)),
            ("10D", TpccConfig::scaled(n, 10)),
        ];
        for (name, cfg) in &configs {
            let r = aloha_tpcc_run(cfg, ALOHA_EPOCH, TxnMix::NewOrderOnly, true, &driver);
            println!(
                "Aloha,{name},{n},{:.2},{:.2}",
                r.tput_ktps, r.mean_latency_ms
            );
            report.push(format!("Aloha,{name},{n}"), r);
        }
        for (name, cfg) in &configs {
            let r = calvin_tpcc_run(cfg, CALVIN_BATCH, TxnMix::NewOrderOnly, &driver);
            println!(
                "Calvin,{name},{n},{:.2},{:.2}",
                r.tput_ktps, r.mean_latency_ms
            );
            report.push(format!("Calvin,{name},{n}"), r);
        }
    }
    report.emit(&opts).expect("write fig8 report");
}
