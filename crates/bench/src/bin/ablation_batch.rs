//! Ablation: destination-batched RPC + parallel read-set gather.
//!
//! Workload: a multi-partition YCSB-style read-modify-write mix. Each
//! transaction writes two keys — one on its home partition, one on the next
//! partition — and each written key's functor aggregates a read set of
//! [`READ_SET`] reference keys owned by the writing partition's neighbors,
//! so every functor compute must gather values from remote partitions.
//! Unbatched, that gather is `READ_SET` sequential blocking `RemoteGet`
//! round trips; batched, it is one `RemoteGetBatch` per owning partition
//! with the requests fanned out in parallel, and the bus coalesces
//! concurrent functors' traffic into shared envelopes on top.
//!
//! The epoch is deliberately short (3 ms, not the paper's 25 ms): in the
//! closed-loop driver throughput is proportional to `window / latency`, and
//! with a 25 ms epoch the wait for the epoch to settle dominates latency in
//! both modes, masking exactly the messaging cost this ablation isolates.
//! A short epoch makes the functor-computing round trips the dominant term,
//! which is the regime Fig 6's multi-server points live in.
//!
//! Reported: throughput, mean latency, batch counters (messages per
//! envelope), and the batched/unbatched throughput ratio per network.

use std::time::Duration;

use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_common::{Key, Value};
use aloha_core::{fn_program, BatchConfig, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};
use aloha_workloads::driver::{run_windowed, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

const RMW: ProgramId = ProgramId(1);
const H_SUM: HandlerId = HandlerId(1);
/// Reference keys each written key's functor reads (split across the two
/// neighboring partitions).
const READ_SET: u32 = 8;
const EPOCH: Duration = Duration::from_millis(3);

/// A mutable key in the write keyspace.
fn wkey(p: u16, idx: u32) -> Key {
    Key::with_route(p as u32, &[b"w", &idx.to_be_bytes()])
}

/// A read-only reference key; loaded once, never written, so remote gets
/// resolve without recursive computing.
fn rkey(p: u16, idx: u32) -> Key {
    Key::with_route(p as u32, &[b"ref", &idx.to_be_bytes()])
}

/// The reference read set of a write on partition `p`: half on the next
/// partition, half on the previous one.
fn read_set(p: u16, servers: u16, base: u32, keys_per_partition: u32) -> Vec<Key> {
    let next = (p + 1) % servers;
    let prev = (p + servers - 1) % servers;
    (0..READ_SET)
        .map(|i| {
            let owner = if i % 2 == 0 { next } else { prev };
            rkey(owner, (base + i) % keys_per_partition)
        })
        .collect()
}

struct RmwWorkload {
    db: aloha_core::Database,
    partitions: u16,
    keys_per_partition: u32,
}

impl Workload for RmwWorkload {
    type Handle = aloha_core::TxnHandle;

    fn submit(&self, rng: &mut SmallRng) -> aloha_common::Result<Self::Handle> {
        let p = rng.gen_range(0..self.partitions);
        let mut args = p.to_be_bytes().to_vec();
        args.extend_from_slice(&rng.gen_range(0..self.keys_per_partition).to_be_bytes());
        args.extend_from_slice(&rng.gen_range(0..self.keys_per_partition).to_be_bytes());
        args.extend_from_slice(&rng.gen_range(0..self.keys_per_partition).to_be_bytes());
        // Pin the coordinator to the home partition so the outcome probe
        // resolves locally, as a co-located client would.
        self.db.execute_at(aloha_common::ServerId(p), RMW, args)
    }

    fn wait(&self, handle: Self::Handle) -> aloha_common::Result<bool> {
        Ok(handle.wait_processed()? == TxnOutcome::Committed)
    }
}

fn build_cluster(
    servers: u16,
    net: aloha_net::NetConfig,
    batch: Option<BatchConfig>,
    keys_per_partition: u32,
) -> Cluster {
    let mut config = ClusterConfig::new(servers)
        .with_epoch_duration(EPOCH)
        .with_net(net);
    if let Some(batch) = batch {
        config = config.with_batching(batch);
    }
    let mut builder = Cluster::builder(config);
    // Sum the reference reads; the written value is the aggregate.
    builder.register_handler(H_SUM, |input: &ComputeInput<'_>| {
        let sum: i64 = input
            .reads
            .iter()
            .filter_map(|(_, r)| r.value.as_ref().and_then(Value::as_i64))
            .sum();
        HandlerOutput::commit(Value::from_i64(sum))
    });
    builder.register_program(
        RMW,
        fn_program(move |ctx| {
            let p = u16::from_be_bytes(ctx.args[0..2].try_into().expect("home partition"));
            let idx_a = u32::from_be_bytes(ctx.args[2..6].try_into().expect("idx_a"));
            let idx_b = u32::from_be_bytes(ctx.args[6..10].try_into().expect("idx_b"));
            let base = u32::from_be_bytes(ctx.args[10..14].try_into().expect("ref base"));
            let q = (p + 1) % servers;
            let fa = UserFunctor::new(
                H_SUM,
                read_set(p, servers, base, keys_per_partition),
                Vec::new(),
            );
            let fb = UserFunctor::new(
                H_SUM,
                read_set(q, servers, base, keys_per_partition),
                Vec::new(),
            );
            Ok(TxnPlan::new()
                .write(wkey(p, idx_a), Functor::User(fa))
                .write(wkey(q, idx_b), Functor::User(fb)))
        }),
    );
    builder.start().expect("start cluster")
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers().max(2);
    let keys_per_partition = 5_000u32;
    println!("# Ablation: destination-batched RPC, {servers} servers, read set {READ_SET}");
    println!("network,mode,tput_ktps,mean_ms,batches,msgs_per_batch");
    let mut report = BenchReport::new("ablation_batch", servers, opts.duration().as_secs_f64());
    let networks = [
        ("instant", aloha_net::NetConfig::instant()),
        (
            "300us",
            aloha_net::NetConfig::with_latency(Duration::from_micros(300)),
        ),
    ];
    for (net_name, net) in &networks {
        let mut unbatched_tput = 0.0_f64;
        for batched in [false, true] {
            let batch = batched.then(BatchConfig::default);
            let cluster = build_cluster(servers, net.clone(), batch, keys_per_partition);
            for p in 0..servers {
                for i in 0..keys_per_partition {
                    cluster.load(rkey(p, i), Value::from_i64(i as i64));
                    cluster.load(wkey(p, i), Value::from_i64(0));
                }
            }
            let workload = RmwWorkload {
                db: cluster.database(),
                partitions: servers,
                keys_per_partition,
            };
            cluster.reset_stats();
            let driven = run_windowed(&workload, &opts.driver(8, 64));
            let snapshot = cluster.snapshot();
            let net_node = snapshot.child("net");
            let batches = net_node
                .and_then(|n| n.counter("batch_batches"))
                .unwrap_or(0);
            let occupancy = net_node
                .and_then(|n| n.stage("batch_occupancy"))
                .map_or(0.0, |s| s.mean_micros);
            let r = RunResult::from_parts(&driven, snapshot);
            println!(
                "{net_name},{},{:.2},{:.2},{batches},{occupancy:.2}",
                if batched { "batched" } else { "unbatched" },
                r.tput_ktps,
                r.mean_latency_ms,
            );
            if batched {
                let ratio = if unbatched_tput > 0.0 {
                    r.tput_ktps / unbatched_tput
                } else {
                    0.0
                };
                println!("# {net_name}: batched/unbatched throughput ratio {ratio:.2}x");
            } else {
                unbatched_tput = r.tput_ktps;
            }
            report.push(
                format!(
                    "{net_name},{}",
                    if batched { "batched" } else { "unbatched" }
                ),
                r,
            );
            cluster.shutdown();
            // Give OS threads a moment to wind down between runs.
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    report.emit(&opts).expect("write ablation_batch report");
}
