//! Ablation of the snapshot-read fast path: `ReadMode::Snapshot` against
//! the §III-B delay-to-next-epoch baseline on a read-heavy mix.
//!
//! The workload is YCSB-B shaped: 95% multi-partition read-only
//! transactions, 5% paper-shape write transactions, every key drawn from a
//! zipfian request distribution (theta 0.99, YCSB's default skew). Reads
//! execute synchronously inside `submit`, so the driver's latency histogram
//! and the `snapshot_read` stage both measure the client-visible read
//! round trip. The grid crosses the two read modes with the two transports
//! (simulated in-process bus, real TCP over loopback):
//!
//! * `snapshot` serves reads at the cluster compute frontier from the
//!   version chains — no waiting, abort-free, externally consistent;
//! * `delay` assigns the read a timestamp in the current epoch and blocks
//!   until the epoch completes, so every read pays ~1.5 epochs (the paper's
//!   baseline the fast path removes).
//!
//! Both modes record the same `snapshot_read` stage at the front end, so
//! `read_p50_ms`/`read_p99_ms` are directly comparable across rows.

use std::sync::Arc;

use aloha_bench::harness::ALOHA_EPOCH;
use aloha_bench::multiproc::tcp_mesh;
use aloha_bench::{BenchOpts, BenchReport, RunResult};
use aloha_common::clock::UnixClock;
use aloha_common::{Key, ReadMode, Result, ServerId};
use aloha_core::{
    Cluster, ClusterConfig, Database, Node, NodeConfig, ServerMsg, TxnHandle, TxnOutcome,
};
use aloha_net::Transport;
use aloha_workloads::driver::{run_windowed, DriverConfig, Workload};
use aloha_workloads::ycsb::{self, YcsbConfig, Zipf};
use rand::rngs::SmallRng;
use rand::Rng;

/// Fraction of transactions that are read-only (YCSB-B).
const READ_FRACTION: f64 = 0.95;
/// YCSB request-distribution skew.
const ZIPF_THETA: f64 = 0.99;

/// How a deployment serves the two transaction types.
trait Engine: Send + Sync {
    fn read(&self, keys: &[Key]) -> Result<()>;
    fn write(&self, keys: &[Key]) -> Result<TxnHandle>;
}

/// In-process simulated cluster. Readers and writers are *distinct client
/// sessions* (two [`Database`] handles), the way separate YCSB client
/// machines attach to a deployment: the read session then measures the
/// steady-state fast path instead of read-your-writes floor waits behind
/// the writer session's just-submitted transactions (that guarantee is
/// exercised by the chaos tests, not this ablation).
struct ClusterEngine {
    readers: Database,
    writers: Database,
    partitions: u16,
}

impl Engine for ClusterEngine {
    fn read(&self, keys: &[Key]) -> Result<()> {
        self.readers.read_latest(keys).map(|_| ())
    }

    fn write(&self, keys: &[Key]) -> Result<TxnHandle> {
        let fe = ServerId(keys[0].partition(self.partitions).0);
        self.writers
            .execute_at(fe, ycsb::YCSB_ALOHA, ycsb::encode_txn_args(keys))
    }
}

/// TCP-loopback node mesh. Reads attach to node 0 (whose snapshot the run
/// reports, so its `snapshot_read` stage carries the read latencies);
/// writes coordinate at a participant partition *other than* node 0 when
/// the transaction allows it — node sessions are per-node, so keeping
/// writers off the reader node gives the same distinct-session split as the
/// simulated rows.
struct NodeEngine {
    nodes: Vec<Arc<Node>>,
}

impl Engine for NodeEngine {
    fn read(&self, keys: &[Key]) -> Result<()> {
        self.nodes[0].read_latest(keys).map(|_| ())
    }

    fn write(&self, keys: &[Key]) -> Result<TxnHandle> {
        let n = self.nodes.len() as u16;
        let fe = keys
            .iter()
            .map(|k| k.partition(n).0 as usize)
            .find(|&p| p != 0)
            .unwrap_or(0);
        self.nodes[fe].execute(ycsb::YCSB_ALOHA, ycsb::encode_txn_args(keys))
    }
}

/// A completed synchronous read, or an in-flight write.
enum Op {
    Read,
    Write(TxnHandle),
}

/// The 95/5 zipfian mix over any [`Engine`].
struct ReadHeavy<E> {
    engine: E,
    cfg: Arc<YcsbConfig>,
    zipf: Zipf,
}

impl<E: Engine> ReadHeavy<E> {
    fn new(engine: E, cfg: &YcsbConfig) -> ReadHeavy<E> {
        ReadHeavy {
            engine,
            cfg: Arc::new(cfg.clone()),
            zipf: Zipf::new(cfg.keys_per_partition as u64, ZIPF_THETA),
        }
    }
}

impl<E: Engine> Workload for ReadHeavy<E> {
    type Handle = Op;

    fn submit(&self, rng: &mut SmallRng) -> Result<Op> {
        let keys = ycsb::gen_zipf_keys(rng, &self.cfg, &self.zipf);
        if rng.gen_bool(READ_FRACTION) {
            self.engine.read(&keys)?;
            Ok(Op::Read)
        } else {
            self.engine.write(&keys).map(Op::Write)
        }
    }

    fn wait(&self, op: Op) -> Result<bool> {
        match op {
            Op::Read => Ok(true),
            Op::Write(handle) => Ok(handle.wait_processed()? == TxnOutcome::Committed),
        }
    }
}

/// One simulated-bus point under the given read mode.
fn sim_run(cfg: &YcsbConfig, mode: ReadMode, driver: &DriverConfig) -> RunResult {
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions)
            .with_epoch_duration(ALOHA_EPOCH)
            .with_processors(2)
            .with_read_mode(mode),
    );
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().expect("start cluster");
    ycsb::load_aloha(&cluster, cfg);
    let workload = ReadHeavy::new(
        ClusterEngine {
            readers: cluster.database(),
            writers: cluster.database(),
            partitions: cfg.partitions,
        },
        cfg,
    );
    cluster.reset_stats();
    let report = run_windowed(&workload, driver);
    let result = RunResult::from_parts(&report, cluster.snapshot());
    cluster.shutdown();
    result
}

/// One TCP-loopback point: one [`aloha_net::TcpTransport`] per node in this
/// process, cross-wired over 127.0.0.1, all nodes sharing the read mode.
fn tcp_run(cfg: &YcsbConfig, mode: ReadMode, driver: &DriverConfig) -> RunResult {
    let transports = tcp_mesh(cfg.partitions);
    let origin = UnixClock::unix_now_micros();
    let nodes: Vec<Arc<Node>> = transports
        .iter()
        .enumerate()
        .map(|(i, transport)| {
            let mut builder = Node::builder(
                NodeConfig::new(ServerId(i as u16), cfg.partitions, origin)
                    .with_epoch_duration(ALOHA_EPOCH)
                    .with_read_mode(mode),
            );
            ycsb::install_aloha_node(&mut builder);
            let net: Arc<dyn Transport<ServerMsg>> = Arc::clone(transport) as _;
            Arc::new(builder.start(net).expect("start node"))
        })
        .collect();
    for node in &nodes {
        ycsb::load_aloha_node(node, cfg);
    }
    let workload = ReadHeavy::new(
        NodeEngine {
            nodes: nodes.clone(),
        },
        cfg,
    );
    let report = run_windowed(&workload, driver);
    let snapshot = nodes[0].snapshot();
    drop(workload);
    for node in nodes {
        match Arc::try_unwrap(node) {
            Ok(node) => node.shutdown(),
            Err(_) => unreachable!("workload dropped; nodes are uniquely held"),
        }
    }
    RunResult::from_parts(&report, snapshot)
}

fn main() {
    let opts = BenchOpts::parse();
    let servers = opts.servers();
    println!(
        "# Ablation: read path, {servers} servers, YCSB-B 95/5 zipfian(theta={ZIPF_THETA}), \
         epoch {:?}",
        ALOHA_EPOCH
    );
    println!("mode,transport,tput_ktps,read_p50_ms,read_p99_ms,e2e_p99_ms");
    let mut report = BenchReport::new("ablation_read", servers, opts.duration().as_secs_f64());
    let cfg = YcsbConfig::with_contention_index(servers, 0.01).with_keys_per_partition(20_000);
    let driver = opts.driver(8, 16);

    let emit = |mode: &str, transport: &str, r: &RunResult| {
        let stage = r
            .stage("snapshot_read")
            .expect("read stage present in both modes");
        println!(
            "{mode},{transport},{:.2},{:.3},{:.3},{:.2}",
            r.tput_ktps,
            stage.p50_micros as f64 / 1_000.0,
            stage.p99_micros as f64 / 1_000.0,
            r.p99_latency_ms,
        );
    };

    for (mode, name) in [
        (ReadMode::Snapshot, "snapshot"),
        (ReadMode::DelayToEpoch, "delay"),
    ] {
        let sim = sim_run(&cfg, mode, &driver);
        emit(name, "simulated", &sim);
        report.push(format!("{name},simulated"), sim);

        let tcp = tcp_run(&cfg, mode, &driver);
        emit(name, "tcp-loopback", &tcp);
        report.push(format!("{name},tcp-loopback"), tcp);
    }

    report.emit(&opts).expect("write ablation_read report");
}
