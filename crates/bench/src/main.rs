//! Smoke benchmark (the default `aloha-bench` binary): a tiny YCSB run on
//! both engines that exercises the whole measurement pipeline — cluster
//! lifecycle, six-stage tracing, snapshot export — and writes
//! `BENCH_smoke.json` (or `--json PATH`). Meant for CI: seconds, not
//! minutes.

use aloha_bench::harness::{
    aloha_ycsb_run, calvin_ycsb_run, BenchOpts, BenchReport, ALOHA_EPOCH, CALVIN_BATCH,
};
use aloha_common::metrics::Stage;
use aloha_workloads::ycsb::YcsbConfig;

fn main() {
    let mut opts = BenchOpts::parse();
    // Smoke defaults: 2 servers, ~2 s windows, unless overridden.
    opts.servers.get_or_insert(2);
    opts.seconds.get_or_insert(2.0);
    let n = opts.servers();
    let cfg = YcsbConfig::with_contention_index(n, 0.01).with_keys_per_partition(10_000);
    let driver = opts.driver(4, 16);

    println!(
        "# smoke bench: YCSB CI=0.01, {n} servers, {:?} windows",
        opts.duration()
    );
    println!("system,tput_ktps,mean_ms,p50_ms,p99_ms,committed,aborted");
    let mut report = BenchReport::new("smoke", n, opts.duration().as_secs_f64());
    for (label, r) in [
        ("Aloha", aloha_ycsb_run(&cfg, ALOHA_EPOCH, &driver)),
        ("Calvin", calvin_ycsb_run(&cfg, CALVIN_BATCH, &driver)),
    ] {
        println!(
            "{label},{:.2},{:.2},{:.2},{:.2},{},{}",
            r.tput_ktps,
            r.mean_latency_ms,
            r.p50_latency_ms,
            r.p99_latency_ms,
            r.committed,
            r.aborted
        );
        for stage in Stage::ALL {
            let s = r.stage(stage.name()).copied().unwrap_or_default();
            println!(
                "#   {label} {}: n={} p50={}us p95={}us p99={}us",
                stage.name(),
                s.count,
                s.p50_micros,
                s.p95_micros,
                s.p99_micros
            );
        }
        report.push(label, r);
    }
    let path = report.emit(&opts).expect("write smoke report");
    // Prove the emitted file is machine-readable end to end.
    let text = std::fs::read_to_string(&path).expect("read back smoke report");
    let back = BenchReport::from_json_text(&text).expect("re-parse smoke report");
    assert_eq!(back, report, "emitted report must round-trip");
    println!(
        "# re-parsed {} rows from {}",
        back.rows.len(),
        path.display()
    );
}
