//! Benchmark harness for the ALOHA-DB reproduction.
//!
//! One binary per evaluation figure (`fig6` … `fig11`), each printing the
//! same rows/series the paper reports, plus two ablations (`ablation_push`
//! for the §IV-B recipient-set push, `ablation_ecc` for the straggler
//! window / WAL / replication) and Criterion microbenchmarks for the
//! substrates. Binaries accept:
//!
//! * `--full` — paper-scale sweeps (more points, longer durations, more
//!   servers); the default is a laptop-scale quick mode with the same shape;
//! * `--servers N` — override the default cluster size;
//! * `--seconds S` — override the measured duration per point;
//! * `--json PATH` — write the machine-readable report to PATH instead of
//!   the default `BENCH_<figure>.json`;
//! * `--help` — print usage.
//!
//! Besides the human-readable CSV on stdout, every binary writes a
//! `BENCH_<figure>.json` report: throughput, p50/p95/p99 per lifecycle
//! stage (the six-stage schema of `aloha_common::metrics::Stage`), and
//! abort counts, embedding each run's full `StatsSnapshot` tree. The
//! default binary (`cargo run -p aloha-bench`) is a smoke benchmark that
//! produces `BENCH_smoke.json` from a tiny two-engine YCSB run.
//!
//! The absolute numbers depend on the host (this is a simulated cluster in
//! one process, not 20 EC2 VMs); the *shapes* — who wins, by what factor,
//! where the trends bend — are the reproduction targets. `EXPERIMENTS.md`
//! records paper-vs-measured values.

pub mod harness;
pub mod multiproc;

pub use harness::{
    aloha_tpcc_run, aloha_ycsb_run, aloha_ycsb_run_tuned, calvin_tpcc_run, calvin_ycsb_run,
    BenchOpts, BenchReport, BenchRow, ParseOutcome, RunResult,
};
